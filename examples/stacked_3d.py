#!/usr/bin/env python3
"""3D stacking and dark silicon: when cores must go dark.

The paper's introduction motivates its thermal machinery with 3D ICs and
the dark-silicon problem.  This example quantifies both on the calibrated
substrate:

1. stack 2x2 core layers and watch the per-layer thermal budget collapse,
2. at three layers the stack is infeasible even with every core at the
   minimum voltage — some cores *must* power off,
3. the greedy dark-silicon search (gate the worst-cooled cores, re-run AO)
   recovers a feasible operating point and reports which cores went dark.

Run:  python examples/stacked_3d.py
"""

from __future__ import annotations

import numpy as np

from repro import platform_3d
from repro.algorithms import continuous_assignment
from repro.algorithms.dark import dark_silicon_ao
from repro.errors import SolverError
from repro.experiments.reporting import ascii_table
from repro.floorplan import Stack3D, grid_floorplan


def main() -> None:
    print("Per-layer thermal budgets, 2x2 layers stacked, T_max = 65 C\n")
    rows = []
    for layers in (1, 2, 3):
        p = platform_3d(layers, 2, 2, n_levels=2, t_max_c=65.0)
        try:
            ca = continuous_assignment(p)
            v = ca.voltages.reshape(layers, 4)
            rows.append(
                (
                    layers,
                    "  ".join(f"{m:.3f}" for m in v.mean(axis=1)),
                    float(ca.throughput),
                    "feasible",
                )
            )
        except SolverError:
            rows.append((layers, "-", float("nan"), "INFEASIBLE even at v_min"))
    print(ascii_table(
        ["layers", "mean ideal v per layer (sink->top)", "chip THR", "status"],
        rows,
    ))

    print("\nThree layers cannot all run — dark-silicon search:\n")
    p = platform_3d(3, 2, 2, n_levels=2, t_max_c=65.0)
    r = dark_silicon_ao(p, m_cap=24, explore_extra=2)
    stack = Stack3D(base=grid_floorplan(2, 2), n_layers=3)
    dark = r.details["dark_cores"]
    per_layer_active = []
    for layer in range(3):
        total = 4
        off = sum(1 for c in dark if stack.layer_of(c)[0] == layer)
        per_layer_active.append(f"layer {layer}: {total - off}/4 active")
    print(f"  {r.summary()}")
    print(f"  dark cores: {dark}")
    print("  " + ", ".join(per_layer_active))
    print("\nthe search gates the top of the stack first — exactly where the "
          "heat-removal path is longest.")

    print("\nHow the interlayer conductance (TSV density) changes the verdict:\n")
    rows = []
    for g_il in (0.3, 1.0, 3.0, 10.0):
        p = platform_3d(2, 2, 2, n_levels=2, t_max_c=65.0, g_interlayer=g_il)
        ca = continuous_assignment(p)
        rows.append((f"{g_il:.1f} W/K", float(ca.throughput)))
    print(ascii_table(["g_interlayer", "2-layer chip THR"], rows))
    print("\ndenser TSVs pull the upper layer's heat down faster and buy real "
          "throughput.")


if __name__ == "__main__":
    main()
