#!/usr/bin/env python3
"""Dark-silicon power budgeting: which cores to favour on a 3x3 chip.

The paper's introduction motivates the work with the dark-silicon problem:
at fixed peak temperature, not every core can run fast — and *which* cores
get the budget matters because boundary cores dissipate heat better than
the center core.  This example maps the thermal budget of the 9-core chip:

1. the ideal continuous speed of every core at several thresholds (the
   center core always loses),
2. what a naive uniform-speed governor would leave on the table,
3. how AO's frequency oscillation converts the per-core asymmetry into
   throughput that single-mode approaches (EXS) cannot reach.

Run:  python examples/dark_silicon_budgeting.py
"""

from __future__ import annotations

import numpy as np

from repro import ao, exs, paper_platform
from repro.algorithms.continuous import continuous_assignment
from repro.experiments.reporting import ascii_table


def uniform_speed_limit(platform) -> float:
    """Highest single voltage every core can run simultaneously."""
    lo, hi = 0.6, 1.3
    for _ in range(48):  # bisection on the (monotone) thermal map
        mid = 0.5 * (lo + hi)
        theta = platform.model.steady_state_cores(np.full(platform.n_cores, mid))
        if theta.max() <= platform.theta_max:
            lo = mid
        else:
            hi = mid
    return lo


def main() -> None:
    print("Per-core thermal budget on the 3x3 chip (ideal continuous voltages)\n")
    rows = []
    for t_max in (50.0, 55.0, 60.0, 65.0):
        platform = paper_platform(9, n_levels=2, t_max_c=t_max)
        ca = continuous_assignment(platform)
        v = ca.voltages.reshape(3, 3)
        rows.append(
            (
                f"{t_max:.0f} C",
                float(v[0, 0]),   # corner (2 neighbours)
                float(v[0, 1]),   # edge (3 neighbours)
                float(v[1, 1]),   # center (4 neighbours)
                float(ca.throughput),
            )
        )
    print(ascii_table(
        ["T_max", "corner core", "edge core", "center core", "chip THR"],
        rows,
    ))
    print("\nthe center core always gets the smallest budget — its heat has "
          "the worst escape path.\n")

    print("What the asymmetry is worth (T_max = 55 C, modes {0.6, 1.3} V):\n")
    platform = paper_platform(9, n_levels=2, t_max_c=55.0)
    uniform = uniform_speed_limit(platform)
    ca = continuous_assignment(platform)
    r_exs = exs(platform)
    r_ao = ao(platform, m_cap=64)

    rows = [
        ("uniform continuous speed", uniform, "every core at the same v"),
        ("per-core continuous ideal", ca.throughput, "center throttled, edges up"),
        ("EXS (one discrete mode/core)", r_exs.throughput, "best single-mode choice"),
        ("AO (frequency oscillation)", r_ao.throughput,
         f"m = {r_ao.details['m_opt']} oscillation"),
    ]
    print(ascii_table(["strategy", "throughput", "note"], rows))
    gain = (r_ao.throughput - r_exs.throughput) / r_exs.throughput
    print(f"\nAO recovers {r_ao.throughput / ca.throughput:.1%} of the continuous "
          f"ideal — {gain:+.1%} over the best discrete single-mode assignment.")


if __name__ == "__main__":
    main()
