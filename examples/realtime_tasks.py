#!/usr/bin/env python3
"""Thermally-safe scheduling of a periodic real-time task set.

The full downstream pipeline on the 9-core chip:

1. generate a random implicit-deadline task set (UUniFast),
2. partition it with three heuristics (FFD, WFD, thermal-aware WFD),
3. derive each core's required average speed,
4. build the peak-minimizing m-oscillating schedule for those speeds
   (Theorems 3-5 operationalized by ``repro.algorithms.minpeak``),
5. report thermal slack and verify the winner against the ODE oracle.

Run:  python examples/realtime_tasks.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_platform
from repro.experiments.reporting import ascii_table
from repro.thermal.reference import reference_peak
from repro.workload import (
    TaskSet,
    first_fit_decreasing,
    schedule_taskset,
    thermal_aware_mapping,
    worst_fit_decreasing,
)


def main() -> None:
    platform = paper_platform(9, n_levels=5, t_max_c=60.0)
    rng = np.random.default_rng(2016)
    taskset = TaskSet.random(24, total_utilization=7.2, rng=rng)
    print(f"task set: {len(taskset)} tasks, total utilization "
          f"{taskset.total_utilization:.2f} on {platform.n_cores} cores, "
          f"T_max = {platform.t_max_c} C\n")

    rows = []
    results = {}
    for mapper in (first_fit_decreasing, worst_fit_decreasing,
                   thermal_aware_mapping):
        r = schedule_taskset(platform, taskset, mapper=mapper)
        results[mapper.__name__] = r
        utils = r.mapping.core_utilizations()
        rows.append(
            (
                mapper.__name__,
                f"{utils.min():.2f}-{utils.max():.2f}",
                r.minpeak.m,
                float(r.minpeak.peak.value + 35.0),
                float(r.slack_theta),
                "OK" if r.thermally_feasible else "VIOLATION",
            )
        )
    print(ascii_table(
        ["mapping", "core load range", "m", "peak (C)", "slack (K)", "verdict"],
        rows,
    ))

    print("\nwhy FFD loses: it stacks the heaviest tasks onto adjacent cores, "
          "creating a hot cluster;\nWFD spreads them; the thermal-aware "
          "variant additionally unloads the chip center.\n")

    best_name = max(
        (n for n, r in results.items() if r.thermally_feasible),
        key=lambda n: results[n].slack_theta,
        default=None,
    )
    if best_name is None:
        print("no mapping is thermally feasible — shed load or raise T_max.")
        return
    best = results[best_name]
    oracle = reference_peak(
        platform.model, best.minpeak.schedule, samples_per_interval=48
    )
    print(f"winner: {best_name} — oracle-verified peak "
          f"{oracle + 35.0:.2f} C (threshold {platform.t_max_c} C)")
    assert oracle <= platform.theta_max + 0.05


if __name__ == "__main__":
    main()
