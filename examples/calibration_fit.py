#!/usr/bin/env python3
"""Re-run the thermal/power calibration against the paper's anchors.

The library ships with pre-fitted constants
(:class:`repro.thermal.params.SingleLayerParams` /
:class:`repro.power.model.PowerModel`); this script regenerates them from
scratch so the fit is auditable, prints the residual per anchor, and
demonstrates sensitivity to the anchor weights.

Run:  python examples/calibration_fit.py
"""

from __future__ import annotations

import numpy as np

from repro.power.model import PowerModel
from repro.thermal.calibration import AnchorSet, anchor_residuals, calibrate
from repro.thermal.params import SingleLayerParams

ANCHOR_NAMES = [
    "ideal edge voltage (1.2085 V)",
    "ideal middle voltage (1.1748 V)",
    "EXS frontier: [1.3,0.6,1.3] infeasible",
    "EXS frontier: [1.3,0.6,0.6] feasible",
    "Table III @20ms on the 65 C constraint",
    "Fig. 3 corner peak (84.13 C, soft)",
    "Fig. 2 two-core peak (53.3 C, soft)",
]


def report(residuals: np.ndarray, weights) -> None:
    for name, r, w in zip(ANCHOR_NAMES, residuals, weights):
        print(f"  {name:<45s} weighted {r:+9.4f}  (raw {r / w:+9.4f})")


def main() -> None:
    print("=== shipped defaults vs the anchor set ===")
    anchors = AnchorSet()
    res = anchor_residuals(SingleLayerParams(), PowerModel(), anchors)
    report(res, anchors.weights)

    print("\n=== refitting from a deliberately bad start ===")
    result = calibrate(initial_lateral=0.8, initial_c_core=8e-3)
    print(result.summary())
    print("residuals after fit:")
    report(result.residuals, anchors.weights)

    drift = {
        "g_direct": abs(result.params.g_direct - SingleLayerParams().g_direct),
        "g_boundary": abs(result.params.g_boundary - SingleLayerParams().g_boundary),
        "g_lateral": abs(result.params.g_lateral - SingleLayerParams().g_lateral),
        "c_core": abs(result.params.c_core - SingleLayerParams().c_core),
    }
    print("\nabsolute drift from the shipped defaults:")
    for k, v in drift.items():
        print(f"  {k:<12s} {v:.3e}")

    print(
        "\nnote: the Fig. 3 / Fig. 2 soft anchors cannot be matched exactly "
        "while the hard anchors hold —\nno passive symmetric RC network "
        "satisfies all of the paper's example numbers at once "
        "(see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
