#!/usr/bin/env python3
"""Designing a thermally-safe DVFS governor table with AO.

A practical downstream use of the library: an OS DVFS governor wants a
small lookup table — for each (active-core-count, temperature-limit)
operating condition, a precomputed oscillating schedule that is provably
safe and near-optimal.  This example generates that table offline for a
6-core chip, including the oscillation period each entry needs, and shows
how transition overhead (tau) limits how fast you may oscillate.

Run:  python examples/governor_design.py
"""

from __future__ import annotations

import numpy as np

from repro import ao, paper_platform
from repro.experiments.reporting import ascii_table


def main() -> None:
    print("Offline governor table for the 6-core chip (modes {0.6,0.8,1.0,1.3} V)\n")

    rows = []
    for t_max in (50.0, 55.0, 60.0, 65.0):
        platform = paper_platform(6, n_levels=4, t_max_c=t_max)
        r = ao(platform, period=0.02, m_cap=64)
        m = r.details["m_opt"]
        ratios = np.asarray(r.details["final_high_ratio"])
        v_hi = np.asarray(r.details["v_high"])
        v_lo = np.asarray(r.details["v_low"])
        cycle_ms = 20.0 / m
        rows.append(
            (
                f"{t_max:.0f} C",
                float(r.throughput),
                m,
                f"{cycle_ms:.2f} ms",
                f"{v_lo.min():.1f}-{v_hi.max():.1f} V",
                f"{ratios.mean():.2f}",
                "yes" if r.feasible else "NO",
            )
        )
    print(ascii_table(
        ["T_max", "THR", "m", "cycle", "mode span", "mean high-ratio", "safe"],
        rows,
    ))

    print("\nHow the DVFS switch cost tau caps the oscillation rate "
          "(T_max = 55 C):\n")
    rows = []
    for tau in (0.0, 1e-6, 5e-6, 20e-6, 100e-6):
        platform = paper_platform(6, n_levels=4, t_max_c=55.0, tau=tau)
        r = ao(platform, period=0.02, m_cap=256)
        rows.append(
            (
                f"{tau * 1e6:.0f} us",
                r.details["m_opt"],
                float(r.throughput),
            )
        )
    print(ascii_table(["tau", "chosen m", "THR"], rows))
    print("\ncheap switches -> oscillate fast and ride closer to the ideal;")
    print("expensive switches -> the overhead bound M forces slower cycles "
          "and costs throughput.")


if __name__ == "__main__":
    main()
