#!/usr/bin/env python3
"""Thermal playground: watch the paper's five theorems happen.

Builds the calibrated 3-core chip and demonstrates, with numbers from the
actual solvers:

* Theorem 1 — a step-up schedule's stable peak sits at the period end
  (and the tiny wrap-continuation epsilon our reproduction uncovered),
* Theorem 2 — reordering any schedule step-up bounds its peak,
* Theorem 3 — a constant speed runs cooler than any equal-work two-speed
  split,
* Theorem 4 — neighboring modes beat wider mode pairs,
* Theorem 5 — chip-wide m-oscillation monotonically cools the peak.

Run:  python examples/thermal_playground.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_platform
from repro.analysis.theorems import (
    check_cooling_property,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem5,
)
from repro.schedule.builders import random_schedule, random_stepup_schedule
from repro.schedule.transforms import m_oscillate
from repro.thermal.peak import stepup_peak_temperature


def main() -> None:
    platform = paper_platform(3, n_levels=5, t_max_c=65.0)
    model = platform.model
    rng = np.random.default_rng(1)

    print("=== Theorem 1: step-up peak at the period end ===")
    s = random_stepup_schedule(3, rng, period=0.05)
    rep = check_theorem1(model, s)
    print(f"  max over period  = {rep.lhs + 35:.4f} C")
    print(f"  value at the end = {rep.rhs + 35:.4f} C")
    print(f"  holds (within the wrap epsilon): {rep.holds}")
    print(f"  wrap overshoot: {max(0.0, rep.lhs - rep.rhs) * 1000:.1f} mK\n")

    print("=== Theorem 2: step-up reordering bounds arbitrary schedules ===")
    s = random_schedule(3, rng, period=0.05)
    rep = check_theorem2(model, s)
    print(f"  peak(S)          = {rep.lhs + 35:.4f} C")
    print(f"  peak(step_up(S)) = {rep.rhs + 35:.4f} C")
    print(f"  bound holds: {rep.holds}\n")

    print("=== Theorem 3: constant speed is coolest at equal work ===")
    rep = check_theorem3(model, v_const=1.0, v_low=0.8, v_high=1.2, period=0.02)
    print(f"  peak(constant 1.0 V)        = {rep.lhs + 35:.4f} C")
    print(f"  peak(0.8/1.2 V, same work)  = {rep.rhs + 35:.4f} C")
    print(f"  holds: {rep.holds}\n")

    print("=== Theorem 4: neighboring modes beat wider pairs ===")
    rep = check_theorem4(model, v_inner=(0.9, 1.1), v_outer=(0.7, 1.3),
                         v_target=1.0, period=0.02)
    print(f"  peak(0.9/1.1 V pair) = {rep.lhs + 35:.4f} C")
    print(f"  peak(0.7/1.3 V pair) = {rep.rhs + 35:.4f} C")
    print(f"  holds: {rep.holds}\n")

    print("=== Theorem 5: chip-wide oscillation cools monotonically ===")
    s = random_stepup_schedule(3, rng, period=0.2)
    for m in (1, 2, 4, 8, 16):
        peak = stepup_peak_temperature(model, m_oscillate(s, m), check=False)
        print(f"  m = {m:2d}: stable peak = {peak.value + 35:.4f} C")
    rep = check_theorem5(model, s, 4)
    print(f"  holds at m=4->5: {rep.holds}\n")

    print("=== Property 1: all-off cooling is monotone ===")
    hot = model.steady_state([1.3, 1.3, 1.3])
    rep = check_cooling_property(model, hot, horizon=0.1)
    print(f"  worst temperature increase while cooling: {rep.lhs:.2e} K")
    print(f"  holds: {rep.holds}")


if __name__ == "__main__":
    main()
