#!/usr/bin/env python3
"""Reactive DTM vs the proactive AO schedule — the intro's argument, live.

Simulates a per-core threshold-throttling governor (sensor + hysteresis)
on the same calibrated thermal model the proactive algorithms use, sweeps
its two knobs — guard band and sensor latency — and puts AO's offline
guarantee next to it.

Run:  python examples/reactive_vs_proactive.py
"""

from __future__ import annotations

from repro import ao, paper_platform
from repro.algorithms.reactive import reactive_throttling
from repro.experiments.reporting import ascii_table


def main() -> None:
    platform = paper_platform(3, n_levels=2, t_max_c=65.0)
    r_ao = ao(platform)

    print("Guard-band sweep (sensor every 1 ms):\n")
    rows = []
    for guard in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0):
        r = reactive_throttling(platform, guard_band=guard)
        rows.append(
            (
                f"{guard:.1f} K",
                float(r.throughput),
                float(r.details["overshoot_k"]),
                "OK" if r.feasible else "VIOLATION",
            )
        )
    rows.append(("AO (proactive)", float(r_ao.throughput), 0.0, "OK"))
    print(ascii_table(["guard band", "THR", "overshoot (K)", "T_max"], rows))

    print("\nSensor-latency sweep (guard band 1 K):\n")
    rows = []
    for period_ms in (0.25, 0.5, 1.0, 2.0, 4.0):
        r = reactive_throttling(
            platform, guard_band=1.0, sensor_period=period_ms * 1e-3
        )
        rows.append(
            (
                f"{period_ms:.2f} ms",
                float(r.throughput),
                float(r.details["overshoot_k"]),
                "OK" if r.feasible else "VIOLATION",
            )
        )
    print(ascii_table(["sensor period", "THR", "overshoot (K)", "T_max"], rows))

    print(
        "\ntakeaway: every reactive setting either overshoots T_max (the "
        "sensor reacts too late)\nor hides behind a guard band that costs "
        f"throughput; AO delivers {r_ao.throughput:.4f} with a computed, "
        "not sensed, guarantee."
    )


if __name__ == "__main__":
    main()
