#!/usr/bin/env python3
"""Quickstart: maximize throughput on a temperature-constrained 3-core chip.

Builds the paper's calibrated 3-core platform with two voltage modes
(0.6 V / 1.3 V) and a 65 C peak-temperature limit, runs all four
approaches, and cross-checks the winner's schedule against the
independent ODE oracle.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ao, exs, lns, paper_platform, pco
from repro.algorithms.continuous import continuous_assignment
from repro.thermal.reference import reference_peak


def main() -> None:
    platform = paper_platform(n_cores=3, n_levels=2, t_max_c=65.0)
    print(f"platform: {platform.floorplan.describe()}")
    print(f"modes: {platform.ladder.levels} V, T_max = {platform.t_max_c} C\n")

    ideal = continuous_assignment(platform)
    print(f"ideal continuous voltages: {ideal.voltages.round(4)}")
    print(f"ideal throughput (upper bound): {ideal.throughput:.4f}\n")

    results = [
        lns(platform),
        exs(platform),
        ao(platform),
        pco(platform),
    ]
    for r in sorted(results, key=lambda r: r.throughput):
        print(f"  {r.summary()}")

    best = max(results, key=lambda r: r.throughput)
    print(f"\nbest: {best.name} at {best.throughput:.4f} "
          f"({best.throughput / ideal.throughput:.1%} of the continuous ideal)")

    # Independent verification: settle the emitted schedule with an RK45
    # integrator that shares no code with the closed-form engine.
    oracle = reference_peak(platform.model, best.schedule, samples_per_interval=96)
    print(f"oracle-verified peak: {oracle + 35.0:.2f} C "
          f"(threshold {platform.t_max_c} C)")
    assert oracle <= platform.theta_max + 0.05, "oracle found a violation!"
    print("constraint verified.")


if __name__ == "__main__":
    main()
