"""The multi-core configurations evaluated in the paper.

Section VI uses 2x1, 3x1, 3x2 and 3x3 layouts with 4 mm x 4 mm cores.
``paper_floorplan(n_cores)`` maps a core count from the figures (2, 3, 6, 9)
to the corresponding layout.
"""

from __future__ import annotations

from repro.errors import FloorplanError
from repro.floorplan.layout import Floorplan, grid_floorplan

__all__ = [
    "PAPER_CONFIGS",
    "paper_floorplan",
    "floorplan_2x1",
    "floorplan_3x1",
    "floorplan_3x2",
    "floorplan_3x3",
]

#: Core count -> (rows, cols) as used in the paper's evaluation.
PAPER_CONFIGS: dict[int, tuple[int, int]] = {
    2: (1, 2),
    3: (1, 3),
    6: (2, 3),
    9: (3, 3),
}


def floorplan_2x1() -> Floorplan:
    """The paper's 2-core layout (a 1x2 row of 4 mm tiles)."""
    return grid_floorplan(1, 2)


def floorplan_3x1() -> Floorplan:
    """The paper's 3-core layout (a 1x3 row; the middle core has 2 neighbours)."""
    return grid_floorplan(1, 3)


def floorplan_3x2() -> Floorplan:
    """The paper's 6-core layout (2 rows x 3 columns)."""
    return grid_floorplan(2, 3)


def floorplan_3x3() -> Floorplan:
    """The paper's 9-core layout (3x3; the center core has 4 neighbours)."""
    return grid_floorplan(3, 3)


def paper_floorplan(n_cores: int) -> Floorplan:
    """Return the layout the paper uses for the given core count.

    Raises
    ------
    FloorplanError
        If ``n_cores`` is not one of the evaluated counts (2, 3, 6, 9).
    """
    try:
        rows, cols = PAPER_CONFIGS[n_cores]
    except KeyError:
        raise FloorplanError(
            f"the paper evaluates 2/3/6/9 cores, got {n_cores}; "
            "use grid_floorplan(rows, cols) for custom layouts"
        ) from None
    return grid_floorplan(rows, cols)
