"""3D-stacked chip descriptions.

The paper's introduction motivates the thermal problem with 3D ICs: layers
of cores stacked vertically trade shorter wires for a longer heat-removal
path and higher power density.  A :class:`Stack3D` is a vertical pile of
identical core-grid layers; layer 0 sits next to the heat sink, upper
layers must push their heat down through the layers below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FloorplanError
from repro.floorplan.layout import Floorplan

__all__ = ["Stack3D"]


@dataclass(frozen=True)
class Stack3D:
    """A vertical stack of identical core layers.

    Attributes
    ----------
    base:
        The per-layer floorplan (identical across layers; cores are
        vertically aligned).
    n_layers:
        Number of stacked layers (>= 1).  Layer 0 is sink-adjacent.
    """

    base: Floorplan
    n_layers: int

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise FloorplanError(f"n_layers must be >= 1, got {self.n_layers}")

    @property
    def n_cores(self) -> int:
        """Total core count across all layers."""
        return self.base.n_cores * self.n_layers

    @property
    def cores_per_layer(self) -> int:
        """Cores in each layer."""
        return self.base.n_cores

    def core_index(self, layer: int, core: int) -> int:
        """Flat index of a core addressed by (layer, within-layer index)."""
        if not (0 <= layer < self.n_layers):
            raise FloorplanError(f"layer {layer} out of range [0, {self.n_layers})")
        if not (0 <= core < self.base.n_cores):
            raise FloorplanError(
                f"core {core} out of range [0, {self.base.n_cores})"
            )
        return layer * self.base.n_cores + core

    def layer_of(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`core_index`: flat index -> (layer, core)."""
        if not (0 <= index < self.n_cores):
            raise FloorplanError(f"index {index} out of range [0, {self.n_cores})")
        return divmod(index, self.base.n_cores)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"Stack3D {self.n_layers} x [{self.base.describe()}] "
            f"({self.n_cores} cores total)"
        )
