"""Core-level floorplans.

The paper simplifies the chip floorplan to the core level: every core is a
square tile on a rectangular grid, and lateral heat conduction happens
between edge-adjacent tiles.  A :class:`Floorplan` captures exactly the
geometry the RC generator (:mod:`repro.thermal.rc`) needs:

* the number of cores and their grid positions,
* the set of adjacent core pairs with the shared edge length,
* per-core area (for vertical conductance / capacitance scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FloorplanError

__all__ = ["CoreGeometry", "Floorplan", "grid_floorplan"]


@dataclass(frozen=True)
class CoreGeometry:
    """Physical geometry of a single (square) core tile.

    Attributes
    ----------
    width_m, height_m:
        Tile dimensions in meters.  The paper uses 4 mm x 4 mm cores.
    """

    width_m: float = 4e-3
    height_m: float = 4e-3

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise FloorplanError(
                f"core dimensions must be positive, got {self.width_m} x {self.height_m}"
            )

    @property
    def area_m2(self) -> float:
        """Tile area in square meters."""
        return self.width_m * self.height_m


@dataclass(frozen=True)
class Floorplan:
    """A core-level floorplan: positions on a grid plus adjacency.

    Attributes
    ----------
    rows, cols:
        Grid dimensions.  Core index ``i`` sits at
        ``(row, col) = divmod(i, cols)`` — row-major order.
    geometry:
        Per-core tile geometry (uniform across the chip).
    occupied:
        Tuple of grid cells that actually hold a core, as flat row-major
        indices into the ``rows x cols`` grid.  Defaults to all cells.
        This supports non-rectangular layouts (e.g. an L-shaped 5-core chip).
    """

    rows: int
    cols: int
    geometry: CoreGeometry = field(default_factory=CoreGeometry)
    occupied: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise FloorplanError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        cells = self.rows * self.cols
        occ = self.occupied if self.occupied else tuple(range(cells))
        if len(set(occ)) != len(occ):
            raise FloorplanError("occupied cells contain duplicates")
        for cell in occ:
            if not (0 <= cell < cells):
                raise FloorplanError(f"occupied cell {cell} outside {self.rows}x{self.cols} grid")
        object.__setattr__(self, "occupied", tuple(sorted(occ)))

    @property
    def n_cores(self) -> int:
        """Number of cores on the chip."""
        return len(self.occupied)

    @property
    def chip_area_m2(self) -> float:
        """Total silicon area covered by cores."""
        return self.n_cores * self.geometry.area_m2

    def position(self, core: int) -> tuple[int, int]:
        """Grid (row, col) of the given core index."""
        self._check_core(core)
        return divmod(self.occupied[core], self.cols)

    def core_at(self, row: int, col: int) -> int | None:
        """Core index occupying grid cell (row, col), or None if empty."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            return None
        cell = row * self.cols + col
        try:
            return self.occupied.index(cell)
        except ValueError:
            return None

    def adjacent_pairs(self) -> list[tuple[int, int, float]]:
        """Edge-adjacent core pairs ``(i, j, shared_edge_m)`` with ``i < j``.

        Horizontal neighbours share a vertical edge of ``height_m``;
        vertical neighbours share a horizontal edge of ``width_m``.
        """
        pairs: list[tuple[int, int, float]] = []
        for i in range(self.n_cores):
            row, col = self.position(i)
            right = self.core_at(row, col + 1)
            if right is not None:
                pairs.append((i, right, self.geometry.height_m))
            below = self.core_at(row + 1, col)
            if below is not None:
                pairs.append((i, below, self.geometry.width_m))
        return [(min(i, j), max(i, j), e) for i, j, e in pairs]

    def adjacency_matrix(self) -> np.ndarray:
        """Symmetric 0/1 adjacency matrix over cores."""
        adj = np.zeros((self.n_cores, self.n_cores), dtype=float)
        for i, j, _ in self.adjacent_pairs():
            adj[i, j] = adj[j, i] = 1.0
        return adj

    def neighbor_counts(self) -> np.ndarray:
        """Number of edge-adjacent neighbours per core."""
        return self.adjacency_matrix().sum(axis=1).astype(int)

    def centers_m(self) -> np.ndarray:
        """(n_cores, 2) array of tile center coordinates in meters."""
        out = np.empty((self.n_cores, 2), dtype=float)
        for i in range(self.n_cores):
            row, col = self.position(i)
            out[i, 0] = (col + 0.5) * self.geometry.width_m
            out[i, 1] = (row + 0.5) * self.geometry.height_m
        return out

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.n_cores):
            raise FloorplanError(f"core index {core} out of range [0, {self.n_cores})")

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"Floorplan {self.rows}x{self.cols} ({self.n_cores} cores, "
            f"{self.geometry.width_m * 1e3:.1f}x{self.geometry.height_m * 1e3:.1f} mm tiles)"
        )


def grid_floorplan(
    rows: int,
    cols: int,
    core_width_m: float = 4e-3,
    core_height_m: float = 4e-3,
) -> Floorplan:
    """Build a fully-occupied ``rows x cols`` grid floorplan."""
    return Floorplan(
        rows=rows,
        cols=cols,
        geometry=CoreGeometry(width_m=core_width_m, height_m=core_height_m),
    )
