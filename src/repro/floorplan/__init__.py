"""Floorplans: core placement grids and adjacency for the RC generator."""

from repro.floorplan.layout import CoreGeometry, Floorplan, grid_floorplan
from repro.floorplan.stack3d import Stack3D
from repro.floorplan.library import (
    PAPER_CONFIGS,
    paper_floorplan,
    floorplan_2x1,
    floorplan_3x1,
    floorplan_3x2,
    floorplan_3x3,
)

__all__ = [
    "CoreGeometry",
    "Floorplan",
    "Stack3D",
    "grid_floorplan",
    "PAPER_CONFIGS",
    "paper_floorplan",
    "floorplan_2x1",
    "floorplan_3x1",
    "floorplan_3x2",
    "floorplan_3x3",
]
