"""Extension experiment: fault-injected hardening of the closed loop.

The robustness argument, made quantitative.  A reactive governor lives
or dies by its sensing/actuation loop: noisy or stale sensor readings
make it throttle late, a stuck DVFS actuator ignores it entirely, and
ambient drift silently eats its headroom.  AO's offline certificate
reads no sensor, so sensor faults cannot touch it — only *physical*
faults (stuck actuator, ambient drift) move its certified margin, and
:func:`repro.safety.faults.perturbed_peak` quantifies exactly how much.

Each scenario row reports both worlds on the same platform:

* the reactive governor run with the faults injected into its loop
  (throughput, overshoot beyond ``T_max``, feasibility), and
* AO's certified schedule re-evaluated open-loop under the same faults
  (perturbed peak and remaining margin).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.registry import get_solver
from repro.engine import ThermalEngine
from repro.experiments.control import spawn_fault_seeds
from repro.experiments.reporting import ascii_table
from repro.platform import paper_platform
from repro.safety.certificate import SafetyCertificate
from repro.safety.faults import (
    FaultSpec,
    perturbed_peak_batch,
    stacked_perturbed_peak,
)

__all__ = [
    "FaultScenarioRow",
    "StackedFaultRow",
    "FaultsResult",
    "faults_experiment",
]

#: Default fault-injection sweep: one knob at a time, then combined.
DEFAULT_SCENARIOS: tuple[tuple[str, dict], ...] = (
    ("clean", {}),
    ("noise 0.5 K", {"sensor_noise_sigma": 0.5}),
    ("dropout 30%", {"sensor_dropout_prob": 0.3}),
    ("noise + dropout", {"sensor_noise_sigma": 0.5, "sensor_dropout_prob": 0.3}),
    ("stuck core 0 @ max", {"stuck_core": 0, "stuck_level": -1}),
    ("ambient +2 K", {"ambient_drift_k": 2.0}),
)

#: Default 3D-stack structural-fault sweep: inter-layer TSV conductance
#: derating and per-layer ambient gradients, alone and combined.
DEFAULT_STACKED_SCENARIOS: tuple[tuple[str, dict], ...] = (
    ("stack clean", {}),
    ("TSV derated 30%", {"tsv_derating": 0.3}),
    ("TSV derated 60%", {"tsv_derating": 0.6}),
    ("layer gradient +1.5 K", {"layer_ambient_gradient_k": 1.5}),
    (
        "TSV 30% + gradient +1.5 K",
        {"tsv_derating": 0.3, "layer_ambient_gradient_k": 1.5},
    ),
)


@dataclass(frozen=True)
class FaultScenarioRow:
    """One fault scenario, both loops."""

    name: str
    faults: FaultSpec
    reactive_throughput: float
    reactive_overshoot_k: float
    reactive_feasible: bool
    ao_perturbed_peak: float
    ao_perturbed_margin: float


@dataclass(frozen=True)
class StackedFaultRow:
    """One structural fault scenario on the 2-layer stacked platform.

    TSV derating and layer ambient gradients are *physical* faults: they
    change the conductance matrix and boundary condition the certified
    schedule runs on, so — like stuck actuators and ambient drift — they
    move AO's margin, and :func:`repro.safety.faults.stacked_perturbed_peak`
    prices exactly how much.
    """

    name: str
    faults: FaultSpec
    perturbed_peak: float
    perturbed_margin: float


@dataclass(frozen=True)
class FaultsResult:
    """Outcome of the fault-injection experiment."""

    rows: tuple[FaultScenarioRow, ...]
    ao_throughput: float
    ao_certificate: SafetyCertificate
    theta_max: float
    seed: int = 0
    stacked_rows: tuple[StackedFaultRow, ...] = ()
    stacked_theta_max: float | None = None

    @property
    def certificate_sensor_immune(self) -> bool:
        """AO's margin unmoved by every sensor-only fault scenario."""
        clean_margin = self.ao_certificate.margin
        return all(
            abs(row.ao_perturbed_margin - clean_margin) <= 1e-9
            for row in self.rows
            if row.faults.any_sensor_fault
            and row.faults.stuck_core is None
            and row.faults.ambient_drift_k == 0.0
        )

    def format(self) -> str:
        table_rows = [
            (
                row.name,
                row.reactive_throughput,
                row.reactive_overshoot_k,
                "OK" if row.reactive_feasible else "VIOLATION",
                row.ao_perturbed_peak,
                f"{row.ao_perturbed_margin:+.2f}",
            )
            for row in self.rows
        ]
        out = ascii_table(
            [
                "scenario", "reactive thr", "overshoot (K)", "T_max",
                "AO faulted peak", "AO margin (K)",
            ],
            table_rows,
            title="Fault injection — reactive loop vs AO certificate",
        )
        lines = [
            out,
            self.ao_certificate.summary(),
            (
                "sensor faults leave the AO certificate untouched"
                if self.certificate_sensor_immune
                else "WARNING: a sensor-only scenario moved the AO margin"
            ),
        ]
        if self.stacked_rows:
            lines += [
                "",
                ascii_table(
                    ["scenario", "faulted peak", "margin (K)", "T_max"],
                    [
                        (
                            row.name,
                            row.perturbed_peak,
                            f"{row.perturbed_margin:+.2f}",
                            (
                                "OK"
                                if row.perturbed_margin >= 0
                                else "VIOLATION"
                            ),
                        )
                        for row in self.stacked_rows
                    ],
                    title=(
                        "2-layer stack structural faults — AO schedule "
                        "re-priced under TSV derating / layer gradients"
                    ),
                ),
            ]
        return "\n".join(lines)


def faults_experiment(
    n_cores: int = 3,
    n_levels: int = 2,
    t_max_c: float = 65.0,
    scenarios: tuple[tuple[str, dict], ...] = DEFAULT_SCENARIOS,
    sensor_period: float = 1e-3,
    guard_band: float = 0.0,
    m_cap: int = 64,
    seed: int = 0,
    stacked_scenarios: tuple[tuple[str, dict], ...] = DEFAULT_STACKED_SCENARIOS,
    stack_rows: int = 2,
    stack_cols: int = 2,
) -> FaultsResult:
    """Sweep fault scenarios over the reactive loop and the AO schedule.

    Parameters
    ----------
    scenarios:
        ``(label, fault_kwargs)`` pairs; each becomes one table row.
    guard_band:
        Reactive governor guard band (0 = maximally aggressive, so fault
        sensitivity shows up as overshoot rather than lost throughput).
    seed:
        Master seed; each scenario's :class:`FaultSpec` gets its own
        child seed spawned from it through ``numpy.random.SeedSequence``
        (a scenario whose kwargs pin ``seed`` explicitly keeps its pin).
        The whole result is a pure function of this integer — two runs
        at the same seed are bitwise identical.
    stacked_scenarios:
        Structural-fault rows priced on a 2-layer ``stack3d`` platform
        (TSV derating, per-layer ambient gradients); ``()`` skips the
        stacked section entirely.
    """
    engine = ThermalEngine.ensure(
        paper_platform(n_cores, n_levels=n_levels, t_max_c=t_max_c)
    )
    ao_spec = get_solver("AO")
    reactive_spec = get_solver("reactive")
    r_ao = ao_spec.solve(engine, m_cap=m_cap)
    assert r_ao.certificate is not None  # registry always attaches one

    # Price AO's schedule under every scenario in one grid call (sensor-
    # only scenarios share a row — the executed schedule is unchanged).
    child_seeds = spawn_fault_seeds(int(seed), len(scenarios))
    specs = [
        FaultSpec(**{"seed": child, **kwargs})
        for child, (_, kwargs) in zip(child_seeds, scenarios)
    ]
    peaks = perturbed_peak_batch(engine, r_ao.schedule, specs)

    rows = []
    for (label, _), spec, peak in zip(scenarios, specs, peaks):
        r_re = reactive_spec.solve(
            engine,
            sensor_period=sensor_period,
            guard_band=guard_band,
            faults=spec,
        )
        rows.append(
            FaultScenarioRow(
                name=label,
                faults=spec,
                reactive_throughput=float(r_re.throughput),
                reactive_overshoot_k=float(r_re.details["overshoot_k"]),
                reactive_feasible=bool(r_re.feasible),
                ao_perturbed_peak=float(peak),
                ao_perturbed_margin=float(engine.theta_max - peak),
            )
        )
    stacked_rows: list[StackedFaultRow] = []
    stacked_theta_max = None
    if stacked_scenarios:
        from repro.platforms import PlatformSpec

        stacked_engine = ThermalEngine.ensure(
            PlatformSpec.named(
                "stack3d",
                n_layers=2,
                rows=int(stack_rows),
                cols=int(stack_cols),
                n_levels=n_levels,
                t_max_c=t_max_c,
            ).build()
        )
        stacked_theta_max = float(stacked_engine.theta_max)
        r_stack = ao_spec.solve(stacked_engine, m_cap=m_cap)
        stack_seeds = spawn_fault_seeds(int(seed) + 1, len(stacked_scenarios))
        for child, (label, kwargs) in zip(stack_seeds, stacked_scenarios):
            spec = FaultSpec(**{"seed": child, **kwargs})
            peak = stacked_perturbed_peak(
                stacked_engine, r_stack.schedule, spec, n_layers=2
            )
            stacked_rows.append(
                StackedFaultRow(
                    name=label,
                    faults=spec,
                    perturbed_peak=float(peak),
                    perturbed_margin=float(stacked_theta_max - peak),
                )
            )
    return FaultsResult(
        rows=tuple(rows),
        ao_throughput=float(r_ao.throughput),
        ao_certificate=r_ao.certificate,
        theta_max=float(engine.theta_max),
        seed=int(seed),
        stacked_rows=tuple(stacked_rows),
        stacked_theta_max=stacked_theta_max,
    )
