"""Experiment registry: artifact id -> :class:`ExperimentSpec`.

Each entry regenerates one table or figure of the paper (or an aggregate
claim) and carries its metadata — a one-line description for ``repro
list`` and the scale-reduced ``--quick`` parameter preset that used to
live in the CLI.  ``run_experiment(id, **kwargs)`` forwards keyword
arguments to the experiment function — every experiment accepts
scale-reducing parameters (see each module's docstring).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.experiments.comparison import comparison
from repro.experiments.control import control_experiment
from repro.experiments.faults import faults_experiment
from repro.experiments.fig2 import fig2
from repro.experiments.fig3 import fig3
from repro.experiments.fig4 import fig4
from repro.experiments.fig5 import fig5
from repro.experiments.fig6 import fig6
from repro.experiments.fig7 import fig7
from repro.experiments.headline import headline
from repro.experiments.motivation import table2, table3
from repro.experiments.realtime import realtime_experiment
from repro.experiments.scaling import scaling_experiment
from repro.experiments.table5 import table5
from repro.experiments.tsp_comparison import tsp_comparison
from repro.experiments.reactive_comparison import reactive_comparison
from repro.obs import span

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered paper artifact.

    Attributes
    ----------
    name:
        The artifact id (``fig6``, ``table5``, ...).
    run:
        The experiment function; keyword arguments scale it.
    description:
        One-line summary for ``repro list``.
    quick:
        Keyword overrides for a seconds-scale smoke run (``--quick``).
    accepts_runner:
        Whether the experiment function takes the sharded-runner keyword
        arguments (``runner``, ``run_dir``, ``resume``, ``progress``) —
        i.e. whether the CLI's ``--parallel`` / ``--timeout`` /
        ``--retries`` / ``--run-dir`` / ``--resume`` flags apply.
    """

    name: str
    run: Callable
    description: str
    quick: Mapping[str, object] = field(default_factory=dict)
    accepts_runner: bool = False


#: All registered experiments, keyed by artifact id.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="table2",
            run=table2,
            description="motivation: constant vs oscillating peak (Table II)",
        ),
        ExperimentSpec(
            name="table3",
            run=table3,
            description="motivation: oscillation period sweep (Table III)",
            quick={"periods": (0.020, 0.010)},
        ),
        ExperimentSpec(
            name="fig2",
            run=fig2,
            description="motivation: constant-assignment temperature traces",
        ),
        ExperimentSpec(
            name="fig3",
            run=fig3,
            description="motivation: oscillating-schedule temperature traces",
            quick={"step": 1.0, "grid_per_interval": 24},
        ),
        ExperimentSpec(
            name="fig4",
            run=fig4,
            description="stable-status convergence of the periodic schedule",
            quick={"warmup_periods": 4, "samples_per_interval": 8},
        ),
        ExperimentSpec(
            name="fig5",
            run=fig5,
            description="peak temperature vs oscillation count m",
            quick={"m_max": 5},
        ),
        ExperimentSpec(
            name="fig6",
            run=fig6,
            description="throughput comparison over cores x ladder levels",
            quick={"core_counts": (2, 3), "level_counts": (2, 3), "m_cap": 16},
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="fig7",
            run=fig7,
            description="throughput comparison over cores x T_max",
            quick={
                "core_counts": (2, 3),
                "t_max_values": (55.0, 65.0),
                "m_cap": 16,
            },
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="table5",
            run=table5,
            description="algorithm wall-clock cost comparison (Table V)",
            quick={"core_counts": (2, 3), "level_counts": (2, 3), "m_cap": 16},
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="headline",
            run=headline,
            description="aggregate AO-vs-EXS improvement claim",
            quick={
                "core_counts": (2, 3),
                "level_counts": (2, 3),
                "t_max_values": (55.0, 65.0),
                "m_cap": 16,
            },
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="comparison",
            run=comparison,
            description="bare AO/PCO/EXS/LNS sweep (sharded-runner native)",
            quick={
                "core_counts": (2, 3),
                "level_counts": (2,),
                "t_max_values": (55.0,),
                "approaches": ("LNS", "EXS", "AO"),
                "m_cap": 16,
            },
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="tsp",
            run=tsp_comparison,
            description="AO vs thermal-safe-power budgets",
            quick={"core_counts": (2, 3), "m_cap": 16},
        ),
        ExperimentSpec(
            name="reactive",
            run=reactive_comparison,
            description="AO vs reactive DTM guard-band sweep",
            quick={"guard_bands": (0.0, 3.0), "m_cap": 16},
        ),
        ExperimentSpec(
            name="faults",
            run=faults_experiment,
            description="fault injection: reactive loop vs AO certificate",
            quick={
                "n_cores": 2,
                "scenarios": (
                    ("clean", {}),
                    ("noise + dropout", {
                        "sensor_noise_sigma": 0.5,
                        "sensor_dropout_prob": 0.3,
                    }),
                    ("ambient +2 K", {"ambient_drift_k": 2.0}),
                ),
                "m_cap": 16,
            },
        ),
        ExperimentSpec(
            name="scaling",
            run=scaling_experiment,
            description="technology-scaling dark-silicon frontier "
            "(generated tech platforms, 45-8 nm)",
            quick={
                "nodes": (45, 16),
                "scenarios": ("itrs",),
                "styles": ("io", "o3"),
                "layer_counts": (1,),
                "approaches": ("AO",),
                "utilization_floors": (0.0,),
                "n_cores": 4,
                "n_levels": 3,
                "m_cap": 16,
            },
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="realtime",
            run=realtime_experiment,
            description="k-fault-tolerant real-time frames: margin-aware "
            "vs thermally-blind backup placement",
            quick={
                "k_values": (1,),
                "intensities": (1,),
                "utilizations": (0.9,),
                "n_sets": 2,
                "n_frames": 4,
                "steps_per_frame": 4,
            },
            accepts_runner=True,
        ),
        ExperimentSpec(
            name="control",
            run=control_experiment,
            description="integral controller vs reactive vs certified AO "
            "under sensor faults",
            quick={
                "intensities": (0.0, 1.0),
                "horizon": 0.2,
                "m_cap": 16,
            },
            accepts_runner=True,
        ),
    )
}


def get_experiment(name: str) -> Callable:
    """Look an experiment's run function up by id.

    Raises
    ------
    KeyError
        With the list of known ids when the name is unknown.
    """
    try:
        return EXPERIMENTS[name].run
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, quick: bool = False, **kwargs):
    """Run an experiment by id and return its result object.

    With ``quick`` the spec's scale-reduced preset is applied first;
    explicit ``kwargs`` override preset entries.
    """
    spec = EXPERIMENTS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    merged = {**spec.quick, **kwargs} if quick else kwargs
    with span(f"experiment/{name}", quick=bool(quick)):
        return spec.run(**merged)
