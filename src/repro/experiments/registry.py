"""Experiment registry: artifact id -> callable.

Each entry regenerates one table or figure of the paper (or an aggregate
claim).  ``run_experiment(id, **kwargs)`` forwards keyword arguments to
the experiment function — every experiment accepts scale-reducing
parameters for quick runs (see each module's docstring).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.fig2 import fig2
from repro.experiments.fig3 import fig3
from repro.experiments.fig4 import fig4
from repro.experiments.fig5 import fig5
from repro.experiments.fig6 import fig6
from repro.experiments.fig7 import fig7
from repro.experiments.headline import headline
from repro.experiments.motivation import table2, table3
from repro.experiments.table5 import table5
from repro.experiments.tsp_comparison import tsp_comparison
from repro.experiments.reactive_comparison import reactive_comparison

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

EXPERIMENTS: dict[str, Callable] = {
    "table2": table2,
    "table3": table3,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "table5": table5,
    "headline": headline,
    "tsp": tsp_comparison,
    "reactive": reactive_comparison,
}


def get_experiment(name: str) -> Callable:
    """Look an experiment up by id.

    Raises
    ------
    KeyError
        With the list of known ids when the name is unknown.
    """
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, **kwargs):
    """Run an experiment by id and return its result object."""
    return get_experiment(name)(**kwargs)
