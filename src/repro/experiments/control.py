"""Extension experiment: closed-loop control vs the offline certificate.

The ROADMAP question made executable: *does closed-loop control ever
beat the offline oscillating schedule once sensors are noisy?*  Three
contenders run on the same platform across a sweep of sensor-fault
intensities:

* the **integral controller** (``integral``, noise-averaging gains) —
  principled feedback, degrades gracefully: its ``hot_gain`` asymmetry
  converts sensor noise into lost throughput rather than overshoot;
* the **reactive governor** (``reactive``) at the same guard band —
  threshold hysteresis, whose throughput *rises* with noise (spurious
  cold readings re-raise it early) while its overshoot explodes;
* **certified AO** — the offline schedule, which reads no sensor: its
  throughput and certificate are constant across every intensity.

Intensity ``i`` scales both sensor-fault knobs at once
(``sigma = 0.5 K * i``, ``dropout = 0.15 * i``); per-intensity fault
seeds are spawned deterministically from the experiment seed through
``numpy.random.SeedSequence``, so the whole table — including the fault
realizations — is bitwise reproducible from one integer.

Runner-native: each (intensity, loop) pair is one ``solve_cell`` work
unit whose payload carries the full fault dict (seed included), so the
run journal records every seed and a resumed sweep replays identically.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.reporting import ascii_plot, ascii_table
from repro.platform import paper_platform
from repro.safety.faults import FaultSpec
from repro.runner import RunnerConfig, RunReport, run as run_units
from repro.runner.units import WorkUnit
from repro.schedule.serialization import result_from_dict

__all__ = [
    "ControlRow",
    "ControlResult",
    "control_experiment",
    "control_units",
    "spawn_fault_seeds",
]

#: Default fault-intensity sweep (0 = clean loop).
DEFAULT_INTENSITIES: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)

#: Sensor-noise sigma (K) and dropout probability per unit of intensity.
SIGMA_PER_INTENSITY = 0.5
DROPOUT_PER_INTENSITY = 0.15


def spawn_fault_seeds(seed: int, count: int) -> tuple[int, ...]:
    """Per-scenario fault seeds, spawned deterministically from ``seed``.

    ``SeedSequence.spawn`` gives statistically independent child streams;
    collapsing each child to one ``uint32`` keeps the seeds JSON-able so
    they travel inside work-unit payloads and journal rows.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return tuple(int(child.generate_state(1)[0]) for child in children)


@dataclass(frozen=True)
class ControlRow:
    """Both closed loops at one fault intensity."""

    intensity: float
    sensor_noise_sigma: float
    sensor_dropout_prob: float
    seed: int
    controller_throughput: float
    controller_overshoot_k: float
    controller_feasible: bool
    reactive_throughput: float
    reactive_overshoot_k: float
    reactive_feasible: bool


@dataclass(frozen=True)
class ControlResult:
    """Outcome of the control experiment."""

    rows: tuple[ControlRow, ...]
    ao_throughput: float
    ao_peak_theta: float
    ao_feasible: bool
    theta_max: float
    seed: int
    report: RunReport | None = field(default=None, compare=False, repr=False)

    @property
    def crossover_intensity(self) -> float | None:
        """First intensity where the integral/reactive ordering flips.

        ``None`` when one loop dominates the whole sweep.
        """
        lead = None
        for row in self.rows:
            now = row.controller_throughput >= row.reactive_throughput
            if lead is None:
                lead = now
            elif now != lead:
                return row.intensity
        return None

    def headline(self) -> dict[str, Any]:
        """The committed JSON claim (bitwise reproducible from ``seed``)."""
        return {
            "experiment": "control",
            "seed": self.seed,
            "theta_max": self.theta_max,
            "ao": {
                "throughput": self.ao_throughput,
                "peak_theta": self.ao_peak_theta,
                "feasible": self.ao_feasible,
            },
            "crossover_intensity": self.crossover_intensity,
            "rows": [
                {
                    "intensity": row.intensity,
                    "sensor_noise_sigma": row.sensor_noise_sigma,
                    "sensor_dropout_prob": row.sensor_dropout_prob,
                    "seed": row.seed,
                    "integral": {
                        "throughput": row.controller_throughput,
                        "overshoot_k": row.controller_overshoot_k,
                        "feasible": row.controller_feasible,
                    },
                    "reactive": {
                        "throughput": row.reactive_throughput,
                        "overshoot_k": row.reactive_overshoot_k,
                        "feasible": row.reactive_feasible,
                    },
                }
                for row in self.rows
            ],
        }

    def format(self) -> str:
        table = ascii_table(
            [
                "intensity", "sigma (K)", "dropout",
                "integral thr", "integral over (K)",
                "reactive thr", "reactive over (K)", "AO thr",
            ],
            [
                (
                    row.intensity,
                    row.sensor_noise_sigma,
                    row.sensor_dropout_prob,
                    row.controller_throughput,
                    row.controller_overshoot_k,
                    row.reactive_throughput,
                    row.reactive_overshoot_k,
                    self.ao_throughput,
                )
                for row in self.rows
            ],
            title=(
                "Closed-loop control under sensor faults — integral vs "
                "reactive vs certified AO"
            ),
        )
        xs = [row.intensity for row in self.rows]
        plot = ascii_plot(
            xs,
            {
                "integral": [r.controller_throughput for r in self.rows],
                "reactive": [r.reactive_throughput for r in self.rows],
                "AO (certified)": [self.ao_throughput] * len(self.rows),
            },
            title="throughput vs fault intensity",
            y_label="time-averaged speed",
        )
        cross = self.crossover_intensity
        lines = [
            table,
            "",
            plot,
            "",
            (
                f"integral/reactive throughput ordering flips at "
                f"intensity {cross:g}"
                if cross is not None
                else "no integral/reactive throughput crossover in the sweep"
            ),
            (
                "AO reads no sensor: its certified throughput "
                f"({self.ao_throughput:.4f}) is constant across the sweep"
            ),
        ]
        return "\n".join(lines)


def control_units(
    n_cores: int,
    n_levels: int,
    t_max_c: float,
    intensities: tuple[float, ...],
    seeds: tuple[int, ...],
    sensor_period: float,
    guard_band: float,
    gain_scale: float,
    horizon: float,
    m_cap: int,
    tau: float = 5e-6,
) -> list[WorkUnit]:
    """One ``solve_cell`` unit per (intensity, loop), plus one AO unit.

    The fault dict — seed included — rides inside each unit's payload,
    so the journal rows double as the experiment's seed record.
    """
    cell = {
        "n_cores": int(n_cores),
        "n_levels": int(n_levels),
        "t_max_c": float(t_max_c),
        "tau": float(tau),
    }
    units = [
        WorkUnit(
            kind="solve_cell",
            payload={**cell, "algo": "AO", "params": {"m_cap": int(m_cap)}},
            label=f"AO@cores={n_cores}",
        )
    ]
    for intensity, child_seed in zip(intensities, seeds):
        faults = None
        if intensity > 0:
            # The *fully-sampled* spec (every knob, post-seed draw) goes
            # into the payload, so the journal row alone replays a
            # failed unit bit-exactly on --resume — no field defaults
            # left to drift between versions.
            faults = FaultSpec(
                sensor_noise_sigma=SIGMA_PER_INTENSITY * intensity,
                sensor_dropout_prob=DROPOUT_PER_INTENSITY * intensity,
                seed=int(child_seed),
            ).as_dict()
        units.append(
            WorkUnit(
                kind="solve_cell",
                payload={
                    **cell,
                    "algo": "integral",
                    "params": {
                        "gain_scale": float(gain_scale),
                        "reference_offset": float(guard_band),
                        "sensor_period": float(sensor_period),
                        "horizon": float(horizon),
                        "faults": faults,
                    },
                },
                label=f"integral@i={intensity:g}",
            )
        )
        units.append(
            WorkUnit(
                kind="solve_cell",
                payload={
                    **cell,
                    "algo": "reactive",
                    "params": {
                        "guard_band": float(guard_band),
                        "sensor_period": float(sensor_period),
                        "horizon": float(horizon),
                        "faults": faults,
                    },
                },
                label=f"reactive@i={intensity:g}",
            )
        )
    return units


def control_experiment(
    n_cores: int = 3,
    n_levels: int = 2,
    t_max_c: float = 55.0,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    seed: int = 2016,
    sensor_period: float = 1e-3,
    guard_band: float = 2.0,
    gain_scale: float = 0.1,
    horizon: float = 0.75,
    m_cap: int = 64,
    runner: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable | None = None,
) -> ControlResult:
    """Sweep sensor-fault intensity over both closed loops and AO.

    Parameters
    ----------
    intensities:
        Multipliers on the sensor-fault knobs; 0 is the clean loop.
    seed:
        Master seed; per-intensity fault seeds are spawned from it
        (:func:`spawn_fault_seeds`), making the whole result — fault
        realizations included — a pure function of this integer.
    guard_band:
        Kelvin below ``T_max`` both loops aim for: the reactive
        governor's throttle band and the controller's reference offset,
        kept equal so the comparison is guard-for-guard.
    gain_scale:
        Controller gain multiplier.  The default 0.1 runs the integral
        loop in its noise-averaging regime (genuine multi-step
        integration) instead of the deadbeat/bang-bang regime, which is
        what makes its fault response graceful.
    """
    intensities = tuple(float(i) for i in intensities)
    seeds = spawn_fault_seeds(int(seed), len(intensities))
    units = control_units(
        n_cores, n_levels, t_max_c, intensities, seeds,
        sensor_period, guard_band, gain_scale, horizon, m_cap,
    )
    report = run_units(
        units,
        config=runner or RunnerConfig(),
        run_dir=run_dir,
        resume=resume,
        progress=progress,
        manifest_extra={
            "experiment": "control",
            "seed": int(seed),
            "fault_seeds": list(seeds),
            "intensities": list(intensities),
            "guard_band": float(guard_band),
            "gain_scale": float(gain_scale),
        },
    )

    def result_of(unit: WorkUnit):
        row = report.records.get(unit.unit_id)
        if row is None or row.get("status") != "ok":
            raise RuntimeError(
                f"control experiment unit {unit.label!r} did not complete: "
                f"{None if row is None else row.get('status')}"
            )
        return result_from_dict(row["result"])

    theta_max = float(
        paper_platform(n_cores, n_levels=n_levels, t_max_c=t_max_c).theta_max
    )
    ao = result_of(units[0])
    rows = []
    for k, (intensity, child_seed) in enumerate(zip(intensities, seeds)):
        r_int = result_of(units[1 + 2 * k])
        r_re = result_of(units[2 + 2 * k])
        rows.append(
            ControlRow(
                intensity=intensity,
                sensor_noise_sigma=SIGMA_PER_INTENSITY * intensity,
                sensor_dropout_prob=DROPOUT_PER_INTENSITY * intensity,
                seed=int(child_seed),
                controller_throughput=float(r_int.throughput),
                controller_overshoot_k=float(
                    max(0.0, r_int.peak_theta - theta_max)
                ),
                controller_feasible=bool(r_int.feasible),
                reactive_throughput=float(r_re.throughput),
                reactive_overshoot_k=float(
                    max(0.0, r_re.peak_theta - theta_max)
                ),
                reactive_feasible=bool(r_re.feasible),
            )
        )
    return ControlResult(
        rows=tuple(rows),
        ao_throughput=float(ao.throughput),
        ao_peak_theta=float(ao.peak_theta),
        ao_feasible=bool(ao.feasible),
        theta_max=theta_max,
        seed=int(seed),
        report=report,
    )
