"""Extension experiment: the technology-scaling / dark-silicon frontier.

The ROADMAP question made executable: *as nodes shrink and thermal
headroom collapses, when does frequency oscillation stop being enough —
when does dark silicon become mandatory?*  For every sweep cell
``(node, scenario, style, stack layers)`` the generated ``tech``
platform (:mod:`repro.scaling`) is attacked two ways:

* **full-chip oscillation** — the paper's contenders (LNS, AO, PCO by
  default) keep every core lit and oscillate around the thermal
  constraint.  Outcomes ride through
  :func:`~repro.algorithms.registry.guarded_solve`, so a cell where even
  all-``v_min`` operation overheats comes back as an honest
  ``feasible=False`` fallback row rather than a crash — feasibility
  flags, not raw throughput, decide the frontier;
* **dark silicon** — the greedy gating policy
  (:func:`~repro.algorithms.dark.dark_silicon_ao`) under utilization
  floors: a floor of 0.5 requires at least half the chip lit, bounding
  ``max_dark``.  With gating allowed down to one core, dark silicon is
  feasible long after full-chip operation dies.

The headline is the **crossover node** per series: the first node (in
shrink order) where full-chip oscillation is thermally infeasible and
cores must be gated dark.  Stacking layers pulls the frontier toward
older nodes — the 3D dark-silicon effect the motivation cites.

Chip speed is also reported in absolute terms: throughput (mean
normalized speed, the ``f = v`` convention) is rescaled by the node's
nominal frequency and vdd — ``chip GHz = thr * n_total / vdd * f_nom`` —
so the frontier table shows what scaling actually buys once thermals
take their cut.

Runner-native: each ``(cell, contender)`` pair is one ``solve_cell``
work unit whose payload carries the full platform-spec document and a
deterministic per-cell seed spawned from the experiment seed via
``numpy.random.SeedSequence`` — the journal doubles as the provenance
record and the result is bitwise reproducible from one integer.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.control import spawn_fault_seeds
from repro.experiments.reporting import ascii_plot, ascii_table, to_csv
from repro.runner import RunnerConfig, RunReport, run as run_units
from repro.runner.units import WorkUnit
from repro.scaling.tables import TECH_NODES, frequency_ghz, vdd_v

__all__ = [
    "ScalingRow",
    "ScalingResult",
    "scaling_experiment",
    "scaling_units",
]

#: Default oscillation contenders (EXS enumerates ``levels^cores``
#: assignments — opt in via ``approaches`` on small cells only).
DEFAULT_APPROACHES: tuple[str, ...] = ("LNS", "AO", "PCO")

#: Default utilization floors for the dark-silicon policy: 0.0 gates
#: freely (down to one lit core), 0.5 keeps at least half the chip lit.
DEFAULT_UTILIZATION_FLOORS: tuple[float, ...] = (0.0, 0.5)


def _max_dark(n_total: int, floor: float) -> int:
    """Gating budget under a utilization floor (≥ ``floor`` of cores lit)."""
    min_lit = max(1, int(math.ceil(float(floor) * n_total)))
    return max(0, n_total - min_lit)


def scaling_units(
    cells: Sequence[tuple[int, str, str, int]],
    seeds: Sequence[int],
    n_cores: int,
    n_levels: int,
    t_max_c: float,
    approaches: Sequence[str],
    utilization_floors: Sequence[float],
    common_params: dict[str, Any],
) -> list[WorkUnit]:
    """One ``solve_cell`` unit per (cell, contender).

    Payloads carry the platform as a :class:`~repro.platforms.PlatformSpec`
    document plus the cell's spawned seed, so journal rows are
    self-describing and resumable across processes.  ``common_params``
    is filtered per solver through the registry's declared ``params``
    whitelist, as in :func:`~repro.runner.units.comparison_units`.
    """
    from repro.algorithms.registry import get_solver
    from repro.platforms import PlatformSpec

    units: list[WorkUnit] = []
    for (node, scenario, style, layers), cell_seed in zip(cells, seeds):
        spec_doc = PlatformSpec(
            "tech",
            {
                "node": int(node),
                "scenario": str(scenario),
                "style": str(style),
                "n_cores": int(n_cores),
                "n_levels": int(n_levels),
                "stack_layers": int(layers),
                "t_max_c": float(t_max_c),
            },
        ).as_dict()
        tag = f"{node}nm-{scenario}-{style}-L{layers}"
        n_total = int(n_cores) * int(layers)
        for name in approaches:
            solver = get_solver(str(name))
            params = {
                k: v for k, v in common_params.items() if k in solver.params
            }
            units.append(
                WorkUnit(
                    kind="solve_cell",
                    payload={
                        "platform": spec_doc,
                        "algo": solver.name,
                        "params": params,
                        "seed": int(cell_seed),
                    },
                    label=f"{solver.name}@{tag}",
                )
            )
        dark = get_solver("dark")
        for floor in utilization_floors:
            params = {
                k: v for k, v in common_params.items() if k in dark.params
            }
            params["max_dark"] = _max_dark(n_total, float(floor))
            units.append(
                WorkUnit(
                    kind="solve_cell",
                    payload={
                        "platform": spec_doc,
                        "algo": dark.name,
                        "params": params,
                        "seed": int(cell_seed),
                    },
                    label=f"dark(u>={float(floor):g})@{tag}",
                )
            )
    return units


@dataclass(frozen=True)
class ScalingRow:
    """Every contender's outcome on one sweep cell.

    ``oscillation`` maps approach name to an outcome dict
    (``throughput`` / ``feasible`` / ``fallback`` / ``peak_theta``);
    ``dark`` maps the utilization-floor key (``"0"``, ``"0.5"``) to the
    same plus ``gated`` and ``max_dark``.  Infeasible contenders carry
    ``throughput: None``.
    """

    node: int
    scenario: str
    style: str
    layers: int
    seed: int
    frequency_ghz: float
    vdd_v: float
    oscillation: dict[str, dict[str, Any]]
    dark: dict[str, dict[str, Any]]

    @property
    def n_total(self) -> int:
        """Total cores implied by the dark policies' gating budgets."""
        budgets = [d["max_dark"] for d in self.dark.values()]
        return (max(budgets) + 1) if budgets else 0

    @property
    def best_oscillation(self) -> tuple[str, float] | None:
        """``(approach, throughput)`` of the best *feasible* full-chip run."""
        best = None
        for name, out in self.oscillation.items():
            if out["feasible"] and out["throughput"] is not None:
                if best is None or out["throughput"] > best[1]:
                    best = (name, float(out["throughput"]))
        return best

    @property
    def best_dark(self) -> tuple[str, float, int] | None:
        """``(floor_key, throughput, gated)`` of the best feasible policy."""
        best = None
        for key, out in self.dark.items():
            if out["feasible"] and out["throughput"] is not None:
                if best is None or out["throughput"] > best[1]:
                    best = (key, float(out["throughput"]), int(out["gated"]))
        return best

    @property
    def dark_silicon(self) -> bool:
        """Whether full-chip oscillation is thermally infeasible here."""
        return self.best_oscillation is None

    def chip_speed_ghz(self, throughput: float | None) -> float | None:
        """Mean-speed throughput rescaled to absolute chip GHz."""
        if throughput is None:
            return None
        return float(throughput) * self.n_total / self.vdd_v * self.frequency_ghz


@dataclass(frozen=True)
class ScalingResult:
    """Outcome of the technology-scaling sweep."""

    rows: tuple[ScalingRow, ...]
    nodes: tuple[int, ...]
    seed: int
    n_cores: int
    n_levels: int
    t_max_c: float
    report: RunReport | None = field(default=None, compare=False, repr=False)

    def series_keys(self) -> tuple[tuple[str, str, int], ...]:
        """``(scenario, style, layers)`` combinations, in sweep order."""
        keys: list[tuple[str, str, int]] = []
        for row in self.rows:
            key = (row.scenario, row.style, row.layers)
            if key not in keys:
                keys.append(key)
        return tuple(keys)

    def series_rows(self, key: tuple[str, str, int]) -> tuple[ScalingRow, ...]:
        """The series' rows in node order (largest feature size first)."""
        scenario, style, layers = key
        picked = [
            r for r in self.rows
            if (r.scenario, r.style, r.layers) == (scenario, style, layers)
        ]
        return tuple(sorted(picked, key=lambda r: -r.node))

    def crossover_node(self, key: tuple[str, str, int]) -> int | None:
        """First node (shrink order) where dark silicon is mandatory.

        ``None`` when full-chip oscillation stays feasible through the
        whole series.
        """
        for row in self.series_rows(key):
            if row.dark_silicon:
                return row.node
        return None

    @property
    def crossover_nodes(self) -> dict[str, int | None]:
        """Per-series crossover, keyed ``"scenario/style/L<layers>"``."""
        return {
            f"{s}/{st}/L{la}": self.crossover_node((s, st, la))
            for s, st, la in self.series_keys()
        }

    def headline(self) -> dict[str, Any]:
        """The committed JSON claim (bitwise reproducible from ``seed``)."""
        primary = self.series_keys()[0] if self.rows else None
        return {
            "experiment": "scaling",
            "seed": self.seed,
            "n_cores": self.n_cores,
            "n_levels": self.n_levels,
            "t_max_c": self.t_max_c,
            "crossover_node": (
                self.crossover_node(primary) if primary else None
            ),
            "crossover_nodes": self.crossover_nodes,
            "rows": [
                {
                    "node": row.node,
                    "scenario": row.scenario,
                    "style": row.style,
                    "layers": row.layers,
                    "seed": row.seed,
                    "frequency_ghz": row.frequency_ghz,
                    "vdd_v": row.vdd_v,
                    "dark_silicon": row.dark_silicon,
                    "oscillation": row.oscillation,
                    "dark": row.dark,
                }
                for row in self.rows
            ],
        }

    def _table_rows(self) -> list[tuple]:
        out = []
        for row in self.rows:
            osc = row.best_oscillation
            dark = row.best_dark
            winner_thr = osc[1] if osc else (dark[1] if dark else None)
            chip = row.chip_speed_ghz(winner_thr)
            out.append(
                (
                    f"{row.node}nm",
                    row.scenario,
                    row.style,
                    row.layers,
                    row.frequency_ghz,
                    (f"{osc[1]:.4f} ({osc[0]})" if osc else "infeasible"),
                    (f"{dark[1]:.4f}" if dark else "infeasible"),
                    (dark[2] if dark else "-"),
                    (f"{chip:.1f}" if chip is not None else "-"),
                    ("dark" if row.dark_silicon else "oscillation"),
                )
            )
        return out

    def to_csv(self) -> str:
        headers = [
            "node_nm", "scenario", "style", "layers", "frequency_ghz",
            "osc_throughput", "osc_approach", "dark_throughput",
            "dark_gated", "dark_silicon",
        ]
        rows = []
        for row in self.rows:
            osc = row.best_oscillation
            dark = row.best_dark
            rows.append(
                (
                    row.node, row.scenario, row.style, row.layers,
                    row.frequency_ghz,
                    osc[1] if osc else "", osc[0] if osc else "",
                    dark[1] if dark else "", dark[2] if dark else "",
                    int(row.dark_silicon),
                )
            )
        return to_csv(headers, rows)

    def format(self) -> str:
        table = ascii_table(
            [
                "node", "scenario", "style", "layers", "f (GHz)",
                "oscillation thr", "dark thr", "gated", "chip GHz",
                "regime",
            ],
            self._table_rows(),
            title=(
                "Technology scaling vs dark silicon — full-chip "
                "oscillation against gated operation "
                f"({self.n_cores} cores/layer, T_max {self.t_max_c:g} C)"
            ),
        )
        lines = [table]
        primary = self.series_keys()[0] if self.rows else None
        if primary is not None:
            rows = self.series_rows(primary)
            xs = [float(r.node) for r in rows]
            osc_chip = [
                (r.chip_speed_ghz(r.best_oscillation[1])
                 if r.best_oscillation else 0.0)
                for r in rows
            ]
            dark_chip = [
                (r.chip_speed_ghz(r.best_dark[1]) if r.best_dark else 0.0)
                for r in rows
            ]
            scenario, style, layers = primary
            lines += [
                "",
                ascii_plot(
                    xs,
                    {"oscillation (full chip)": osc_chip,
                     "dark (best policy)": dark_chip},
                    title=(
                        f"chip speed vs node — {scenario}/{style}, "
                        f"{layers} layer(s); 0 = thermally infeasible"
                    ),
                    y_label="chip GHz (throughput x n_cores x f_nom / vdd)",
                ),
            ]
        for key, node in self.crossover_nodes.items():
            lines.append(
                f"{key}: dark silicon mandatory from {node} nm"
                if node is not None
                else f"{key}: full-chip oscillation feasible at every node"
            )
        return "\n".join(lines)


def _contender_outcome(report: RunReport, unit: WorkUnit) -> dict[str, Any]:
    """One journal row -> the outcome dict a :class:`ScalingRow` stores."""
    from repro.schedule.serialization import result_from_dict

    row = report.records.get(unit.unit_id)
    if row is None or row.get("status") not in ("ok", "infeasible"):
        raise RuntimeError(
            f"scaling experiment unit {unit.label!r} did not complete: "
            f"{None if row is None else row.get('status')}"
        )
    if row["status"] == "infeasible":
        return {
            "throughput": None,
            "feasible": False,
            "peak_theta": None,
            "fallback": None,
            "detail": row.get("detail"),
        }
    result = result_from_dict(row["result"])
    fallback = (result.details or {}).get("fallback")
    out: dict[str, Any] = {
        "throughput": float(result.throughput),
        "feasible": bool(result.feasible),
        "peak_theta": float(result.peak_theta),
        "fallback": str(fallback["hop"]) if fallback else None,
    }
    dark_cores = (result.details or {}).get("dark_cores")
    if dark_cores is not None:
        out["gated"] = len(dark_cores)
    return out


def scaling_experiment(
    nodes: Sequence[int] = TECH_NODES,
    scenarios: Sequence[str] = ("itrs", "cons"),
    styles: Sequence[str] = ("io",),
    layer_counts: Sequence[int] = (1, 2),
    n_cores: int = 9,
    n_levels: int = 4,
    t_max_c: float = 55.0,
    approaches: Sequence[str] = DEFAULT_APPROACHES,
    utilization_floors: Sequence[float] = DEFAULT_UTILIZATION_FLOORS,
    m_cap: int = 16,
    seed: int = 2016,
    runner: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable | None = None,
) -> ScalingResult:
    """Sweep generated platforms across nodes for the dark-silicon frontier.

    Parameters
    ----------
    nodes, scenarios, styles, layer_counts:
        The sweep axes (see :mod:`repro.scaling.tables`); every
        combination is one cell.
    approaches:
        Full-chip oscillation contenders (registry names).  ``EXS`` is
        valid but exhaustive — opt in only on small cells.
    utilization_floors:
        Dark-silicon policies: each floor ``u`` requires at least
        ``u * n_total`` cores lit and becomes one ``dark`` run with the
        matching ``max_dark`` budget.
    m_cap:
        Oscillation-count cap shared by every contender that takes it.
    seed:
        Master seed; per-cell seeds are spawned from it
        (:func:`~repro.experiments.control.spawn_fault_seeds`) and ride
        in the unit payloads, so journals are self-describing and the
        result is a pure function of this integer.
    """
    cells = [
        (int(node), str(scenario), str(style), int(layers))
        for scenario in scenarios
        for style in styles
        for layers in layer_counts
        for node in nodes
    ]
    seeds = spawn_fault_seeds(int(seed), len(cells))
    units = scaling_units(
        cells, seeds, n_cores, n_levels, t_max_c,
        approaches, utilization_floors, {"m_cap": int(m_cap)},
    )
    report = run_units(
        units,
        config=runner or RunnerConfig(),
        run_dir=run_dir,
        resume=resume,
        progress=progress,
        manifest_extra={
            "experiment": "scaling",
            "seed": int(seed),
            "cell_seeds": list(seeds),
            "nodes": [int(n) for n in nodes],
            "scenarios": [str(s) for s in scenarios],
            "styles": [str(s) for s in styles],
            "layer_counts": [int(la) for la in layer_counts],
            "utilization_floors": [float(u) for u in utilization_floors],
        },
    )

    n_contenders = len(tuple(approaches)) + len(tuple(utilization_floors))
    rows: list[ScalingRow] = []
    for i, ((node, scenario, style, layers), cell_seed) in enumerate(
        zip(cells, seeds)
    ):
        cell_units = units[i * n_contenders:(i + 1) * n_contenders]
        oscillation: dict[str, dict[str, Any]] = {}
        dark: dict[str, dict[str, Any]] = {}
        for unit, name in zip(cell_units, approaches):
            oscillation[str(name)] = _contender_outcome(report, unit)
        for unit, floor in zip(
            cell_units[len(tuple(approaches)):], utilization_floors
        ):
            out = _contender_outcome(report, unit)
            out.setdefault("gated", None)
            out["max_dark"] = _max_dark(int(n_cores) * int(layers), float(floor))
            dark[f"{float(floor):g}"] = out
        rows.append(
            ScalingRow(
                node=node,
                scenario=scenario,
                style=style,
                layers=layers,
                seed=int(cell_seed),
                frequency_ghz=frequency_ghz(node, scenario, style),
                vdd_v=vdd_v(node, scenario),
                oscillation=oscillation,
                dark=dark,
            )
        )
    return ScalingResult(
        rows=tuple(rows),
        nodes=tuple(int(n) for n in nodes),
        seed=int(seed),
        n_cores=int(n_cores),
        n_levels=int(n_levels),
        t_max_c=float(t_max_c),
        report=report,
    )
