"""Extension experiment: k-fault-tolerant real-time frames on a thermal budget.

The ROADMAP's "fault-tolerant real-time frames" fusion made executable:
frame-based task sets are placed with primaries plus ``k`` backup copies
per task, then hit with injected core failures in the closed loop
(:func:`repro.realtime.recovery.simulate_recovery`).  Two placement
policies compete at matched ``T_max``:

* **margin** — backups consume *certified* thermal margin: the
  activation envelope (every core oscillating between its nominal and
  activation level) is peak-checked and certified at admission, and
  activation frequencies are walked down until the remaining margin
  covers them;
* **blind** — the classical thermally-blind EnSuRe placement: backups
  balance load and activate at the top ladder frequency, no certificate
  consulted.

A scenario is **schedulable** when the full workload is admitted (no
graceful-degradation sheds) *and* the fault-injected run is safe: zero
deadline misses, true-trace peak within ``T_max``, and the degraded
placement re-certifying after permanent failures.  The headline is the
margin-minus-blind schedulability gap — blind placements that "fit" are
disqualified at runtime by thermal violations the margin policy priced
in up front.

Intensity is the number of injected core failures.  When it exceeds
``k`` the k-fault guarantee no longer applies and *both* policies may
miss deadlines — those rows show the guarantee's boundary.

Runner-native and bitwise reproducible: each (k, intensity, utilization,
workload-draw, policy) tuple is one ``realtime_cell`` work unit whose
payload carries the concrete workload and the fully-sampled
:class:`~repro.safety.faults.FaultSpec` (pre-drawn failure times and
kinds, post-seed), so journal rows replay bit-exactly on ``--resume``.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.control import spawn_fault_seeds
from repro.experiments.reporting import ascii_plot, ascii_table
from repro.platforms import PlatformSpec
from repro.realtime import FrameWorkload
from repro.runner import RunnerConfig, RunReport, run as run_units
from repro.runner.units import WorkUnit
from repro.safety.faults import CoreFailure, FaultSpec

__all__ = [
    "RealtimeRow",
    "RealtimeResult",
    "realtime_experiment",
    "realtime_units",
    "draw_failures",
]

#: Placement policies compared in every cell.
POLICIES = ("margin", "blind")

#: Default fault-tolerance levels.
DEFAULT_K_VALUES: tuple[int, ...] = (1, 2)

#: Default fault intensities (number of injected core failures).
DEFAULT_INTENSITIES: tuple[int, ...] = (1, 2)

#: Default total utilizations (at reference speed 1.0) for the
#: workload draws.
DEFAULT_UTILIZATIONS: tuple[float, ...] = (0.6, 0.9, 1.2)


def draw_failures(
    n_failures: int, n_cores: int, seed: int
) -> tuple[CoreFailure, ...]:
    """Draw a concrete failure schedule from one child seed.

    Distinct victim cores; failure times uniform in the middle of the
    run; each failure is permanent or transient with equal probability
    (transients last 10-30% of the horizon).  The draw happens *here*,
    at unit-building time — the resulting concrete schedule rides in the
    payload, never re-drawn by the executor.
    """
    rng = np.random.default_rng(int(seed))
    cores = rng.permutation(n_cores)[: min(n_failures, n_cores)]
    failures = []
    for core in cores:
        kind = "permanent" if rng.random() < 0.5 else "transient"
        at = float(rng.uniform(0.2, 0.7))
        duration = float(rng.uniform(0.1, 0.3)) if kind == "transient" else 0.0
        failures.append(
            CoreFailure(
                core=int(core), at_fraction=at, kind=kind,
                duration_fraction=duration,
            )
        )
    return tuple(failures)


@dataclass(frozen=True)
class RealtimeRow:
    """Both policies at one (k, intensity, utilization) cell."""

    k: int
    intensity: int
    utilization: float
    n_sets: int
    margin_schedulable: float
    margin_safe: float
    blind_schedulable: float
    blind_safe: float

    @property
    def gap(self) -> float:
        """Margin-minus-blind schedulability rate."""
        return self.margin_schedulable - self.blind_schedulable


@dataclass(frozen=True)
class RealtimeResult:
    """Outcome of the realtime experiment."""

    rows: tuple[RealtimeRow, ...]
    platform: str
    t_max_c: float
    seed: int
    frame_s: float
    n_tasks: int
    report: RunReport | None = field(default=None, compare=False, repr=False)

    @property
    def mean_gap(self) -> float:
        """Mean schedulability gap over cells where the guarantee applies.

        Only rows with ``intensity <= k`` count: beyond ``k`` failures
        neither policy promises anything, so the gap there measures the
        guarantee's boundary, not the policies' merit.
        """
        gaps = [row.gap for row in self.rows if row.intensity <= row.k]
        return float(np.mean(gaps)) if gaps else 0.0

    def headline(self) -> dict[str, Any]:
        """The committed JSON claim (bitwise reproducible from ``seed``)."""
        return {
            "experiment": "realtime",
            "platform": self.platform,
            "t_max_c": self.t_max_c,
            "seed": self.seed,
            "frame_s": self.frame_s,
            "n_tasks": self.n_tasks,
            "mean_schedulability_gap": self.mean_gap,
            "rows": [
                {
                    "k": row.k,
                    "intensity": row.intensity,
                    "utilization": row.utilization,
                    "n_sets": row.n_sets,
                    "margin": {
                        "schedulable": row.margin_schedulable,
                        "safe": row.margin_safe,
                    },
                    "blind": {
                        "schedulable": row.blind_schedulable,
                        "safe": row.blind_safe,
                    },
                    "gap": row.gap,
                }
                for row in self.rows
            ],
        }

    def format(self) -> str:
        table = ascii_table(
            [
                "k", "failures", "utilization",
                "margin sched", "margin safe",
                "blind sched", "blind safe", "gap",
            ],
            [
                (
                    row.k, row.intensity, row.utilization,
                    row.margin_schedulable, row.margin_safe,
                    row.blind_schedulable, row.blind_safe, row.gap,
                )
                for row in self.rows
            ],
            title=(
                "k-fault-tolerant frame scheduling at matched "
                f"T_max={self.t_max_c:g} C — margin-aware vs "
                "thermally-blind backup placement"
            ),
        )
        # Plot the covered regime (intensity <= k) at the lowest k.
        k0 = min(row.k for row in self.rows)
        covered = [
            row for row in self.rows if row.k == k0 and row.intensity <= k0
        ]
        lines = [table]
        if covered:
            xs = [row.utilization for row in covered]
            lines += [
                "",
                ascii_plot(
                    xs,
                    {
                        "margin": [r.margin_schedulable for r in covered],
                        "blind": [r.blind_schedulable for r in covered],
                    },
                    title=(
                        f"schedulability vs utilization (k={k0}, "
                        f"{k0} injected failure{'s' if k0 != 1 else ''})"
                    ),
                    y_label="schedulable fraction",
                ),
            ]
        lines += [
            "",
            (
                "mean margin-minus-blind schedulability gap over covered "
                f"cells (intensity <= k): {self.mean_gap:+.3f}"
            ),
        ]
        return "\n".join(lines)


def realtime_units(
    platform_spec: PlatformSpec,
    k_values: tuple[int, ...],
    intensities: tuple[int, ...],
    utilizations: tuple[float, ...],
    n_sets: int,
    n_tasks: int,
    frame_s: float,
    seed: int,
    n_frames: int,
    steps_per_frame: int,
    max_task_utilization: float,
) -> list[WorkUnit]:
    """One ``realtime_cell`` unit per (k, intensity, util, set, policy).

    Workloads and failure schedules are drawn here from seeds spawned
    off the master seed, then embedded *concrete* in the payloads — the
    unit content, and hence the journal, pins every sampled value.
    """
    n_cores = platform_spec.build().n_cores
    platform_doc = platform_spec.as_dict()
    scenarios = [
        (k, intensity, util, idx)
        for k in k_values
        for intensity in intensities
        for util in utilizations
        for idx in range(n_sets)
    ]
    child_seeds = spawn_fault_seeds(int(seed), 2 * len(scenarios))
    units: list[WorkUnit] = []
    for i, (k, intensity, util, idx) in enumerate(scenarios):
        workload_seed, fault_seed = child_seeds[2 * i], child_seeds[2 * i + 1]
        workload = FrameWorkload.random(
            n_tasks, util, frame_s, rng=int(workload_seed),
            max_task_utilization=max_task_utilization,
        )
        faults = FaultSpec(
            core_failures=draw_failures(intensity, n_cores, int(fault_seed)),
            seed=int(fault_seed),
        )
        for policy in POLICIES:
            units.append(
                WorkUnit(
                    kind="realtime_cell",
                    payload={
                        "platform": platform_doc,
                        "policy": policy,
                        "k": int(k),
                        "workload": workload.as_dict(),
                        "faults": faults.as_dict(),
                        "n_frames": int(n_frames),
                        "steps_per_frame": int(steps_per_frame),
                    },
                    label=(
                        f"{policy}@k={k},f={intensity},u={util:g},s={idx}"
                    ),
                )
            )
    return units


def realtime_experiment(
    platform: str = "paper",
    n_cores: int = 3,
    n_levels: int = 4,
    t_max_c: float = 60.0,
    k_values: tuple[int, ...] = DEFAULT_K_VALUES,
    intensities: tuple[int, ...] = DEFAULT_INTENSITIES,
    utilizations: tuple[float, ...] = DEFAULT_UTILIZATIONS,
    n_sets: int = 4,
    n_tasks: int = 6,
    frame_s: float = 0.02,
    seed: int = 2016,
    n_frames: int = 8,
    steps_per_frame: int = 8,
    max_task_utilization: float = 0.5,
    runner: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable | None = None,
) -> RealtimeResult:
    """Sweep k, fault intensity and utilization over both policies.

    Parameters
    ----------
    platform:
        Platform preset name (``n_cores``/``n_levels``/``t_max_c``
        overrides are layered on when the family parameterizes them).
    k_values / intensities:
        Fault-tolerance levels and injected-failure counts; intensities
        above ``k`` probe beyond the guarantee.
    utilizations:
        Total workload demand (fraction of one frame at speed 1.0) per
        draw.
    n_sets:
        Independent workload draws per cell; schedulability rates
        average over them.
    seed:
        Master seed; workload and fault seeds spawn from it, making the
        whole result a pure function of this integer.
    """
    spec = PlatformSpec.named(str(platform))
    from repro.platforms import get_family

    family_params = get_family(spec.family).params
    overrides = {
        "n_cores": int(n_cores),
        "n_levels": int(n_levels),
        "t_max_c": float(t_max_c),
    }
    spec = spec.with_overrides(
        **{key: v for key, v in overrides.items() if key in family_params}
    )
    k_values = tuple(int(k) for k in k_values)
    intensities = tuple(int(i) for i in intensities)
    utilizations = tuple(float(u) for u in utilizations)
    units = realtime_units(
        spec, k_values, intensities, utilizations,
        int(n_sets), int(n_tasks), float(frame_s), int(seed),
        int(n_frames), int(steps_per_frame), float(max_task_utilization),
    )
    report = run_units(
        units,
        config=runner or RunnerConfig(),
        run_dir=run_dir,
        resume=resume,
        progress=progress,
        manifest_extra={
            "experiment": "realtime",
            "seed": int(seed),
            "platform": spec.as_dict(),
            "k_values": list(k_values),
            "intensities": list(intensities),
            "utilizations": list(utilizations),
            "n_sets": int(n_sets),
        },
    )

    by_id = report.records
    rows = []
    # Aggregate by the *requested* cell, parsed back from the unit
    # labels ("<policy>@k=..,f=..,u=..,s=..") — the drawn utilization
    # varies per set, the requested grid value is the row key.
    agg: dict[tuple[int, int, float], dict[str, list]] = {}
    for unit in units:
        row = by_id.get(unit.unit_id)
        if row is None or row.get("status") not in ("ok", "infeasible"):
            raise RuntimeError(
                f"realtime unit {unit.label!r} did not complete: "
                f"{None if row is None else row.get('status')}"
            )
        policy, rest = unit.label.split("@", 1)
        fields = dict(part.split("=") for part in rest.split(","))
        key = (int(fields["k"]), int(fields["f"]), float(fields["u"]))
        if row.get("status") == "infeasible" or row.get("result") is None:
            flags = (False, False)
        else:
            result = row["result"]
            flags = (
                bool(result.get("schedulable")),
                bool(result.get("recovery", {}).get("safe")),
            )
        agg.setdefault(key, {}).setdefault(policy, []).append(flags)

    for (k, intensity, util) in sorted(agg):
        bucket = agg[(k, intensity, util)]
        margin = bucket.get("margin", [])
        blind = bucket.get("blind", [])
        rows.append(
            RealtimeRow(
                k=k,
                intensity=intensity,
                utilization=util,
                n_sets=len(margin),
                margin_schedulable=_rate(margin, 0),
                margin_safe=_rate(margin, 1),
                blind_schedulable=_rate(blind, 0),
                blind_safe=_rate(blind, 1),
            )
        )
    return RealtimeResult(
        rows=tuple(rows),
        platform=spec.family,
        t_max_c=float(t_max_c),
        seed=int(seed),
        frame_s=float(frame_s),
        n_tasks=int(n_tasks),
        report=report,
    )


def _rate(flags: list, idx: int) -> float:
    """Fraction of True at tuple position ``idx`` (0.0 when empty)."""
    if not flags:
        return 0.0
    return float(sum(1 for f in flags if f[idx]) / len(flags))
