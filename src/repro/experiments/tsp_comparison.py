"""Extension experiment: TSP power budgeting vs direct thermal scheduling.

The paper's introduction cites Pagani et al. [9] to argue that even
temperature-aware *power* budgets (TSP) leave throughput on the table
compared to scheduling the temperature constraint directly.  This
experiment quantifies the claim on the calibrated substrate: for each
chip, compare

* the best TSP-governed operating point (budget per active-core count,
  fastest discrete mode within budget),
* EXS (direct thermal check, one mode per core),
* AO (direct thermal scheduling with oscillation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import ao, exs
from repro.analysis.tsp import tsp_throughput
from repro.experiments.reporting import ascii_table
from repro.platform import paper_platform

__all__ = ["TSPComparisonResult", "tsp_comparison"]


@dataclass(frozen=True)
class TSPComparisonResult:
    """Throughput of TSP / EXS / AO across chips."""

    rows: tuple[tuple[int, float, float, float], ...]  # (cores, tsp, exs, ao)

    def format(self) -> str:
        table_rows = []
        for cores, tsp, exs_thr, ao_thr in self.rows:
            table_rows.append(
                (
                    cores,
                    tsp,
                    exs_thr,
                    ao_thr,
                    (ao_thr - tsp) / tsp if tsp > 0 else float("nan"),
                )
            )
        return ascii_table(
            ["cores", "TSP budget", "EXS", "AO", "AO/TSP-1"],
            table_rows,
            title=(
                "TSP power budgeting vs direct thermal scheduling "
                "(2-level ladder)"
            ),
        )

    @property
    def ao_always_wins(self) -> bool:
        """Does direct scheduling dominate the power budget everywhere?"""
        return all(ao_thr >= tsp - 1e-9 for _, tsp, _, ao_thr in self.rows)


def tsp_comparison(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    n_levels: int = 2,
    t_max_c: float = 55.0,
    m_cap: int = 64,
) -> TSPComparisonResult:
    """Run the TSP-vs-AO comparison over the evaluation chips."""
    rows = []
    for n in core_counts:
        platform = paper_platform(n, n_levels=n_levels, t_max_c=t_max_c)
        tsp = tsp_throughput(platform)
        exs_thr = exs(platform).throughput
        ao_thr = ao(platform, m_cap=m_cap).throughput
        rows.append((n, float(tsp), float(exs_thr), float(ao_thr)))
    return TSPComparisonResult(rows=tuple(rows))
