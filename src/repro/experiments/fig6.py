"""Fig. 6 — throughput of LNS/EXS/AO/PCO vs core count and ladder size.

T_max = 55 C; cores in {2, 3, 6, 9}; Table IV ladders with 2-5 levels.
Expected shape (paper): AO and PCO always on top and nearly equal; the
fewer the levels, the larger their margin over EXS/LNS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.comparison import APPROACHES, ComparisonGrid, build_grid
from repro.experiments.reporting import ascii_table

__all__ = ["Fig6Result", "fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """The Fig. 6 grid."""

    grid: ComparisonGrid
    core_counts: tuple[int, ...]
    level_counts: tuple[int, ...]
    t_max_c: float

    def format(self) -> str:
        rows = []
        for cell in self.grid.cells:
            rows.append(
                (
                    cell.n_cores,
                    cell.n_levels,
                    cell.throughput("LNS"),
                    cell.throughput("EXS"),
                    cell.throughput("AO"),
                    cell.throughput("PCO"),
                    cell.improvement("AO", "EXS"),
                )
            )
        table = ascii_table(
            ["cores", "levels", "LNS", "EXS", "AO", "PCO", "AO/EXS-1"],
            rows,
            title=f"Fig. 6 — throughput comparison at T_max = {self.t_max_c:.0f} C",
        )
        imps = self.grid.improvements("AO", "EXS")
        if imps.size:
            table += (
                f"\nAO over EXS: mean {imps.mean():+.1%}, max {imps.max():+.1%}"
            )
        return table


def fig6(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    level_counts: tuple[int, ...] = (2, 3, 4, 5),
    t_max_c: float = 55.0,
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    runner=None,
    run_dir=None,
    resume: bool = False,
    progress=None,
) -> Fig6Result:
    """Run the Fig. 6 sweep (pass smaller grids for quick checks).

    ``runner`` / ``run_dir`` / ``resume`` / ``progress`` forward to the
    sharded runner behind :func:`~repro.experiments.comparison.build_grid`.
    """
    grid = build_grid(
        core_counts=core_counts,
        level_counts=level_counts,
        t_max_values=(t_max_c,),
        approaches=approaches,
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        shift_grid=shift_grid,
        runner=runner,
        run_dir=run_dir,
        resume=resume,
        progress=progress,
    )
    return Fig6Result(
        grid=grid,
        core_counts=tuple(core_counts),
        level_counts=tuple(level_counts),
        t_max_c=t_max_c,
    )
