"""Fig. 5 — the 9-core m-oscillating peak decreases monotonically in m.

A random step-up schedule on the 3x3 chip (period ~9.836 s, up to 5
intervals per core) is m-oscillated for m = 1..m_max; Theorem 5 predicts a
monotonically non-increasing stable peak, which the sweep confirms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table
from repro.platform import Platform, paper_platform
from repro.schedule.builders import random_stepup_schedule
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.transforms import m_oscillate
from repro.thermal.peak import stepup_peak_temperature

__all__ = ["Fig5Result", "fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Peak temperature per oscillation count."""

    schedule: PeriodicSchedule
    m_values: np.ndarray
    peaks_theta: np.ndarray
    t_ambient_c: float

    @property
    def monotone(self) -> bool:
        """Is the peak non-increasing in m (Theorem 5)?"""
        return bool(np.all(np.diff(self.peaks_theta) <= 1e-6))

    def format(self) -> str:
        rows = [
            (int(m), float(p + self.t_ambient_c))
            for m, p in zip(self.m_values, self.peaks_theta)
        ]
        table = ascii_table(
            ["m", "stable peak (C)"],
            rows,
            title="Fig. 5 — 9-core m-oscillating schedule peak vs m",
        )
        return table + f"\nmonotone non-increasing (Theorem 5): {self.monotone}"

    def to_csv(self) -> str:
        """CSV of the (m, peak) series."""
        from repro.experiments.reporting import to_csv

        rows = [
            (int(m), float(p + self.t_ambient_c))
            for m, p in zip(self.m_values, self.peaks_theta)
        ]
        return to_csv(["m", "peak_c"], rows)


def fig5(
    platform: Platform | None = None,
    period: float = 9.836,
    m_max: int = 10,
    seed: int = 2016,
) -> Fig5Result:
    """Sweep m on a random 9-core step-up schedule."""
    if platform is None:
        platform = paper_platform(9, t_max_c=80.0, topology="stacked", tau=0.0)
    model = platform.model
    rng = np.random.default_rng(seed)
    sched = random_stepup_schedule(
        9, rng, levels=(0.6, 0.8, 1.0, 1.2, 1.3), max_segments=5, period=period
    )
    m_values = np.arange(1, m_max + 1)
    peaks = np.array(
        [
            stepup_peak_temperature(model, m_oscillate(sched, int(m)), check=False).value
            for m in m_values
        ]
    )
    return Fig5Result(
        schedule=sched,
        m_values=m_values,
        peaks_theta=peaks,
        t_ambient_c=model.t_ambient_c,
    )
