"""Fig. 3 — the step-up corner bounds the peak over all phase placements.

Three cores, 6 s period, every core 3 s at 0.6 V and 3 s at 1.3 V.
Core 1's high phase starts at ``x1 = 3 s`` (i.e. low-then-high: the
step-up arrangement); cores 2 and 3's high-start offsets ``x2, x3`` are
swept over the period.  The paper finds the maximum peak at
``x2 = x3 = 3 s`` — exactly the all-aligned step-up corner — confirming
Theorem 2's bound, with ~84.1 C max and ~71.2 C min.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform import Platform, paper_platform
from repro.schedule.builders import phase_schedule
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

__all__ = ["Fig3Result", "fig3"]


@dataclass(frozen=True)
class Fig3Result:
    """The swept peak-temperature surface."""

    x_values: np.ndarray       # shared sweep grid for x2 and x3 (s)
    peaks_theta: np.ndarray    # (len(x), len(x)) peak for each (x2, x3)
    stepup_peak_theta: float   # the all-aligned step-up corner
    t_ambient_c: float

    @property
    def max_peak_theta(self) -> float:
        """Hottest point of the surface."""
        return float(self.peaks_theta.max())

    @property
    def min_peak_theta(self) -> float:
        """Coolest point of the surface."""
        return float(self.peaks_theta.min())

    @property
    def argmax(self) -> tuple[float, float]:
        """(x2, x3) of the hottest point."""
        i, j = np.unravel_index(int(np.argmax(self.peaks_theta)), self.peaks_theta.shape)
        return float(self.x_values[i]), float(self.x_values[j])

    @property
    def bound_holds(self) -> bool:
        """Does the step-up corner bound the whole surface (Theorem 2)?"""
        return bool(self.max_peak_theta <= self.stepup_peak_theta + 1e-6)

    def format(self) -> str:
        amb = self.t_ambient_c
        x2, x3 = self.argmax
        return "\n".join(
            [
                "Fig. 3 — peak temperature vs high-phase start times (3 cores, 6 s period)",
                f"surface max = {self.max_peak_theta + amb:.2f} C at x2={x2:.1f}s, "
                f"x3={x3:.1f}s  (paper: 84.13 C at x2=x3=3s)",
                f"surface min = {self.min_peak_theta + amb:.2f} C  (paper: 71.22 C)",
                f"step-up corner = {self.stepup_peak_theta + amb:.2f} C; "
                f"bounds the surface: {self.bound_holds}",
            ]
        )

    def to_csv(self) -> str:
        """Long-format CSV of the surface: one row per (x2, x3) placement."""
        from repro.experiments.reporting import to_csv

        rows = []
        for i, x2 in enumerate(self.x_values):
            for j, x3 in enumerate(self.x_values):
                rows.append(
                    (float(x2), float(x3),
                     float(self.peaks_theta[i, j] + self.t_ambient_c))
                )
        return to_csv(["x2_s", "x3_s", "peak_c"], rows)


def fig3(
    platform: Platform | None = None,
    period: float = 6.0,
    step: float = 0.3,
    grid_per_interval: int = 48,
) -> Fig3Result:
    """Sweep (x2, x3) and record the stable peak of each placement.

    ``step`` controls the sweep granularity (paper: 0.1 s; default coarser
    for speed — pass 0.1 for the full-resolution surface).
    """
    if platform is None:
        platform = paper_platform(3, t_max_c=65.0, tau=0.0)
    model = platform.model
    half = period / 2.0

    x_values = np.arange(0.0, period - 1e-9, step)
    peaks = np.empty((x_values.size, x_values.size))
    for i, x2 in enumerate(x_values):
        for j, x3 in enumerate(x_values):
            sched = phase_schedule(
                0.6,
                1.3,
                high_length=half,
                high_start=[half, x2, x3],
                period=period,
            )
            peaks[i, j] = peak_temperature(
                model, sched, grid_per_interval=grid_per_interval
            ).value

    stepup = phase_schedule(
        0.6, 1.3, high_length=half, high_start=[half, half, half], period=period
    )
    stepup_peak = stepup_peak_temperature(model, stepup).value
    return Fig3Result(
        x_values=x_values,
        peaks_theta=peaks,
        stepup_peak_theta=stepup_peak,
        t_ambient_c=model.t_ambient_c,
    )
