"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
