"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    get_experiment,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "ExperimentSpec", "get_experiment", "run_experiment"]
