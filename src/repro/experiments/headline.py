"""The abstract's headline claim: AO's improvement over EXS.

"...improve the throughput up to 89%, with an average improvement of 11%"
— aggregated over the evaluation grid.  We aggregate AO-vs-EXS relative
improvements over the union of the Fig. 6 and Fig. 7 grids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.comparison import ComparisonGrid, build_grid

__all__ = ["HeadlineResult", "headline"]


@dataclass(frozen=True)
class HeadlineResult:
    """Aggregate improvement statistics."""

    improvements: np.ndarray  # per-cell AO/EXS - 1
    mean_improvement: float
    max_improvement: float
    grids: tuple[ComparisonGrid, ...] = ()
    skipped_cells: int = 0

    def format(self) -> str:
        lines = [
            "Headline — AO throughput improvement over EXS",
            f"cells aggregated: {self.improvements.size}",
            f"mean improvement: {self.mean_improvement:+.1%} (paper: +11% average)",
            f"max  improvement: {self.max_improvement:+.1%} (paper: up to +89%)",
        ]
        if self.skipped_cells:
            lines.append(
                f"cells skipped (missing/infeasible results): {self.skipped_cells}"
            )
        return "\n".join(lines)


def headline(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    level_counts: tuple[int, ...] = (2, 3, 4, 5),
    t_max_values: tuple[float, ...] = (50.0, 55.0, 60.0, 65.0),
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    runner=None,
    run_dir=None,
    resume: bool = False,
    progress=None,
) -> HeadlineResult:
    """Aggregate AO-vs-EXS improvements over the evaluation grid.

    The Fig. 6 grid (levels swept at 55 C) and Fig. 7 grid (T_max swept at
    2 levels) are merged; AO and EXS run on every cell.  With ``run_dir``
    each constituent grid journals into its own subdirectory
    (``fig6-grid/``, ``fig7-grid/``) so the whole aggregate resumes.
    """
    from pathlib import Path

    cells: list = []

    def _sub(name: str):
        return None if run_dir is None else Path(run_dir) / name

    fig6_grid = build_grid(
        core_counts=core_counts,
        level_counts=level_counts,
        t_max_values=(55.0,),
        approaches=("EXS", "AO"),
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        runner=runner,
        run_dir=_sub("fig6-grid"),
        resume=resume,
        progress=progress,
    )
    cells.extend(fig6_grid.cells)
    fig7_grid = build_grid(
        core_counts=core_counts,
        level_counts=(2,),
        t_max_values=t_max_values,
        approaches=("EXS", "AO"),
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        runner=runner,
        run_dir=_sub("fig7-grid"),
        resume=resume,
        progress=progress,
    )
    cells.extend(fig7_grid.cells)

    grid = ComparisonGrid(cells=tuple(cells))
    imps = grid.improvements("AO", "EXS")
    return HeadlineResult(
        improvements=imps,
        mean_improvement=float(imps.mean()) if imps.size else float("nan"),
        max_improvement=float(imps.max()) if imps.size else float("nan"),
        grids=(fig6_grid, fig7_grid),
        skipped_cells=grid.skipped_ratio_cells("AO", "EXS"),
    )
