"""Fig. 2 — oscillating a single core does not necessarily lower the peak.

Two cores, 100 ms period: core 1 runs 1.3 V then 0.6 V, core 2 the
opposite (50/50).  Doubling only core 1's oscillation frequency *raised*
the stable peak in the paper (53.3 -> 54.6 C); we reproduce the comparison
and also show chip-wide oscillation (Theorem 5) lowering it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table
from repro.platform import Platform, paper_platform
from repro.schedule.builders import phase_schedule
from repro.schedule.transforms import m_oscillate, m_oscillate_core
from repro.thermal.peak import peak_temperature

__all__ = ["Fig2Result", "fig2"]


@dataclass(frozen=True)
class Fig2Result:
    """Peaks of the three schedules compared in/around Fig. 2."""

    base_peak_theta: float
    single_core_peak_theta: float
    chipwide_peak_theta: float
    t_ambient_c: float

    @property
    def single_core_helped(self) -> bool:
        """Did oscillating only core 1 lower the peak?  (Paper: no.)"""
        return self.single_core_peak_theta < self.base_peak_theta - 1e-9

    def format(self) -> str:
        amb = self.t_ambient_c
        rows = [
            ("base 50/50 alternating", self.base_peak_theta + amb, "53.3 (paper)"),
            ("core 1 oscillated x2", self.single_core_peak_theta + amb, "54.6 (paper)"),
            ("all cores oscillated x2", self.chipwide_peak_theta + amb, "-"),
        ]
        table = ascii_table(
            ["schedule", "stable peak (C)", "reference"],
            rows,
            title="Fig. 2 — single-core vs chip-wide frequency oscillation (2 cores)",
        )
        verdict = (
            "\nsingle-core oscillation lowered the peak: "
            f"{self.single_core_helped} (paper observes it can raise it); "
            "chip-wide oscillation lowered it: "
            f"{self.chipwide_peak_theta < self.base_peak_theta - 1e-9}"
        )
        return table + verdict


def fig2(
    platform: Platform | None = None,
    period: float = 0.100,
    m: int = 2,
) -> Fig2Result:
    """Reproduce the Fig. 2 comparison."""
    if platform is None:
        platform = paper_platform(2, t_max_c=65.0, tau=0.0)
    half = period / 2.0
    base = phase_schedule(
        0.6, 1.3, high_length=half, high_start=[0.0, half], period=period
    )
    single = m_oscillate_core(base, core=0, m=m)
    chipwide = m_oscillate(base, m=m)

    model = platform.model
    return Fig2Result(
        base_peak_theta=peak_temperature(model, base).value,
        single_core_peak_theta=peak_temperature(model, single).value,
        chipwide_peak_theta=peak_temperature(model, chipwide).value,
        t_ambient_c=model.t_ambient_c,
    )
