"""Section III motivation artifacts: Tables II and III.

* Table II: the two-mode time ratios (eq. 11) that let modes {0.6, 1.3} V
  reproduce the ideal continuous throughput on the 3-core chip.
* Table III: the high-speed ratios after shrinking them to honor
  ``T_max = 65 C``, for periods 20/10/5 ms — shorter periods (more
  oscillation) retain more of the high mode and hence more throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import build_oscillating_schedule, plan_modes
from repro.algorithms.tpt import enforce_threshold
from repro.experiments.reporting import ascii_table
from repro.platform import Platform, paper_platform
from repro.thermal.peak import stepup_peak_temperature

__all__ = ["Table2Result", "Table3Result", "table2", "table3"]

#: Paper values for side-by-side reporting.
PAPER_TABLE2_HIGH = (0.8693, 0.8211, 0.8693)
PAPER_TABLE3 = {
    0.020: ((0.1733, 0.8211, 0.1733), 0.8725),
    0.010: ((0.2303, 0.8211, 0.2303), 0.8991),
    0.005: ((0.2713, 0.8211, 0.2713), 0.9182),
}


def _motivation_platform() -> Platform:
    # The motivation example ignores transition overhead (tau handled later
    # in section V), hence tau=0 here.
    return paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)


@dataclass(frozen=True)
class Table2Result:
    """Reproduction of Table II."""

    ideal_voltages: np.ndarray
    high_ratios: np.ndarray
    low_ratios: np.ndarray
    ideal_throughput: float
    unthrottled_peak_theta: float  # peak when running these ratios at 20 ms

    def format(self) -> str:
        rows = []
        for i in range(3):
            rows.append(
                (
                    f"core_{i + 1}",
                    float(self.high_ratios[i]),
                    float(self.low_ratios[i]),
                    PAPER_TABLE2_HIGH[i],
                )
            )
        table = ascii_table(
            ["core", "ratio(vH)", "ratio(vL)", "paper ratio(vH)"],
            rows,
            title="Table II — execution time ratios matching the ideal throughput",
        )
        extra = (
            f"\nideal throughput = {self.ideal_throughput:.4f} (paper: 1.1972)"
            f"\npeak if run periodically at 20 ms = "
            f"{self.unthrottled_peak_theta + 35.0:.2f} C (paper: 79.69 C)"
        )
        return table + extra


def table2(platform: Platform | None = None) -> Table2Result:
    """Reproduce Table II on the motivation platform."""
    if platform is None:
        platform = _motivation_platform()
    cont = continuous_assignment(platform)
    plan = plan_modes(platform, cont.voltages)
    sched = build_oscillating_schedule(plan, plan.high_ratio, 0.020, 1)
    peak = stepup_peak_temperature(platform.model, sched, check=False)
    return Table2Result(
        ideal_voltages=cont.voltages,
        high_ratios=plan.high_ratio,
        low_ratios=1.0 - plan.high_ratio,
        ideal_throughput=cont.throughput,
        unthrottled_peak_theta=peak.value,
    )


@dataclass(frozen=True)
class Table3Result:
    """Reproduction of Table III."""

    periods: tuple[float, ...]
    high_ratios: np.ndarray  # (len(periods), 3)
    throughputs: np.ndarray  # (len(periods),)
    peaks_theta: np.ndarray  # (len(periods),)

    def format(self) -> str:
        rows = []
        for k, tp in enumerate(self.periods):
            paper = PAPER_TABLE3.get(round(tp, 6))
            paper_thr = paper[1] if paper else float("nan")
            rows.append(
                (
                    f"{tp * 1e3:.0f} ms",
                    float(self.high_ratios[k, 0]),
                    float(self.high_ratios[k, 1]),
                    float(self.high_ratios[k, 2]),
                    float(self.throughputs[k]),
                    paper_thr,
                )
            )
        return ascii_table(
            ["t_p", "rH core1", "rH core2", "rH core3", "THR", "paper THR"],
            rows,
            title=(
                "Table III — high-speed ratios meeting T_max = 65 C "
                "(shorter periods keep more throughput)"
            ),
        )


def table3(
    platform: Platform | None = None,
    periods: tuple[float, ...] = (0.020, 0.010, 0.005),
    t_unit: float | None = None,
) -> Table3Result:
    """Reproduce Table III: throttle the Table II ratios to meet ``T_max``.

    For each period we run the TPT reduction loop (m=1: the period length
    itself plays the role of the oscillation granularity here).
    """
    if platform is None:
        platform = _motivation_platform()
    cont = continuous_assignment(platform)
    plan = plan_modes(platform, cont.voltages)

    ratios_out = np.empty((len(periods), 3))
    thr_out = np.empty(len(periods))
    peaks_out = np.empty(len(periods))
    for k, tp in enumerate(periods):
        ratios, sched, peak, _iters = enforce_threshold(
            platform, plan, plan.high_ratio, tp, 1, t_unit=t_unit
        )
        ratios_out[k] = ratios
        peaks_out[k] = peak.value
        volts = sched.voltage_matrix
        lengths = sched.lengths
        thr_out[k] = float(
            (volts * lengths[:, None]).sum() / (sched.n_cores * sched.period)
        )
    return Table3Result(
        periods=tuple(periods),
        high_ratios=ratios_out,
        throughputs=thr_out,
        peaks_theta=peaks_out,
    )
