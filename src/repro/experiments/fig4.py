"""Fig. 4 — step-up schedule temperature traces on a 6-core chip.

A random step-up schedule (1 s period, up to 3 intervals per core) is
simulated from ambient: (a) the multi-period warm-up trace rises
monotonically toward the stable status; (b) within the stable-status
period every core's maximum sits at the period end (Theorem 1).

We run this on the *stacked* three-layer topology: its slow sink mass
reproduces the multi-period warm-up visible in the paper's HotSpot traces
(the calibrated single-layer chip settles almost within one period).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform import Platform, paper_platform
from repro.schedule.builders import random_stepup_schedule
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.periodic import periodic_steady_state, stable_trace
from repro.thermal.transient import TraceResult, simulate_piecewise

__all__ = ["Fig4Result", "fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """Warm-up and stable-status traces of a 6-core step-up schedule."""

    schedule: PeriodicSchedule
    warmup: TraceResult          # (a): from ambient, several periods
    stable: TraceResult          # (b): one period in the stable status
    end_violation_k: float       # max per-core excess over the period-end value
    monotone_rise: bool          # warm-up envelope non-decreasing?
    t_ambient_c: float

    @property
    def peak_at_end(self) -> bool:
        """Theorem 1 observed (up to the hidden-state wrap lag)?

        On the single-layer topology the violation is at numerical noise
        (~1e-14 K); the stacked topology's spreader/sink nodes lag the
        cores across the period wrap and can overshoot the period-end
        value by up to ~0.15 K — a model-class sensitivity worth knowing
        about (the paper's own [23]/[27]-style substrate is single-node).
        """
        return self.end_violation_k <= 0.25

    def format(self) -> str:
        core_max = self.stable.temperatures.max()
        return "\n".join(
            [
                "Fig. 4 — 6-core step-up schedule traces",
                f"schedule: {self.schedule!r}",
                f"stable-status peak = {core_max + self.t_ambient_c:.2f} C",
                f"peak occurs at the period end (Theorem 1): {self.peak_at_end} "
                f"(max overshoot past period end: {self.end_violation_k:.2e} K)",
                f"per-period warm-up envelope monotone: {self.monotone_rise}",
            ]
        )


def fig4(
    platform: Platform | None = None,
    period: float = 1.0,
    seed: int = 2016,
    warmup_periods: int = 12,
    samples_per_interval: int = 24,
) -> Fig4Result:
    """Generate and trace the Fig. 4 experiment."""
    if platform is None:
        platform = paper_platform(6, t_max_c=80.0, topology="stacked", tau=0.0)
    model = platform.model
    rng = np.random.default_rng(seed)
    sched = random_stepup_schedule(
        6, rng, levels=(0.6, 0.9, 1.3), max_segments=3, period=period
    )

    warmup = simulate_piecewise(
        model, sched, periods=warmup_periods, samples_per_interval=samples_per_interval
    )
    stable = stable_trace(model, sched, samples_per_interval=samples_per_interval)

    cores = model.network.core_nodes
    stable_core = stable.temperatures[:, cores]
    # Theorem 1: quantify how far any core's within-period maximum exceeds
    # its period-end value (exactly zero on single-node-per-core models).
    end_violation = float((stable_core.max(axis=0) - stable_core[-1, :]).max())

    # Warm-up envelope: the temperature at each period boundary must rise
    # monotonically toward the stable status.
    solution = periodic_steady_state(model, sched)
    theta = np.zeros(model.n_nodes)
    boundary_maxima = []
    for _ in range(warmup_periods):
        from repro.thermal.transient import simulate_schedule_period

        theta = simulate_schedule_period(model, sched, theta)
        boundary_maxima.append(theta[cores].max())
    diffs = np.diff(boundary_maxima)
    monotone = bool(np.all(diffs >= -1e-9))

    return Fig4Result(
        schedule=sched,
        warmup=warmup,
        stable=stable,
        end_violation_k=end_violation,
        monotone_rise=monotone,
        t_ambient_c=model.t_ambient_c,
    )
