"""Shared machinery for the algorithm-comparison experiments (Figs. 6-7, Table V).

Runs LNS / EXS / AO / PCO on a platform grid and collects throughput,
feasibility and wall-clock time per cell.  The grid decomposes into one
work unit per ``(cell, algo)`` pair and executes through the
fault-tolerant sharded runner (:mod:`repro.runner`): sequentially by
default, fanned out over worker processes with per-unit timeout and
retry when ``parallel=True`` (or a custom
:class:`~repro.runner.RunnerConfig` is given).  With a ``run_dir``,
finished units are journaled to disk as they settle and
``resume=True`` continues an interrupted sweep, re-running only the
missing units; either way each worker rebuilds its platform from the
cell spec, so nothing heavier than a JSON row travels across process
boundaries.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import get_solver
from repro.engine import ThermalEngine
from repro.errors import InfeasibleError
from repro.obs import METRICS, span
from repro.platform import Platform
from repro.runner import RunnerConfig, RunReport, comparison_units, run as run_units
from repro.runner.units import WorkUnit
from repro.schedule.serialization import result_from_dict

__all__ = [
    "CellResult",
    "run_cell",
    "ComparisonGrid",
    "build_grid",
    "grid_batch_executor",
    "ComparisonResult",
    "comparison",
]

APPROACHES = ("LNS", "EXS", "AO", "PCO")

#: Solvers whose dominant phase (the m scan) grid-dispatch can precompute.
GRID_DISPATCH_SOLVERS = frozenset({"AO", "PCO"})


@dataclass(frozen=True)
class CellResult:
    """All four approaches on one (cores, levels, T_max) configuration."""

    n_cores: int
    n_levels: int
    t_max_c: float
    results: dict[str, SchedulerResult]

    def throughput(self, name: str) -> float:
        """Throughput of one approach (NaN if it was infeasible)."""
        r = self.results.get(name)
        return r.throughput if r is not None else float("nan")

    def runtime(self, name: str) -> float:
        """Wall-clock seconds of one approach."""
        r = self.results.get(name)
        return r.runtime_s if r is not None else float("nan")

    def improvement(self, name: str, over: str = "EXS") -> float:
        """Relative throughput improvement of ``name`` over ``over``."""
        a, b = self.throughput(name), self.throughput(over)
        if not np.isfinite(a) or not np.isfinite(b) or b == 0:
            return float("nan")
        return (a - b) / b


def run_cell(
    platform: Platform | ThermalEngine,
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
) -> CellResult:
    """Run the selected approaches on one platform configuration.

    Approaches are dispatched through the solver registry
    (:mod:`repro.algorithms.registry`); the common parameter pool below is
    filtered per solver through its declared ``params``, and one shared
    :class:`~repro.engine.ThermalEngine` serves the whole cell, so the
    approaches share the model's caches while each result carries its own
    counters.  An approach that raises
    :class:`~repro.errors.InfeasibleError` (no feasible assignment at this
    threshold) is recorded as absent.
    """
    engine = ThermalEngine.ensure(platform)
    common = {
        "period": period,
        "m_cap": m_cap,
        "m_step": m_step,
        "shift_grid": shift_grid,
    }
    results: dict[str, SchedulerResult] = {}
    for name in approaches:
        try:
            spec = get_solver(name)
        except KeyError as exc:
            raise ValueError(f"unknown approach {name!r}") from exc
        kwargs = {k: v for k, v in common.items() if k in spec.params}
        try:
            results[name] = spec.solve(engine, **kwargs)
        except InfeasibleError:
            pass
    return CellResult(
        n_cores=engine.n_cores,
        n_levels=len(engine.ladder),
        t_max_c=engine.platform.t_max_c,
        results=results,
    )


@dataclass(frozen=True)
class ComparisonGrid:
    """A collection of cells plus helpers over them.

    ``report`` carries the sharded runner's
    :class:`~repro.runner.RunReport` (per-unit journal rows, failure
    counts, aggregated engine stats) when the grid was built through
    :func:`build_grid`; it does not participate in equality.
    """

    cells: tuple[CellResult, ...]
    report: RunReport | None = field(default=None, compare=False, repr=False)

    def find(self, n_cores: int, n_levels: int | None = None,
             t_max_c: float | None = None) -> CellResult:
        """Locate one cell by its coordinates."""
        for c in self.cells:
            if c.n_cores != n_cores:
                continue
            if n_levels is not None and c.n_levels != n_levels:
                continue
            if t_max_c is not None and abs(c.t_max_c - t_max_c) > 1e-9:
                continue
            return c
        raise KeyError(
            f"no cell for cores={n_cores}, levels={n_levels}, t_max={t_max_c}"
        )

    def improvements(self, name: str = "AO", over: str = "EXS") -> np.ndarray:
        """Per-cell relative improvements of ``name`` over ``over``.

        Cells where either approach is missing or infeasible yield a
        non-finite ratio and are excluded — but not silently: every
        skipped cell increments the ``comparison.ratio_cells_skipped``
        obs counter (surfaced by ``repro stats`` and the headline
        report), so a sweep that quietly lost half its grid is visible.
        """
        vals = [c.improvement(name, over) for c in self.cells]
        finite = [v for v in vals if np.isfinite(v)]
        skipped = len(vals) - len(finite)
        if skipped:
            METRICS.counter("comparison.ratio_cells_skipped").inc(skipped)
        return np.asarray(finite)

    def skipped_ratio_cells(self, name: str = "AO", over: str = "EXS") -> int:
        """How many cells :meth:`improvements` would drop as non-finite."""
        return sum(
            1 for c in self.cells if not np.isfinite(c.improvement(name, over))
        )

    def to_csv(self) -> str:
        """CSV dump of the grid (one row per cell, throughput + runtime)."""
        from repro.experiments.reporting import to_csv

        headers = ["cores", "levels", "t_max_c"]
        for name in APPROACHES:
            headers += [f"thr_{name.lower()}", f"time_{name.lower()}_s"]
        rows = []
        for c in self.cells:
            row: list = [c.n_cores, c.n_levels, c.t_max_c]
            for name in APPROACHES:
                row += [c.throughput(name), c.runtime(name)]
            rows.append(row)
        return to_csv(headers, rows)


def _assemble_cells(
    core_counts,
    level_counts,
    t_max_values,
    approaches: tuple[str, ...],
    tau: float,
    common: Mapping[str, Any],
    records: Mapping[str, Mapping[str, Any]],
) -> tuple[CellResult, ...]:
    """Regroup per-unit journal rows into per-cell results, in grid order.

    A unit whose row is missing, infeasible, or an error row simply
    leaves its approach absent from the cell (the same contract
    :func:`run_cell` uses for infeasible approaches), so a partially
    failed sweep still yields a complete grid.
    """
    cells: list[CellResult] = []
    for n in core_counts:
        for lv in level_counts:
            for tm in t_max_values:
                units = comparison_units(
                    (n,), (lv,), (tm,), approaches, common, tau=tau
                )
                results: dict[str, SchedulerResult] = {}
                for unit in units:
                    row = records.get(unit.unit_id)
                    if row is None or row.get("status") != "ok":
                        continue
                    result = result_from_dict(row["result"])
                    results[result.name] = result
                cells.append(
                    CellResult(
                        n_cores=int(n),
                        n_levels=int(lv),
                        t_max_c=float(tm),
                        results=results,
                    )
                )
    return tuple(cells)


def grid_batch_executor(
    units: Sequence[WorkUnit],
) -> dict[str, tuple[dict[str, Any], float]]:
    """Grid-batched execution of AO/PCO comparison units (sequential mode).

    Groups the grid-dispatchable units by their shared
    ``(period, m_cap, m_step)``, evaluates every unit's ``choose_m`` scan
    in one :func:`repro.algorithms.oscillation.choose_m_grid` call — a
    single cross-platform tensor evaluation instead of one batched call
    per unit — and plants the results as engine hints before running each
    unit through the normal :func:`~repro.runner.units.solve_cell_outcome`
    path (registry dispatch, certificates and fallback chains unchanged).

    Any per-unit failure simply omits that unit from the returned map, so
    the runner re-executes it through the ordinary per-unit path with
    full retry semantics.  Returns ``{unit_id: (outcome, elapsed_s)}``.
    """
    from repro.algorithms.continuous import continuous_assignment
    from repro.algorithms.oscillation import (
        DEFAULT_M_CAP,
        choose_m_grid,
        plan_modes,
    )
    from repro.runner.units import solve_cell_outcome
    from repro.service.session import default_session

    session = default_session()
    prepared: list[tuple[WorkUnit, Any, Any, tuple, Any]] = []
    for unit in units:
        if unit.kind != "solve_cell":
            continue
        payload = unit.payload
        if str(payload.get("algo")) not in GRID_DISPATCH_SOLVERS:
            continue
        params = dict(payload.get("params") or {})
        try:
            # Session engines: units for the same platform content share
            # one engine (and its caches) instead of rebuilding it.
            from repro.runner.units import _platform_spec_doc

            engine = session.engine_for(_platform_spec_doc(payload))
            # The checkpoint must precede the shared precompute so its
            # thermal work lands in this unit's stats row.
            mark = engine.checkpoint()
        except Exception:  # noqa: BLE001 - normal path will surface this
            continue
        # Mirror ao()'s parameter defaults — the hint key must match the
        # key the solver body derives from its actual arguments.
        key = (
            float(params.get("period", 0.02)),
            int(params.get("m_cap", DEFAULT_M_CAP)),
            int(params.get("m_step", 1)),
        )
        plan = None
        try:
            cont = continuous_assignment(engine.platform)
            cand = plan_modes(engine.platform, cont.voltages)
            if cand.oscillating.any():
                plan = cand
        except Exception:  # noqa: BLE001 - solver recomputes honestly
            plan = None
        prepared.append((unit, engine, mark, key, plan))

    groups: dict[tuple, list[int]] = {}
    for idx, (_unit, _engine, _mark, key, plan) in enumerate(prepared):
        if plan is not None:
            groups.setdefault(key, []).append(idx)
    for key, idxs in groups.items():
        period, m_cap, m_step = key
        try:
            scans = choose_m_grid(
                [(prepared[i][1], prepared[i][4]) for i in idxs],
                period, m_cap=m_cap, m_step=m_step,
            )
        except Exception:  # noqa: BLE001 - units fall back to scalar scans
            METRICS.counter("comparison.grid_precompute_errors").inc()
            continue
        for i, scan in zip(idxs, scans):
            prepared[i][1].set_hint("choose_m", key, scan)

    handled: dict[str, tuple[dict[str, Any], float]] = {}
    seen_engines: set[int] = set()
    for unit, engine, mark, _key, _plan in prepared:
        t0 = time.perf_counter()
        # Session-shared engines: only the first unit on an engine keeps
        # its prepare-time mark (attributing the shared precompute once);
        # later units re-checkpoint here so their stats rows never count
        # a sibling's precompute or solve work.
        if id(engine) in seen_engines:
            mark = engine.checkpoint()
        else:
            seen_engines.add(id(engine))
        try:
            outcome = solve_cell_outcome(unit.payload, engine=engine, mark=mark)
        except Exception:  # noqa: BLE001 - normal path retries this unit
            METRICS.counter("comparison.grid_dispatch_errors").inc()
            continue
        handled[unit.unit_id] = (outcome, time.perf_counter() - t0)
    return handled


def build_grid(
    core_counts=(2, 3, 6, 9),
    level_counts=(2,),
    t_max_values=(55.0,),
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    tau: float = 5e-6,
    parallel: bool = False,
    max_workers: int | None = None,
    runner: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable | None = None,
    grid_dispatch: bool = True,
) -> ComparisonGrid:
    """Run the comparison over a (cores x levels x T_max) grid.

    The grid decomposes into one work unit per ``(cell, approach)`` pair
    and executes through the sharded runner.  ``parallel`` /
    ``max_workers`` build a default :class:`~repro.runner.RunnerConfig`;
    pass ``runner`` explicitly for timeout/retry control.  With
    ``run_dir`` every finished unit is journaled so ``resume=True``
    continues an interrupted sweep.  Cell order — and therefore the
    emitted grid — is identical in all modes, and a unit that fails
    terminally records a structured error row (see
    ``grid.report``) instead of aborting the sweep.

    ``grid_dispatch`` (sequential mode only) routes the AO/PCO units
    through :func:`grid_batch_executor`, pricing every unit's m scan in
    one cross-platform grid kernel call; results are identical to
    per-unit execution, and any batching failure falls back to it.
    """
    config = runner or RunnerConfig(parallel=parallel, max_workers=max_workers)
    if grid_dispatch and not config.parallel and config.batch_executor is None:
        config = replace(config, batch_executor=grid_batch_executor)
    common = {
        "period": period,
        "m_cap": m_cap,
        "m_step": m_step,
        "shift_grid": shift_grid,
    }
    units = comparison_units(
        core_counts, level_counts, t_max_values, approaches, common, tau=tau
    )
    with span("experiment/build_grid", units=len(units)):
        report = run_units(
            units,
            config=config,
            run_dir=run_dir,
            resume=resume,
            progress=progress,
            manifest_extra={
                "experiment": "comparison",
                "grid": {
                    "core_counts": [int(n) for n in core_counts],
                    "level_counts": [int(lv) for lv in level_counts],
                    "t_max_values": [float(t) for t in t_max_values],
                    "approaches": list(approaches),
                    "tau": float(tau),
                    "params": common,
                },
            },
        )
        cells = _assemble_cells(
            core_counts, level_counts, t_max_values, tuple(approaches), tau,
            common, report.records,
        )
    return ComparisonGrid(cells=cells, report=report)


@dataclass(frozen=True)
class ComparisonResult:
    """Result of the standalone ``comparison`` experiment."""

    grid: ComparisonGrid

    def format(self) -> str:
        from repro.experiments.reporting import ascii_table

        names = sorted(
            {name for cell in self.grid.cells for name in cell.results}
        ) or list(APPROACHES)
        rows = []
        for cell in self.grid.cells:
            rows.append(
                (cell.n_cores, cell.n_levels, cell.t_max_c)
                + tuple(cell.throughput(n) for n in names)
            )
        return ascii_table(
            ["cores", "levels", "T_max (C)", *names],
            rows,
            title="Comparison sweep — throughput per approach",
        )

    def to_csv(self) -> str:
        return self.grid.to_csv()


def comparison(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    level_counts: tuple[int, ...] = (2,),
    t_max_values: tuple[float, ...] = (55.0,),
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    tau: float = 5e-6,
    runner: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable | None = None,
    grid_dispatch: bool = True,
) -> ComparisonResult:
    """The bare comparison sweep as a first-class experiment.

    This is the runner's native workload: every CLI runner knob
    (``--parallel``, ``--timeout``, ``--retries``, ``--run-dir``,
    ``--resume``) maps directly onto one :func:`build_grid` call.
    """
    grid = build_grid(
        core_counts=core_counts,
        level_counts=level_counts,
        t_max_values=t_max_values,
        approaches=approaches,
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        shift_grid=shift_grid,
        tau=tau,
        runner=runner,
        run_dir=run_dir,
        resume=resume,
        progress=progress,
        grid_dispatch=grid_dispatch,
    )
    return ComparisonResult(grid=grid)
