"""Shared machinery for the algorithm-comparison experiments (Figs. 6-7, Table V).

Runs LNS / EXS / AO / PCO on a platform grid and collects throughput,
feasibility and wall-clock time per cell.  Grid cells are independent, so
:func:`build_grid` optionally fans them out over a
``concurrent.futures.ProcessPoolExecutor`` (``parallel=True``); each
worker rebuilds its platform from the cell spec, so nothing heavier than
the result travels across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import get_solver
from repro.engine import ThermalEngine
from repro.errors import InfeasibleError
from repro.platform import Platform, paper_platform

__all__ = ["CellResult", "run_cell", "ComparisonGrid"]

APPROACHES = ("LNS", "EXS", "AO", "PCO")


@dataclass(frozen=True)
class CellResult:
    """All four approaches on one (cores, levels, T_max) configuration."""

    n_cores: int
    n_levels: int
    t_max_c: float
    results: dict[str, SchedulerResult]

    def throughput(self, name: str) -> float:
        """Throughput of one approach (NaN if it was infeasible)."""
        r = self.results.get(name)
        return r.throughput if r is not None else float("nan")

    def runtime(self, name: str) -> float:
        """Wall-clock seconds of one approach."""
        r = self.results.get(name)
        return r.runtime_s if r is not None else float("nan")

    def improvement(self, name: str, over: str = "EXS") -> float:
        """Relative throughput improvement of ``name`` over ``over``."""
        a, b = self.throughput(name), self.throughput(over)
        if not np.isfinite(a) or not np.isfinite(b) or b == 0:
            return float("nan")
        return (a - b) / b


def run_cell(
    platform: Platform | ThermalEngine,
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
) -> CellResult:
    """Run the selected approaches on one platform configuration.

    Approaches are dispatched through the solver registry
    (:mod:`repro.algorithms.registry`); the common parameter pool below is
    filtered per solver through its declared ``params``, and one shared
    :class:`~repro.engine.ThermalEngine` serves the whole cell, so the
    approaches share the model's caches while each result carries its own
    counters.  An approach that raises
    :class:`~repro.errors.InfeasibleError` (no feasible assignment at this
    threshold) is recorded as absent.
    """
    engine = ThermalEngine.ensure(platform)
    common = {
        "period": period,
        "m_cap": m_cap,
        "m_step": m_step,
        "shift_grid": shift_grid,
    }
    results: dict[str, SchedulerResult] = {}
    for name in approaches:
        try:
            spec = get_solver(name)
        except KeyError as exc:
            raise ValueError(f"unknown approach {name!r}") from exc
        kwargs = {k: v for k, v in common.items() if k in spec.params}
        try:
            results[name] = spec.solve(engine, **kwargs)
        except InfeasibleError:
            pass
    return CellResult(
        n_cores=engine.n_cores,
        n_levels=len(engine.ladder),
        t_max_c=engine.platform.t_max_c,
        results=results,
    )


@dataclass(frozen=True)
class ComparisonGrid:
    """A collection of cells plus helpers over them."""

    cells: tuple[CellResult, ...]

    def find(self, n_cores: int, n_levels: int | None = None,
             t_max_c: float | None = None) -> CellResult:
        """Locate one cell by its coordinates."""
        for c in self.cells:
            if c.n_cores != n_cores:
                continue
            if n_levels is not None and c.n_levels != n_levels:
                continue
            if t_max_c is not None and abs(c.t_max_c - t_max_c) > 1e-9:
                continue
            return c
        raise KeyError(
            f"no cell for cores={n_cores}, levels={n_levels}, t_max={t_max_c}"
        )

    def improvements(self, name: str = "AO", over: str = "EXS") -> np.ndarray:
        """Per-cell relative improvements of ``name`` over ``over``."""
        vals = [c.improvement(name, over) for c in self.cells]
        return np.asarray([v for v in vals if np.isfinite(v)])

    def to_csv(self) -> str:
        """CSV dump of the grid (one row per cell, throughput + runtime)."""
        from repro.experiments.reporting import to_csv

        headers = ["cores", "levels", "t_max_c"]
        for name in APPROACHES:
            headers += [f"thr_{name.lower()}", f"time_{name.lower()}_s"]
        rows = []
        for c in self.cells:
            row: list = [c.n_cores, c.n_levels, c.t_max_c]
            for name in APPROACHES:
                row += [c.throughput(name), c.runtime(name)]
            rows.append(row)
        return to_csv(headers, rows)


def _run_cell_spec(spec: tuple) -> CellResult:
    """Build the platform for one grid cell and run it (pickle-friendly).

    Top-level so :class:`~concurrent.futures.ProcessPoolExecutor` can ship
    it to workers; the platform (with its cached eigendecomposition) is
    constructed inside the worker rather than serialized.
    """
    n, lv, tm, tau, approaches, period, m_cap, m_step, shift_grid = spec
    platform = paper_platform(n, n_levels=lv, t_max_c=tm, tau=tau)
    return run_cell(
        platform,
        approaches=approaches,
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        shift_grid=shift_grid,
    )


def build_grid(
    core_counts=(2, 3, 6, 9),
    level_counts=(2,),
    t_max_values=(55.0,),
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    tau: float = 5e-6,
    parallel: bool = False,
    max_workers: int | None = None,
) -> ComparisonGrid:
    """Run the comparison over a (cores x levels x T_max) grid.

    With ``parallel`` the independent cells are distributed over a
    ``ProcessPoolExecutor`` (``max_workers`` processes; default: the
    executor's own heuristic).  Cell order — and therefore the emitted
    grid — is identical in both modes; per-cell ``runtime_s`` values
    remain meaningful because each cell still runs on one core.
    """
    specs = [
        (n, lv, tm, tau, tuple(approaches), period, m_cap, m_step, shift_grid)
        for n in core_counts
        for lv in level_counts
        for tm in t_max_values
    ]
    if parallel:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            cells = list(pool.map(_run_cell_spec, specs))
    else:
        cells = [_run_cell_spec(spec) for spec in specs]
    return ComparisonGrid(cells=tuple(cells))
