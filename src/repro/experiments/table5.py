"""Table V — computation time of AO / PCO / EXS across the config grid.

T_max = 65 C; cores in {2, 3, 6, 9}; Table IV ladders with 2-5 levels.
Expected shape (paper): EXS grows exponentially with cores x levels while
AO stays within seconds and PCO costs a constant factor over AO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.comparison import ComparisonGrid, build_grid
from repro.experiments.reporting import ascii_table

__all__ = ["Table5Result", "table5"]


@dataclass(frozen=True)
class Table5Result:
    """Wall-clock seconds per approach per configuration."""

    grid: ComparisonGrid

    def format(self) -> str:
        rows = []
        for cell in self.grid.cells:
            rows.append(
                (
                    cell.n_cores,
                    cell.n_levels,
                    cell.runtime("AO"),
                    cell.runtime("PCO"),
                    cell.runtime("EXS"),
                )
            )
        return ascii_table(
            ["cores", "levels", "AO (s)", "PCO (s)", "EXS (s)"],
            rows,
            title="Table V — computation time (seconds, this machine)",
        )

    def exs_growth(self) -> float:
        """EXS time ratio between the largest and smallest configuration."""
        times = [c.runtime("EXS") for c in self.grid.cells]
        finite = [t for t in times if t == t]  # drop NaN
        if len(finite) < 2 or min(finite) == 0:
            return float("nan")
        return max(finite) / min(finite)


def table5(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    level_counts: tuple[int, ...] = (2, 3, 4, 5),
    t_max_c: float = 65.0,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    runner=None,
    run_dir=None,
    resume: bool = False,
    progress=None,
) -> Table5Result:
    """Time the three approaches over the configuration grid."""
    grid = build_grid(
        core_counts=core_counts,
        level_counts=level_counts,
        t_max_values=(t_max_c,),
        approaches=("EXS", "AO", "PCO"),
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        shift_grid=shift_grid,
        runner=runner,
        run_dir=run_dir,
        resume=resume,
        progress=progress,
    )
    return Table5Result(grid=grid)
