"""Fig. 7 — throughput vs temperature threshold (2-level ladder).

T_max swept 50-65 C in 5 C steps, cores in {2, 3, 6, 9}, modes
{0.6, 1.3} V.  Expected shape (paper): every approach's throughput grows
with T_max, with AO/PCO on top throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.comparison import APPROACHES, ComparisonGrid, build_grid
from repro.experiments.reporting import ascii_table

__all__ = ["Fig7Result", "fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """The Fig. 7 grid."""

    grid: ComparisonGrid
    core_counts: tuple[int, ...]
    t_max_values: tuple[float, ...]

    def format(self) -> str:
        rows = []
        for cell in self.grid.cells:
            rows.append(
                (
                    cell.n_cores,
                    cell.t_max_c,
                    cell.throughput("LNS"),
                    cell.throughput("EXS"),
                    cell.throughput("AO"),
                    cell.throughput("PCO"),
                )
            )
        table = ascii_table(
            ["cores", "T_max (C)", "LNS", "EXS", "AO", "PCO"],
            rows,
            title="Fig. 7 — throughput vs temperature threshold (2 voltage levels)",
        )
        imps = self.grid.improvements("AO", "EXS")
        if imps.size:
            table += (
                f"\nAO over EXS: mean {imps.mean():+.1%}, max {imps.max():+.1%}"
            )
        return table


def fig7(
    core_counts: tuple[int, ...] = (2, 3, 6, 9),
    t_max_values: tuple[float, ...] = (50.0, 55.0, 60.0, 65.0),
    approaches: tuple[str, ...] = APPROACHES,
    period: float = 0.02,
    m_cap: int = 128,
    m_step: int = 1,
    shift_grid: int = 8,
    runner=None,
    run_dir=None,
    resume: bool = False,
    progress=None,
) -> Fig7Result:
    """Run the Fig. 7 sweep (runner kwargs forward to the sharded runner)."""
    grid = build_grid(
        core_counts=core_counts,
        level_counts=(2,),
        t_max_values=t_max_values,
        approaches=approaches,
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        shift_grid=shift_grid,
        runner=runner,
        run_dir=run_dir,
        resume=resume,
        progress=progress,
    )
    return Fig7Result(
        grid=grid,
        core_counts=tuple(core_counts),
        t_max_values=tuple(t_max_values),
    )
