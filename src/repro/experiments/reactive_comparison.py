"""Extension experiment: reactive DTM vs the proactive AO schedule.

The introduction's argument for proactive DTM, made quantitative: a
threshold-throttling governor either violates ``T_max`` (small guard
band — the sensor reacts after the overshoot) or gives up throughput
(large guard band).  AO's offline guarantee needs neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import ao
from repro.algorithms.reactive import reactive_throttling
from repro.experiments.reporting import ascii_table
from repro.platform import paper_platform

__all__ = ["ReactiveComparisonResult", "reactive_comparison"]


@dataclass(frozen=True)
class ReactiveComparisonResult:
    """Guard-band sweep of the reactive governor plus the AO reference."""

    rows: tuple[tuple[float, float, float, bool], ...]  # (guard, thr, overshoot, ok)
    ao_throughput: float
    ao_peak_theta: float

    def format(self) -> str:
        table_rows = [
            (f"{g:.1f} K", thr, over, "OK" if ok else "VIOLATION")
            for g, thr, over, ok in self.rows
        ]
        table_rows.append(("AO (proactive)", self.ao_throughput, 0.0, "OK"))
        out = ascii_table(
            ["guard band", "throughput", "overshoot (K)", "T_max"],
            table_rows,
            title="Reactive threshold throttling vs proactive AO",
        )
        return out + (
            "\nreactive governors trade overshoot against throughput; "
            "AO dominates both ends."
        )

    @property
    def ao_dominates(self) -> bool:
        """AO at least matches every *feasible* reactive setting."""
        return all(
            self.ao_throughput >= thr - 1e-9
            for _g, thr, _o, ok in self.rows
            if ok
        )


def reactive_comparison(
    n_cores: int = 3,
    n_levels: int = 2,
    t_max_c: float = 65.0,
    guard_bands: tuple[float, ...] = (0.0, 1.0, 3.0, 6.0),
    sensor_period: float = 1e-3,
    m_cap: int = 64,
) -> ReactiveComparisonResult:
    """Sweep the governor's guard band and compare against AO."""
    platform = paper_platform(n_cores, n_levels=n_levels, t_max_c=t_max_c)
    rows = []
    for guard in guard_bands:
        r = reactive_throttling(
            platform, guard_band=guard, sensor_period=sensor_period
        )
        rows.append(
            (
                float(guard),
                float(r.throughput),
                float(r.details["overshoot_k"]),
                bool(r.feasible),
            )
        )
    r_ao = ao(platform, m_cap=m_cap)
    return ReactiveComparisonResult(
        rows=tuple(rows),
        ao_throughput=float(r_ao.throughput),
        ao_peak_theta=float(r_ao.peak_theta),
    )
