"""Plain-text table formatting and CSV dumping for experiment outputs."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

__all__ = ["ascii_plot", "ascii_table", "to_csv"]


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def ascii_plot(
    xs: Sequence[float],
    series: "dict[str, Sequence[float]]",
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render named y-series over shared x values as a text line chart.

    Each series gets a marker (its label's first letter); colliding cells
    show ``*``.  Deterministic output — committed experiment figures diff
    cleanly across runs.
    """
    points = [y for ys in series.values() for y in ys]
    if not points or not xs:
        return "(empty plot)"
    y_lo, y_hi = min(points), max(points)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, ys in series.items():
        marker = label[0]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "*"
    out = []
    if title:
        out.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.4f} "
        elif i == height - 1:
            label = f"{y_lo:.4f} "
        else:
            label = " " * len(f"{y_hi:.4f} ")
        out.append(label + "|" + "".join(row))
    margin = " " * len(f"{y_hi:.4f} ")
    out.append(margin + "+" + "-" * width)
    out.append(margin + f" {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}")))
    legend = "   ".join(f"{label[0]} = {label}" for label in series)
    out.append(margin + " " + legend)
    if y_label:
        out.append(margin + " y: " + y_label)
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV text (for piping into plotting tools)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()
