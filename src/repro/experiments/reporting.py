"""Plain-text table formatting and CSV dumping for experiment outputs."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

__all__ = ["ascii_table", "to_csv"]


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV text (for piping into plotting tools)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()
