"""Full-system co-simulation: workload execution + thermal response.

The thermal analysis so far assumes each core draws the *nominal* power of
its DVFS schedule at all times.  A real core with EDF-scheduled tasks
power-gates whenever its ready queue is empty (race-to-idle), so the true
temperature trace sits at or below the nominal one.  This engine closes
the loop:

1. run the EDF simulation per core on the nominal speed profile,
   collecting idle windows,
2. mask the nominal schedule with those windows (speed -> 0 while idle),
3. simulate the thermal model on the masked power timeline,
4. report both worlds: deadline behaviour, nominal-vs-actual peak, and
   the idle-slack temperature dividend.

The nominal peak remains the *guarantee* (it upper-bounds the actual);
the co-simulated peak shows the margin a governor could reclaim.

The second half of this module closes the loop the other way:
:func:`simulate_closed_loop` runs a *sensor-driven* DVFS policy (the
reactive throttler, the integral-controller family) against the same
thermal model under injected :class:`~repro.safety.faults.FaultSpec`
perturbations — sensor noise and dropout on what the policy reads, a
stuck DVFS actuator overriding what it commands, ambient drift eating
its headroom — while the reported statistics stay grounded in the true
(dense, unperturbed-physics) temperature trace.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.safety.faults import FaultSpec, stuck_schedule
from repro.schedule.builders import from_core_timelines
from repro.schedule.intervals import MIN_INTERVAL
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.matex import interval_solution
from repro.thermal.model import ThermalModel
from repro.thermal.peak import peak_temperature
from repro.workload.edf import EDFReport, simulate_edf
from repro.workload.tasks import PeriodicTask

__all__ = [
    "ClosedLoopTrace",
    "CoSimReport",
    "cosimulate",
    "simulate_closed_loop",
]

#: ``policy(step, reading) -> level_idx`` — the governor side of the loop.
PolicyFn = Callable[[int, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ClosedLoopTrace:
    """Sampled state of one sensor-driven closed-loop simulation.

    Attributes
    ----------
    times:
        Sensor instants (s), one per step.
    temperatures:
        ``(n_steps, n_nodes)`` node temperatures at the sensor instants.
    levels:
        ``(n_steps, n_cores)`` voltages *applied* during each step (the
        stuck-DVFS fault is already folded in — this is what the silicon
        ran, not what the policy commanded).
    readings:
        ``(n_steps, n_cores)`` core temperatures the policy *saw* after
        each step — sensor noise, dropout, and ambient drift included.
    peak_theta:
        Hottest core temperature over the measurement window (dense
        within-step maxima plus ambient drift, not just sensor samples).
    work:
        Integrated speed-seconds over the measurement window (summed
        across cores).
    measured_time:
        Length (s) of the measurement window the statistics cover.
    """

    times: np.ndarray
    temperatures: np.ndarray
    levels: np.ndarray
    readings: np.ndarray
    peak_theta: float
    work: float
    measured_time: float

    @property
    def throughput(self) -> float:
        """Time-averaged per-core speed over the measurement window."""
        if self.measured_time <= 0:
            return 0.0
        n_cores = self.levels.shape[1]
        return float(self.work / (n_cores * self.measured_time))


def simulate_closed_loop(
    model: ThermalModel,
    ladder,
    policy: PolicyFn,
    *,
    n_steps: int,
    sensor_period: float,
    initial_levels: np.ndarray,
    settle_steps: int = 0,
    faults: FaultSpec | dict | None = None,
    rng: np.random.Generator | None = None,
) -> ClosedLoopTrace:
    """Run a sensor-driven DVFS policy against the thermal model.

    This is the shared cosimulation core behind every closed-loop
    governor in the tree (the reactive threshold throttler and the
    integral-controller family): per sensor period it propagates the
    exact interval solution, tracks the dense within-step peak, perturbs
    the end-of-step sensor reading through the injected
    :class:`~repro.safety.faults.FaultSpec` (noise, dropout, ambient
    drift), pins a stuck DVFS core, power-gates failed cores, and hands
    the *perturbed* reading to ``policy`` — which returns the ladder
    level indices for the next step.  The physics the statistics are
    taken over always uses the true temperatures; only the policy is
    lied to, exactly like on real silicon.

    Core failures (``faults.core_failures``) are fail-stop: from the
    first step whose start fraction (``step / n_steps``) reaches a
    failure's ``at_fraction``, the failed core draws zero power no
    matter what the policy commands (transient failures return after
    their outage).  The applied-levels trace records the zeros — that
    is what the silicon ran.

    Parameters
    ----------
    policy:
        ``policy(step, reading) -> level_idx`` mapping the perturbed
        core-temperature reading after ``step`` to the per-core ladder
        level indices applied in step ``step + 1``.
    initial_levels:
        Per-core ladder level indices applied in step 0.  The array is
        adopted (stuck-actuator pinning mutates it in place); pass a
        copy if the caller needs it preserved.
    settle_steps:
        Steps discarded as warm-up before peak/throughput statistics.
    faults:
        Optional :class:`~repro.safety.faults.FaultSpec` (or dict form)
        injected into sensing and actuation.
    rng:
        Explicit generator driving the fault sampling.  ``None`` derives
        one from ``faults.seed`` — pass a generator only to share one
        stream across several simulations deliberately.
    """
    faults = FaultSpec.coerce(faults)
    n = model.n_cores
    cores = model.network.core_nodes
    levels_arr = np.asarray(ladder.levels)
    # Adopted, not copied: a policy that keeps a reference to this array
    # (the reactive throttler's hysteresis state) sees the stuck-actuator
    # pinning exactly as it would on shared hardware registers.
    level_idx = np.asarray(initial_levels, dtype=int)

    if rng is None and faults is not None:
        rng = faults.rng()
    stuck_idx: int | None = None
    if faults is not None and faults.stuck_core is not None:
        stuck_idx = faults.stuck_level % len(ladder)

    theta = np.zeros(model.n_nodes)
    times = np.empty(n_steps)
    temps = np.empty((n_steps, model.n_nodes))
    levels = np.empty((n_steps, n))
    readings = np.empty((n_steps, n))
    peak = -np.inf
    work = 0.0
    measured_time = 0.0
    last_reading = np.zeros(n)

    has_failures = faults is not None and bool(faults.core_failures)

    for step in range(n_steps):
        if stuck_idx is not None:
            # The stuck actuator ignores whatever the policy decided.
            level_idx[faults.stuck_core] = stuck_idx
        volts = levels_arr[level_idx]
        if has_failures:
            dead = faults.failed_cores_at(step / n_steps)
            if dead:
                volts = volts.copy()
                for core in dead:
                    if core < n:
                        volts[core] = 0.0
        # Dense within-step maximum (the sensor cannot see it, we can).
        drift = faults.drift_at((step + 1) / n_steps) if faults is not None else 0.0
        sol = interval_solution(model, theta, volts, sensor_period)
        if step >= settle_steps:
            val, _node, _when = sol.peak(nodes=cores, grid=16, refine=False)
            peak = max(peak, val + drift)
            work += float(volts.sum()) * sensor_period
            measured_time += sensor_period
        theta = sol.end_temperature()

        times[step] = (step + 1) * sensor_period
        temps[step] = theta
        levels[step] = volts

        # Policy reaction based on the (end-of-step) sensor reading —
        # perturbed by the injected sensor faults, which is exactly what
        # a real governor would be reacting to.
        reading = theta[cores] + drift
        if faults is not None and faults.any_sensor_fault:
            reading = faults.perturb_reading(reading, last_reading, rng)
        last_reading = reading
        readings[step] = reading
        level_idx = np.asarray(policy(step, reading), dtype=int)

    return ClosedLoopTrace(
        times=times,
        temperatures=temps,
        levels=levels,
        readings=readings,
        peak_theta=float(peak),
        work=float(work),
        measured_time=float(measured_time),
    )


@dataclass(frozen=True)
class CoSimReport:
    """Outcome of a workload + thermal co-simulation.

    Attributes
    ----------
    edf_reports:
        Per-core EDF simulation results over the co-sim horizon.
    nominal_peak_theta:
        Stable peak of the nominal schedule (the offline guarantee).
    actual_peak_theta:
        Stable peak of the idle-masked power timeline (<= nominal).
    idle_fractions:
        Per-core fraction of time spent power-gated.
    horizon_s:
        The common horizon used for EDF and the masked thermal period.
    faults:
        The injected :class:`~repro.safety.faults.FaultSpec`, if any.
    faulted_peak_theta:
        Stable peak of the *nominal* schedule re-evaluated under the
        injected faults (stuck DVFS core pinned, ambient drift added) —
        the temperature the offline guarantee degrades to when the
        platform misbehaves.  ``None`` when no faults were injected.
    """

    edf_reports: tuple[EDFReport, ...]
    nominal_peak_theta: float
    actual_peak_theta: float
    idle_fractions: np.ndarray
    horizon_s: float
    faults: FaultSpec | None = None
    faulted_peak_theta: float | None = None

    @property
    def all_deadlines_met(self) -> bool:
        """True when no core missed a deadline."""
        return all(r.all_deadlines_met for r in self.edf_reports)

    @property
    def idle_dividend_theta(self) -> float:
        """Peak reduction the idle slack bought (K)."""
        return self.nominal_peak_theta - self.actual_peak_theta

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"cosim: deadlines {'OK' if self.all_deadlines_met else 'MISSED'}, "
            f"nominal peak {self.nominal_peak_theta:.2f} K, actual "
            f"{self.actual_peak_theta:.2f} K "
            f"(idle dividend {self.idle_dividend_theta:+.2f} K)"
        )
        if self.faulted_peak_theta is not None:
            text += f", faulted peak {self.faulted_peak_theta:.2f} K"
        return text


def _mask_timeline(
    schedule: PeriodicSchedule,
    core: int,
    idle_windows: tuple[tuple[float, float], ...],
    horizon: float,
) -> list[tuple[float, float]]:
    """Core's (length, voltage) segments over [0, horizon], idle masked to 0."""
    bounds = schedule.boundaries
    volts = schedule.voltage_matrix[:, core]
    period = schedule.period

    # Cut points: schedule boundaries (unrolled) + idle window edges.
    cuts = {0.0, horizon}
    t = 0.0
    while t < horizon:
        for b in bounds[1:]:
            point = t + b
            if point < horizon:
                cuts.add(point)
        t += period
    for s, e in idle_windows:
        if s < horizon:
            cuts.add(s)
            cuts.add(min(e, horizon))
    grid = sorted(cuts)

    def speed_at(instant: float) -> float:
        for s, e in idle_windows:
            if s - 1e-12 <= instant < e - 1e-12:
                return 0.0
        local = instant % period
        q = int(np.searchsorted(bounds, local, side="right") - 1)
        q = min(max(q, 0), schedule.n_intervals - 1)
        return float(volts[q])

    segments: list[tuple[float, float]] = []
    for a, b in zip(grid, grid[1:]):
        if b - a < MIN_INTERVAL:
            continue
        v = speed_at(0.5 * (a + b))
        if segments and abs(segments[-1][1] - v) < 1e-12:
            segments[-1] = (segments[-1][0] + (b - a), v)
        else:
            segments.append((b - a, v))
    return segments


def cosimulate(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    tasks_per_core: list[list[PeriodicTask]],
    horizon_s: float | None = None,
    faults: FaultSpec | dict | None = None,
    ladder=None,
) -> CoSimReport:
    """Co-simulate EDF execution and temperature on one platform.

    Parameters
    ----------
    model:
        The thermal model (cores must match the schedule).
    schedule:
        The nominal DVFS schedule (speed = voltage).
    tasks_per_core:
        Task lists per core (empty list = core has no work and idles
        entirely).
    horizon_s:
        Co-simulation span; defaults to a hyperperiod-ish window (4x the
        longest task period, at least 20 schedule periods) shared by every
        core.  The masked timeline is treated as one period of a periodic
        pattern for the thermal stable status — exact when the horizon is
        a multiple of the task hyperperiod, an excellent approximation
        otherwise.
    faults:
        Optional :class:`~repro.safety.faults.FaultSpec` (or dict form).
        The nominal schedule is re-evaluated under a stuck DVFS core
        (requires ``ladder``) and full ambient drift; the result lands in
        ``faulted_peak_theta``.  Sensor faults do not apply here — there
        is no sensor in the offline loop, which is the point.
    ladder:
        The platform's :class:`~repro.platform.VoltageLadder`; only
        needed when ``faults.stuck_core`` is set.
    """
    if len(tasks_per_core) != schedule.n_cores:
        raise ConfigurationError(
            f"tasks_per_core must have {schedule.n_cores} entries, "
            f"got {len(tasks_per_core)}"
        )
    faults = FaultSpec.coerce(faults)
    if faults is not None and faults.stuck_core is not None and ladder is None:
        raise ConfigurationError(
            "cosimulate needs the platform ladder to pin a stuck DVFS core"
        )
    all_tasks = [t for core_tasks in tasks_per_core for t in core_tasks]
    if horizon_s is None:
        longest = max((t.period_s for t in all_tasks), default=schedule.period)
        horizon_s = max(4.0 * longest, 20.0 * schedule.period)

    reports = []
    timelines = []
    idle_fracs = np.zeros(schedule.n_cores)
    for core in range(schedule.n_cores):
        tasks = tasks_per_core[core]
        if tasks:
            report = simulate_edf(schedule, core, tasks, horizon_s=horizon_s)
            idle = report.idle_windows
        else:
            report = EDFReport(
                horizon_s=horizon_s, jobs_released=0, jobs_completed=0,
                deadline_misses=(), max_lateness_s=0.0,
                idle_windows=((0.0, horizon_s),),
            )
            idle = report.idle_windows
        reports.append(report)
        idle_fracs[core] = sum(e - s for s, e in idle) / horizon_s
        timelines.append(_mask_timeline(schedule, core, idle, horizon_s))

    masked = from_core_timelines(timelines)
    nominal_peak = peak_temperature(model, schedule).value
    actual_peak = peak_temperature(model, masked).value
    faulted_peak: float | None = None
    if faults is not None and faults.any_active:
        faulted = schedule
        if faults.stuck_core is not None:
            faulted = stuck_schedule(schedule, ladder, faults)
        faulted_peak = float(
            peak_temperature(model, faulted).value + faults.ambient_drift_k
        )
    return CoSimReport(
        edf_reports=tuple(reports),
        nominal_peak_theta=float(nominal_peak),
        actual_peak_theta=float(actual_peak),
        idle_fractions=idle_fracs,
        horizon_s=float(horizon_s),
        faults=faults,
        faulted_peak_theta=faulted_peak,
    )
