"""Co-simulation: tasks (EDF) and temperature executed together."""

from repro.sim.engine import CoSimReport, cosimulate

__all__ = ["CoSimReport", "cosimulate"]
