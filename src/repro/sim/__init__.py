"""Co-simulation: tasks (EDF), closed-loop governors, and temperature."""

from repro.sim.engine import (
    ClosedLoopTrace,
    CoSimReport,
    cosimulate,
    simulate_closed_loop,
)

__all__ = [
    "ClosedLoopTrace",
    "CoSimReport",
    "cosimulate",
    "simulate_closed_loop",
]
