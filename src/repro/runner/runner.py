"""Fault-tolerant sharded execution of work units.

:func:`run` takes a list of :class:`~repro.runner.units.WorkUnit` and
drives them to completion either sequentially (the zero-dependency
fallback) or on a pool of worker *processes* — one process per in-flight
unit, so a unit that hangs can be terminated on deadline and a unit that
dies (segfault, OOM-kill) takes nothing else down.  Every failure mode
settles into a structured journal row rather than aborting the sweep:

* the unit **raises** → the exception type/message is recorded;
* the unit **exceeds its timeout** → the worker is terminated and a
  ``TimeoutError`` row is recorded;
* the worker **dies without answering** → a ``WorkerCrashed`` row with
  the exit code is recorded.

Each failure is retried up to ``retries`` times with exponential backoff
before its error row is final.  With a ``run_dir``, finished units are
appended to ``journal.jsonl`` as they settle, so ``resume=True`` (CLI:
``--resume``) skips everything already journaled and re-runs only the
missing units — after a crash, a Ctrl-C, or a kill -9.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import sys
import time
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.engine import EngineStats
from repro.errors import RunnerError
from repro.obs import METRICS, record_span, span
from repro.runner.journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    Journal,
    git_sha,
    read_manifest,
    write_manifest,
)
from repro.runner.units import WorkUnit, execute_unit, units_hash

__all__ = ["RunnerConfig", "RunReport", "run", "print_progress"]

#: Journal statuses that mark a unit as settled.
TERMINAL_STATUSES = ("ok", "infeasible", "error")

ProgressFn = Callable[[Mapping[str, Any]], None]


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy for one run.

    Attributes
    ----------
    parallel:
        Fan units out over worker processes.  Sequentially (the default)
        units run in-process: no timeout enforcement, but journaling,
        retry and resume work identically.
    max_workers:
        Concurrent worker processes (default: ``os.cpu_count()``).
    timeout_s:
        Per-unit wall-clock deadline; an overdue worker is terminated
        and the attempt counts as failed.  ``None`` disables.  Only
        enforceable in parallel mode (workers are separate processes).
    retries:
        How many times a failed attempt is retried before its error row
        is final (``retries=1`` means up to two attempts).
    backoff_s:
        Delay before the first retry; doubles per subsequent retry.
    retry_failed:
        On resume, re-run units whose journal row is an error row
        (default: error rows are settled — the sweep completed them).
    mp_context:
        Multiprocessing start method; default prefers ``fork``.
    batch_executor:
        Optional hook for cross-unit batched execution (sequential mode
        only): called once with the full todo list, it may execute any
        subset and return ``{unit_id: (outcome, elapsed_s)}``.  Handled
        units settle from those outcomes; unhandled units — and the
        whole set, if the hook raises — fall through to the normal
        per-unit path, so batching is strictly an optimization, never a
        correctness dependency.
    """

    parallel: bool = False
    max_workers: int | None = None
    timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.5
    retry_failed: bool = False
    mp_context: str | None = None
    batch_executor: (
        "Callable[[Sequence[WorkUnit]], Mapping[str, tuple[Mapping[str, Any], float]]] | None"
    ) = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "parallel": self.parallel,
            "max_workers": self.max_workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "retry_failed": self.retry_failed,
            "grid_dispatch": self.batch_executor is not None,
        }

    def resolve_workers(self) -> int:
        if self.max_workers is not None:
            return max(1, int(self.max_workers))
        return max(1, os.cpu_count() or 1)

    def resolve_context(self) -> mp.context.BaseContext:
        method = self.mp_context
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        return mp.get_context(method)


@dataclass
class RunReport:
    """Outcome of one :func:`run`: counts, rows, and aggregated stats.

    ``records`` maps every unit id of the requested set to its journal
    row (including rows inherited from a resumed journal).  ``stats`` is
    the run-level :class:`~repro.engine.EngineStats` — the counter-wise
    sum of every per-unit stats dump.
    """

    run_dir: str | None
    total: int
    ok: int = 0
    infeasible: int = 0
    errors: int = 0
    skipped: int = 0
    wall_s: float = 0.0
    stats: EngineStats = field(default_factory=EngineStats)
    records: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def failures(self) -> int:
        """Units whose final journal row is an error row."""
        return self.errors

    def summary(self) -> str:
        """One-paragraph digest for the CLI."""
        lines = [
            f"runner: {self.total} units — {self.ok} ok, "
            f"{self.infeasible} infeasible, {self.errors} failed "
            f"({self.skipped} resumed from journal) in {self.wall_s:.1f} s"
        ]
        if self.run_dir:
            lines.append(f"  run dir: {self.run_dir}")
        for row in self.records.values():
            if row.get("status") == "error":
                err = row.get("error") or {}
                lines.append(
                    f"  FAILED {row.get('label') or row.get('unit_id')}: "
                    f"{err.get('type')}: {err.get('message')} "
                    f"(after {row.get('attempts')} attempt(s))"
                )
        lines.append(f"  engine: {self.stats.summary_line()}")
        return "\n".join(lines)


def print_progress(event: Mapping[str, Any], stream=None) -> None:
    """Default progress reporter: one stderr line per settled unit."""
    stream = stream if stream is not None else sys.stderr
    status = event["status"]
    if status == "retry":
        print(
            f"[runner] retry {event['label']} "
            f"(attempt {event['attempts']} failed: {event['reason']})",
            file=stream,
        )
        return
    print(
        f"[runner] {event['completed']}/{event['total']} "
        f"{status:<10s} {event['label']} "
        f"({event['elapsed_s']:.2f}s, attempt {event['attempts']})",
        file=stream,
    )


# ----------------------------------------------------------------------
# worker process entry point
# ----------------------------------------------------------------------


def _worker_main(conn, unit_doc: dict[str, Any]) -> None:
    """Run one unit and ship its outcome (or exception) back over the pipe."""
    try:
        outcome = execute_unit(unit_doc)
        conn.send(("done", outcome))
    except BaseException as exc:  # noqa: BLE001 - everything becomes a row
        try:
            conn.send(("raised", {"type": type(exc).__name__, "message": str(exc)}))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# internal bookkeeping
# ----------------------------------------------------------------------


class _Pending:
    __slots__ = ("unit", "attempts", "not_before")

    def __init__(self, unit: WorkUnit, attempts: int = 0, not_before: float = 0.0):
        self.unit = unit
        self.attempts = attempts
        self.not_before = not_before


class _Inflight:
    __slots__ = ("unit", "attempts", "proc", "conn", "started", "deadline")

    def __init__(self, unit, attempts, proc, conn, started, deadline):
        self.unit = unit
        self.attempts = attempts
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline


class _RunState:
    """Mutable run-wide state shared by the execution strategies."""

    def __init__(self, journal, report, progress, total):
        self.journal = journal
        self.report = report
        self.progress = progress
        self.total = total
        self.completed = 0

    def settle(
        self,
        unit: WorkUnit,
        attempts: int,
        elapsed: float,
        outcome: Mapping[str, Any] | None,
        error: Mapping[str, Any] | None,
    ) -> None:
        """Record a unit's terminal row (journal + report + progress)."""
        if error is not None:
            status = "error"
        else:
            status = str(outcome.get("status", "ok"))
        row = {
            "unit_id": unit.unit_id,
            "kind": unit.kind,
            "label": unit.label,
            # The full unit spec: makes every journal row self-describing
            # (the fault seeds an experiment ran with are in its journal,
            # not just recoverable by rebuilding the unit list).
            "payload": dict(unit.payload),
            "status": status,
            "attempts": attempts,
            "elapsed_s": round(float(elapsed), 6),
            "result": (outcome or {}).get("result"),
            "stats": (outcome or {}).get("stats"),
            "certificate": (outcome or {}).get("certificate"),
            "spans": (outcome or {}).get("spans"),
            "error": dict(error) if error is not None else None,
        }
        detail = (outcome or {}).get("detail")
        if detail is not None:
            row["detail"] = detail
        if self.journal is not None:
            self.journal.append(row)
        self.report.records[unit.unit_id] = row
        self.completed += 1
        METRICS.counter(f"runner.units_{status}").inc()
        METRICS.histogram("runner.unit_seconds").observe(float(elapsed))
        record_span(
            "runner/unit",
            float(elapsed),
            attrs={
                "unit_id": unit.unit_id,
                "label": unit.label or unit.unit_id,
                "status": status,
                "attempts": attempts,
            },
        )
        if self.progress is not None:
            self.progress(
                {
                    "status": status,
                    "label": unit.label or unit.unit_id,
                    "unit_id": unit.unit_id,
                    "attempts": attempts,
                    "elapsed_s": float(elapsed),
                    "completed": self.completed,
                    "total": self.total,
                }
            )

    def note_retry(self, unit: WorkUnit, attempts: int, reason: str) -> None:
        if self.progress is not None:
            self.progress(
                {
                    "status": "retry",
                    "label": unit.label or unit.unit_id,
                    "unit_id": unit.unit_id,
                    "attempts": attempts,
                    "reason": reason,
                }
            )


def _backoff(config: RunnerConfig, attempts: int) -> float:
    return config.backoff_s * (2.0 ** max(0, attempts - 1))


# ----------------------------------------------------------------------
# execution strategies
# ----------------------------------------------------------------------


def _run_batch(todo: Sequence[WorkUnit], config: RunnerConfig,
               state: _RunState) -> list[WorkUnit]:
    """Offer the todo set to the batch executor; return the remainder.

    Outcomes the executor hands back settle immediately (journal rows
    identical to per-unit execution); everything else — including the
    whole set when the executor raises — is returned for the normal
    sequential path.
    """
    assert config.batch_executor is not None
    try:
        with span("runner/batch_execute", units=len(todo)):
            handled = dict(config.batch_executor(todo) or {})
    except Exception as exc:  # noqa: BLE001 - batching must never fail a run
        METRICS.counter("runner.batch_executor_errors").inc()
        if todo:
            state.note_retry(
                todo[0], 0,
                f"batch executor failed, falling back: "
                f"{type(exc).__name__}: {exc}",
            )
        return list(todo)
    remainder: list[WorkUnit] = []
    for unit in todo:
        entry = handled.get(unit.unit_id)
        if entry is None:
            remainder.append(unit)
            continue
        outcome, elapsed = entry
        state.settle(unit, 1, float(elapsed), outcome, None)
    return remainder


def _run_sequential(todo: Sequence[WorkUnit], config: RunnerConfig,
                    state: _RunState) -> None:
    """In-process execution: no timeout enforcement, same journaling."""
    if config.batch_executor is not None and todo:
        todo = _run_batch(todo, config, state)
    for unit in todo:
        attempts = 0
        while True:
            attempts += 1
            t0 = time.perf_counter()
            try:
                outcome = execute_unit(unit.as_doc())
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - becomes a row or a retry
                elapsed = time.perf_counter() - t0
                if attempts <= config.retries:
                    state.note_retry(unit, attempts, f"{type(exc).__name__}: {exc}")
                    time.sleep(_backoff(config, attempts))
                    continue
                state.settle(
                    unit, attempts, elapsed, None,
                    {"type": type(exc).__name__, "message": str(exc)},
                )
                break
            state.settle(unit, attempts, time.perf_counter() - t0, outcome, None)
            break


def _launch(ctx, unit: WorkUnit, attempts: int,
            timeout_s: float | None) -> _Inflight:
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker_main, args=(child_conn, unit.as_doc()), daemon=True
    )
    proc.start()
    child_conn.close()
    now = time.monotonic()
    deadline = now + timeout_s if timeout_s is not None else None
    return _Inflight(unit, attempts, proc, parent_conn, now, deadline)


def _stop_worker(flight: _Inflight) -> None:
    """Terminate (then kill) an in-flight worker and reap it."""
    proc = flight.proc
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)
    flight.conn.close()


def _run_parallel(todo: Sequence[WorkUnit], config: RunnerConfig,
                  state: _RunState) -> None:
    """Process-pool execution with per-unit deadline and crash isolation."""
    ctx = config.resolve_context()
    n_workers = config.resolve_workers()
    ready: deque[_Pending] = deque(_Pending(u) for u in todo)
    delayed: list[_Pending] = []  # kept sorted by not_before
    inflight: dict[Any, _Inflight] = {}  # keyed by connection

    def fail_attempt(flight: _Inflight, reason_type: str, message: str) -> None:
        elapsed = time.monotonic() - flight.started
        if flight.attempts <= config.retries:
            state.note_retry(
                flight.unit, flight.attempts, f"{reason_type}: {message}"
            )
            pend = _Pending(
                flight.unit,
                attempts=flight.attempts,
                not_before=time.monotonic() + _backoff(config, flight.attempts),
            )
            delayed.append(pend)
            delayed.sort(key=lambda p: p.not_before)
        else:
            state.settle(
                flight.unit, flight.attempts, elapsed, None,
                {"type": reason_type, "message": message},
            )

    try:
        while ready or delayed or inflight:
            now = time.monotonic()
            while delayed and delayed[0].not_before <= now:
                ready.append(delayed.pop(0))
            while ready and len(inflight) < n_workers:
                pend = ready.popleft()
                flight = _launch(ctx, pend.unit, pend.attempts + 1,
                                 config.timeout_s)
                inflight[flight.conn] = flight

            if not inflight:
                if delayed:
                    time.sleep(
                        min(max(delayed[0].not_before - time.monotonic(), 0.0),
                            0.5)
                    )
                continue

            wait_timeout = 0.05
            if config.timeout_s is not None:
                nearest = min(
                    f.deadline for f in inflight.values() if f.deadline is not None
                )
                wait_timeout = min(wait_timeout, max(nearest - now, 0.0))
            ready_conns = mp.connection.wait(list(inflight), timeout=wait_timeout)

            for conn in ready_conns:
                flight = inflight.pop(conn)
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    # The worker died without answering (SIGKILL, segfault).
                    flight.proc.join(timeout=2.0)
                    code = flight.proc.exitcode
                    fail_attempt(
                        flight, "WorkerCrashed",
                        f"worker exited with code {code} before reporting",
                    )
                    flight.conn.close()
                    continue
                flight.proc.join(timeout=5.0)
                flight.conn.close()
                if tag == "done":
                    state.settle(
                        flight.unit, flight.attempts,
                        time.monotonic() - flight.started, payload, None,
                    )
                else:  # the unit raised inside the worker
                    fail_attempt(flight, payload["type"], payload["message"])

            if config.timeout_s is not None:
                now = time.monotonic()
                for conn, flight in list(inflight.items()):
                    if flight.deadline is not None and now > flight.deadline:
                        del inflight[conn]
                        _stop_worker(flight)
                        fail_attempt(
                            flight, "TimeoutError",
                            f"unit exceeded {config.timeout_s:g}s deadline",
                        )
    finally:
        for flight in inflight.values():
            _stop_worker(flight)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def run(
    units: Sequence[WorkUnit],
    config: RunnerConfig | None = None,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: ProgressFn | None = None,
    manifest_extra: Mapping[str, Any] | None = None,
) -> RunReport:
    """Drive a unit set to completion; never aborts on per-unit failure.

    Parameters
    ----------
    units:
        The work units (duplicates by content hash are executed once).
    config:
        Execution policy; default is sequential with one retry.
    run_dir:
        Directory for the manifest and journal.  ``None`` runs fully
        in memory (no persistence, no resume).
    resume:
        Continue a previous run in ``run_dir``: validate its manifest
        against this unit set and skip every journaled unit.
    progress:
        Callback invoked per settled unit (and per retry); see
        :func:`print_progress` for the event shape.
    manifest_extra:
        Extra keys merged into the manifest (experiment name, grid spec).
    """
    config = config or RunnerConfig()
    t_start = time.perf_counter()

    # De-duplicate by content hash, preserving order.
    seen: set[str] = set()
    unique: list[WorkUnit] = []
    for unit in units:
        uid = unit.unit_id
        if uid not in seen:
            seen.add(uid)
            unique.append(unit)

    journal = None
    previous: dict[str, dict[str, Any]] = {}
    if run_dir is not None:
        run_dir = Path(run_dir)
        journal_path = run_dir / JOURNAL_NAME
        uhash = units_hash(unique)
        if resume:
            manifest = read_manifest(run_dir)
            if manifest.get("units_hash") != uhash:
                raise RunnerError(
                    f"cannot resume {run_dir}: manifest covers a different "
                    f"unit set (manifest {manifest.get('units_hash')!r} != "
                    f"requested {uhash!r})"
                )
            previous = Journal.load(journal_path)
        else:
            if (run_dir / MANIFEST_NAME).exists():
                raise RunnerError(
                    f"{run_dir} already holds a run; pass resume=True "
                    "(CLI: --resume) to continue it"
                )
            write_manifest(
                run_dir,
                {
                    "created_at": datetime.now(timezone.utc).isoformat(),
                    "git_sha": git_sha(),
                    "python": sys.version.split()[0],
                    "n_units": len(unique),
                    "units_hash": uhash,
                    "workers": (
                        config.resolve_workers() if config.parallel else 1
                    ),
                    "config": config.as_dict(),
                    "unit_ids": [u.unit_id for u in unique],
                    **dict(manifest_extra or {}),
                },
            )
        journal = Journal(journal_path)

    report = RunReport(
        run_dir=str(run_dir) if run_dir is not None else None,
        total=len(unique),
    )
    state = _RunState(journal, report, progress, total=len(unique))

    todo: list[WorkUnit] = []
    for unit in unique:
        row = previous.get(unit.unit_id)
        settled = (
            row is not None
            and row.get("status") in TERMINAL_STATUSES
            and not (row.get("status") == "error" and config.retry_failed)
        )
        if settled:
            report.records[unit.unit_id] = row
            report.skipped += 1
        else:
            todo.append(unit)

    try:
        with span(
            "runner/run",
            units=len(unique),
            todo=len(todo),
            resumed=report.skipped,
            parallel=config.parallel,
        ):
            if config.parallel and todo:
                _run_parallel(todo, config, state)
            elif todo:
                _run_sequential(todo, config, state)
    finally:
        if journal is not None:
            journal.close()

    stats = EngineStats()
    for unit in unique:
        row = report.records.get(unit.unit_id)
        if row is None:
            continue
        status = row.get("status")
        if status == "ok":
            report.ok += 1
        elif status == "infeasible":
            report.infeasible += 1
        elif status == "error":
            report.errors += 1
        if row.get("stats"):
            stats = stats.combine(EngineStats.from_dict(row["stats"]))
    report.stats = stats
    report.wall_s = time.perf_counter() - t_start
    return report
