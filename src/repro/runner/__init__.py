"""Fault-tolerant sharded experiment runner.

Experiment grids decompose into content-addressed
:class:`~repro.runner.units.WorkUnit` s (one ``(cell, algo)`` pair each),
which :func:`~repro.runner.runner.run` drives to completion on a process
pool with per-unit timeout, bounded retry with backoff, and graceful
degradation — a failing unit becomes a structured error row, never an
aborted sweep.  Finished units are journaled to disk as they settle, so
an interrupted run resumes where it stopped (``repro run <experiment>
--resume <run_dir>``).

See ``docs/API.md`` ("Experiment runner") for the manifest/journal
format and the CLI knobs.
"""

from repro.runner.journal import Journal, git_sha, read_manifest, write_manifest
from repro.runner.runner import RunnerConfig, RunReport, print_progress, run
from repro.runner.units import (
    EXECUTORS,
    WorkUnit,
    comparison_units,
    execute_unit,
    units_hash,
)

__all__ = [
    "Journal",
    "RunReport",
    "RunnerConfig",
    "WorkUnit",
    "EXECUTORS",
    "comparison_units",
    "execute_unit",
    "git_sha",
    "print_progress",
    "read_manifest",
    "run",
    "units_hash",
    "write_manifest",
]
