"""Work units: the sharding granularity of the experiment runner.

A :class:`WorkUnit` is one independent piece of an experiment — for the
comparison grids, one ``(cell, algo)`` pair: *run this one solver on this
one platform configuration*.  Units carry only plain JSON data (the
platform spec and solver parameters), never live objects, so they are
cheap to ship to worker processes and their identity can be defined by
content: :attr:`WorkUnit.unit_id` is a stable hash of the payload, which
is what makes journals resumable across processes and machines.

:func:`execute_unit` is the single worker entry point — it dispatches on
``unit.kind`` through :data:`EXECUTORS`.  Besides the real
``"solve_cell"`` kind there is a ``"probe"`` kind whose only purpose is
fault injection in tests (raise, sleep, die); keeping it here means the
runner's failure handling is exercised through exactly the same code
path as production units.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = [
    "WorkUnit",
    "EXECUTORS",
    "execute_unit",
    "solve_cell_outcome",
    "solve_cell_platform",
    "realtime_cell_outcome",
    "comparison_units",
    "canonical_json",
    "units_hash",
]


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WorkUnit:
    """One independent, retryable piece of an experiment.

    Attributes
    ----------
    kind:
        Executor name (``"solve_cell"``, ``"probe"``); see
        :data:`EXECUTORS`.
    payload:
        JSON-able spec of the work.  The unit's identity is the content
        hash of ``(kind, payload)``, so two units with the same payload
        are the same unit — a resumed run recognizes finished work by
        this id.
    label:
        Human-readable tag for progress lines and journal rows; not part
        of the identity.
    """

    kind: str
    payload: Mapping[str, Any]
    label: str = ""

    @property
    def unit_id(self) -> str:
        """Stable content hash identifying this unit (16 hex chars)."""
        doc = canonical_json({"kind": self.kind, "payload": dict(self.payload)})
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def as_doc(self) -> dict[str, Any]:
        """Pickle/JSON-friendly form shipped to worker processes."""
        return {"kind": self.kind, "payload": dict(self.payload), "label": self.label}


def units_hash(units: Sequence[WorkUnit]) -> str:
    """Order-insensitive hash of a unit set (stored in the run manifest)."""
    ids = sorted(u.unit_id for u in units)
    return hashlib.sha256(",".join(ids).encode("ascii")).hexdigest()[:16]


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------


def _platform_spec_doc(payload: Mapping[str, Any]):
    """The platform description a solve_cell payload resolves through.

    New-style payloads carry ``payload["platform"]`` — a
    :class:`~repro.platforms.PlatformSpec` document or preset name.
    Legacy payloads carry flat ``n_cores``/``n_levels``/``t_max_c``/
    ``tau`` keys; those stay supported verbatim because unit ids hash
    the payload, and changing the shape would orphan every journaled
    comparison run.
    """
    if "platform" in payload:
        return payload["platform"]
    return {
        "n_cores": int(payload["n_cores"]),
        "n_levels": int(payload["n_levels"]),
        "t_max_c": float(payload["t_max_c"]),
        "tau": float(payload.get("tau", 5e-6)),
    }


def solve_cell_platform(payload: Mapping[str, Any]):
    """Build the :class:`~repro.platform.Platform` a solve_cell unit runs on."""
    from repro.platforms import PlatformSpec

    return PlatformSpec.coerce(_platform_spec_doc(payload)).build()


def solve_cell_outcome(
    payload: Mapping[str, Any],
    engine=None,
    mark: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one registered solver on one platform configuration.

    Returns an ``{"status", "result", "stats", "certificate", "spans"}``
    document; an :class:`~repro.errors.InfeasibleError` is a normal
    outcome (``status="infeasible"``), not a failure.  Solvers run
    through :func:`~repro.algorithms.registry.guarded_solve`: a crash or
    a rejected safety certificate degrades through the fallback chain
    instead of losing the cell, and every successful row carries the
    certificate of the schedule it actually emitted.

    Spans are always captured in **isolation**: the unit's span tree goes
    only into the outcome document (and from there into the journal row),
    never to a live trace sink — so per-unit spans are written exactly
    once whether the unit ran in-process or in a worker, and a resumed
    run inherits them from the journal.  The root ``unit/solve_cell``
    span's attributes are set from the *same* stats dict stored in the
    row, which is what makes a trace file reconcile with the journal.

    ``engine`` / ``mark`` let grid-batched dispatch
    (:func:`repro.experiments.comparison.grid_batch_executor`) pass in a
    pre-hinted engine plus the checkpoint taken *before* its shared
    precomputation, so the precompute work is attributed to the unit that
    consumes it.
    """
    from repro.algorithms.registry import get_solver, guarded_solve
    from repro.errors import InfeasibleError
    from repro.obs import capture_spans, span
    from repro.schedule.serialization import result_to_dict

    if engine is None:
        # Session-per-worker: identical cells in one worker share an
        # engine (and its steady-state/eigen caches) instead of paying
        # the platform build per unit.
        from repro.service.session import default_session

        engine = default_session().engine_for(_platform_spec_doc(payload))
    spec = get_solver(str(payload["algo"]))
    params = dict(payload.get("params") or {})
    # With a caller-provided mark the stats row must span from *that*
    # checkpoint — it covers shared precompute (eigen resolution, grid
    # m scans) done for this unit before the solver body ran.
    span_from_mark = mark is not None
    if mark is None:
        mark = engine.checkpoint()
    outcome: dict[str, Any]
    with capture_spans(isolate=True) as captured:
        with span(
            "unit/solve_cell",
            algo=spec.name,
            n_cores=int(payload.get("n_cores", engine.platform.n_cores)),
            n_levels=int(
                payload.get("n_levels", len(engine.platform.ladder.levels))
            ),
            t_max_c=float(payload.get("t_max_c", engine.platform.t_max_c)),
        ) as root:
            try:
                result = guarded_solve(spec, engine, **params)
            except InfeasibleError as exc:
                stats = engine.stats_since(mark).as_dict()
                outcome = {
                    "status": "infeasible",
                    "result": None,
                    "stats": stats,
                    "detail": str(exc),
                }
            else:
                if span_from_mark or result.stats is None:
                    st = engine.stats_since(mark)
                else:
                    st = result.stats
                stats = st.as_dict()
                cert = result.certificate
                outcome = {
                    "status": "ok",
                    "result": result_to_dict(result),
                    "stats": stats,
                    "certificate": (
                        cert.as_dict() if cert is not None else None
                    ),
                }
                fallback = result.details.get("fallback")
                if fallback is not None:
                    root.set_attrs(fallback_hop=str(fallback.get("hop")))
            root.set_attrs(
                status=outcome["status"],
                ss_solves=stats["steady_state_solves"],
                ss_cache_hits=stats["steady_state_cache_hits"],
                ss_batch_rows=stats["steady_state_batch_rows"],
                expm_applications=stats["expm_applications"],
                peak_evals=stats["peak_evals"],
            )
    outcome["spans"] = [s.as_dict() for s in captured]
    return outcome


def _exec_solve_cell(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker entry point for ``solve_cell`` units (fresh platform)."""
    return solve_cell_outcome(payload)


def realtime_cell_outcome(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Plan and fault-inject one real-time frame-scheduling scenario.

    The payload is *fully sampled*: it carries the concrete workload
    (every task's cycles and criticality) and the complete
    :class:`~repro.safety.faults.FaultSpec` document (every knob, every
    pre-drawn core failure) — nothing is re-drawn at execution time, so
    a failed unit replays bit-exactly from its journal row on
    ``--resume``.

    Keys: ``platform`` (spec doc or preset name), ``policy``
    (``margin``/``blind``), ``k``, ``workload``
    (:meth:`~repro.realtime.frames.FrameWorkload.as_dict` doc),
    ``faults`` (:meth:`~repro.safety.faults.FaultSpec.as_dict` doc or
    ``None``), ``n_frames``, ``steps_per_frame``.

    An :class:`~repro.errors.InfeasibleError` from admission is a normal
    outcome (``status="infeasible"``): the scenario's schedulability is
    *false*, not a runner failure.
    """
    from repro.errors import InfeasibleError
    from repro.obs import capture_spans, span
    from repro.realtime import FrameWorkload, plan_frames, simulate_recovery
    from repro.service.session import default_session

    engine = default_session().engine_for(_platform_spec_doc(payload))
    workload = FrameWorkload.from_dict(payload["workload"])
    policy = str(payload["policy"])
    k = int(payload["k"])
    mark = engine.checkpoint()
    outcome: dict[str, Any]
    with capture_spans(isolate=True) as captured:
        with span(
            "unit/realtime_cell", policy=policy, k=k,
            n_tasks=workload.n_tasks,
        ) as root:
            try:
                placement = plan_frames(engine, workload, k=k, policy=policy)
            except InfeasibleError as exc:
                outcome = {
                    "status": "infeasible",
                    "result": None,
                    "stats": engine.stats_since(mark).as_dict(),
                    "detail": str(exc),
                }
            else:
                report = simulate_recovery(
                    engine,
                    placement,
                    payload.get("faults"),
                    n_frames=int(payload.get("n_frames", 8)),
                    steps_per_frame=int(payload.get("steps_per_frame", 8)),
                )
                outcome = {
                    "status": "ok",
                    "result": {
                        "placement": placement.as_dict(),
                        "recovery": report.as_dict(),
                        "schedulable": bool(
                            not placement.shed and report.safe
                        ),
                    },
                    "stats": engine.stats_since(mark).as_dict(),
                }
            root.set_attrs(status=outcome["status"])
    outcome["spans"] = [s.as_dict() for s in captured]
    return outcome


def _exec_realtime_cell(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Worker entry point for ``realtime_cell`` units."""
    return realtime_cell_outcome(payload)


def _exec_probe(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Fault-injection unit for runner tests.

    ``behavior`` selects the failure mode:

    * ``"ok"`` — succeed, echoing ``payload["value"]``;
    * ``"sleep"`` — sleep ``payload["seconds"]`` then succeed (drive the
      per-unit timeout);
    * ``"raise"`` — raise ``RuntimeError`` (a unit that crashes cleanly);
    * ``"kill"`` — SIGKILL the worker process (a unit that dies hard);
    * ``"flaky"`` — fail until ``payload["marker"]`` exists (created on
      the first attempt), then succeed — exercises bounded retry.
    """
    behavior = str(payload.get("behavior", "ok"))
    if behavior == "sleep":
        time.sleep(float(payload["seconds"]))
    elif behavior == "raise":
        raise RuntimeError(str(payload.get("message", "injected failure")))
    elif behavior == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif behavior == "flaky":
        marker = str(payload["marker"])
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("attempted\n")
            raise RuntimeError("flaky unit: first attempt fails")
    elif behavior != "ok":
        raise ValueError(f"unknown probe behavior {behavior!r}")
    return {
        "status": "ok",
        "result": {"value": payload.get("value")},
        "stats": None,
    }


#: Executor registry: ``unit.kind`` -> callable(payload) -> outcome doc.
EXECUTORS: dict[str, Any] = {
    "solve_cell": _exec_solve_cell,
    "realtime_cell": _exec_realtime_cell,
    "probe": _exec_probe,
}


def execute_unit(unit_doc: Mapping[str, Any]) -> dict[str, Any]:
    """Run one unit document (the worker-process entry point)."""
    kind = unit_doc["kind"]
    try:
        executor = EXECUTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown work-unit kind {kind!r}; known: {sorted(EXECUTORS)}"
        ) from None
    return executor(unit_doc["payload"])


# ----------------------------------------------------------------------
# unit builders
# ----------------------------------------------------------------------


def comparison_units(
    core_counts: Sequence[int],
    level_counts: Sequence[int],
    t_max_values: Sequence[float],
    approaches: Sequence[str],
    common_params: Mapping[str, Any],
    tau: float = 5e-6,
) -> list[WorkUnit]:
    """Decompose a comparison grid into one unit per ``(cell, algo)`` pair.

    ``common_params`` is the shared solver parameter pool (period, m_cap,
    ...); it is filtered per solver through the registry's declared
    ``params`` whitelist *here*, so a unit's content hash only covers
    parameters the solver actually consumes.
    """
    from repro.algorithms.registry import get_solver

    units: list[WorkUnit] = []
    for n in core_counts:
        for lv in level_counts:
            for tm in t_max_values:
                for name in approaches:
                    try:
                        spec = get_solver(name)
                    except KeyError as exc:
                        raise ValueError(f"unknown approach {name!r}") from exc
                    params = {
                        k: v for k, v in common_params.items() if k in spec.params
                    }
                    payload = {
                        "n_cores": int(n),
                        "n_levels": int(lv),
                        "t_max_c": float(tm),
                        "tau": float(tau),
                        "algo": spec.name,
                        "params": params,
                    }
                    units.append(
                        WorkUnit(
                            kind="solve_cell",
                            payload=payload,
                            label=(
                                f"{spec.name}@cores={n},levels={lv},"
                                f"tmax={float(tm):g}"
                            ),
                        )
                    )
    return units
