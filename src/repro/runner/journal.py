"""On-disk run state: the JSONL unit journal and the run manifest.

A run directory holds two files:

``manifest.json``
    Written once when the run starts: experiment metadata, the runner
    configuration, the worker count, a best-effort git SHA, and the
    content hash of the unit set.  ``--resume`` refuses to continue a
    directory whose manifest does not match the units it is asked to run.

``journal.jsonl``
    One JSON object per *finished* unit (success, infeasible, or a
    structured error row), appended and flushed as soon as the unit
    settles.  Solve rows additionally carry the unit's
    :class:`~repro.safety.certificate.SafetyCertificate` under a
    ``"certificate"`` key (the independent peak re-derivation the
    guarded registry path attaches), which ``repro stats`` tallies.  A
    crash or Ctrl-C therefore loses at most the units that were in
    flight; everything journaled is skipped on resume.  A half-written
    trailing line (the process died mid-append) is tolerated and
    ignored by :meth:`Journal.load`.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Any

from repro.errors import RunnerError

__all__ = [
    "Journal",
    "MANIFEST_NAME",
    "JOURNAL_NAME",
    "write_manifest",
    "read_manifest",
    "git_sha",
]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
MANIFEST_FORMAT = "repro.run-manifest"
MANIFEST_VERSION = 1


def git_sha(cwd: str | os.PathLike | None = None) -> str | None:
    """Best-effort git commit hash of the working tree (None outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def write_manifest(run_dir: Path, manifest: dict[str, Any]) -> None:
    """Atomically write the run manifest."""
    run_dir.mkdir(parents=True, exist_ok=True)
    doc = {"format": MANIFEST_FORMAT, "version": MANIFEST_VERSION, **manifest}
    tmp = run_dir / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, run_dir / MANIFEST_NAME)


def read_manifest(run_dir: Path) -> dict[str, Any]:
    """Load and validate the manifest of an existing run directory."""
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        raise RunnerError(f"no run manifest at {path}")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise RunnerError(f"corrupt run manifest at {path}: {exc}") from exc
    if doc.get("format") != MANIFEST_FORMAT:
        raise RunnerError(f"{path} is not a repro run manifest")
    if doc.get("version") != MANIFEST_VERSION:
        raise RunnerError(
            f"unsupported run-manifest version {doc.get('version')!r} at {path}"
        )
    return doc


class Journal:
    """Append-only JSONL journal of finished work units.

    The journal is the source of truth for resume: a unit id present in
    it (with any terminal status) is considered settled.  Rows are
    flushed and fsync'd per append so a hard kill of the parent loses at
    most one partially-written trailing line.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, row: dict[str, Any]) -> None:
        """Durably append one finished-unit row."""
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def load(path: Path) -> dict[str, dict[str, Any]]:
        """Read a journal into ``{unit_id: row}`` (last write wins).

        Malformed lines — typically one truncated trailing line after a
        crash — are skipped rather than fatal.
        """
        path = Path(path)
        rows: dict[str, dict[str, Any]] = {}
        if not path.exists():
            return rows
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed process
                unit_id = row.get("unit_id")
                if isinstance(unit_id, str):
                    rows[unit_id] = row
        return rows
