"""Injectable fault models for closed-loop and open-loop hardening runs.

The reactive-DTM comparison (and the co-simulation engine) assume a
perfect world: noiseless sensors that never miss a read, DVFS actuators
that always obey, a constant ambient.  Real chips get none of that.
:class:`FaultSpec` describes a perturbation scenario — sensor noise and
dropout, a stuck DVFS mode, ambient drift — that
:func:`repro.algorithms.reactive.reactive_throttling` injects into its
sensing/actuation loop and :func:`repro.sim.engine.cosimulate` applies
to its power timeline, quantifying how much margin a certified schedule
retains when the environment misbehaves.

The punchline the ``faults`` experiment demonstrates: an *offline*
certificate (AO's) is immune to sensor faults — the schedule never reads
a sensor — while the reactive governor's safety degrades with every
perturbation knob.

Layering: no imports from :mod:`repro.algorithms` (reactive imports us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule

__all__ = ["FaultSpec", "perturbed_peak", "perturbed_peak_batch", "stuck_schedule"]


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection scenario.

    Attributes
    ----------
    sensor_noise_sigma:
        Std-dev (K) of zero-mean Gaussian noise added to every sensor
        reading.
    sensor_dropout_prob:
        Per-read, per-core probability that the sensor returns its
        *previous* reading instead of a fresh one (a stale sample).
    stuck_core:
        Index of a core whose DVFS actuator is stuck (``None`` = none).
    stuck_level:
        Ladder level index the stuck core is pinned at (``-1`` = the
        highest mode — the dangerous failure).
    ambient_drift_k:
        Ambient temperature rise (K) ramped in linearly over the run
        horizon — the schedule's effective threshold shrinks by this
        much by the end.
    seed:
        RNG seed; faults are deterministic given the spec.
    """

    sensor_noise_sigma: float = 0.0
    sensor_dropout_prob: float = 0.0
    stuck_core: int | None = None
    stuck_level: int = -1
    ambient_drift_k: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sensor_noise_sigma < 0:
            raise ConfigurationError(
                f"sensor_noise_sigma must be >= 0, got {self.sensor_noise_sigma}"
            )
        if not 0.0 <= self.sensor_dropout_prob <= 1.0:
            raise ConfigurationError(
                "sensor_dropout_prob must be in [0, 1], "
                f"got {self.sensor_dropout_prob}"
            )

    @property
    def any_sensor_fault(self) -> bool:
        """Whether any sensing-path fault is active."""
        return self.sensor_noise_sigma > 0 or self.sensor_dropout_prob > 0

    @property
    def any_active(self) -> bool:
        """Whether the spec perturbs anything at all."""
        return (
            self.any_sensor_fault
            or self.stuck_core is not None
            or self.ambient_drift_k != 0.0
        )

    def rng(self) -> np.random.Generator:
        """The deterministic generator driving this scenario."""
        return np.random.default_rng(self.seed)

    def perturb_reading(
        self,
        reading: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """What the governor *sees* given the true core temperatures.

        Dropout first (a stale sample carries no fresh noise), then
        Gaussian noise on the reads that did land.
        """
        seen = np.asarray(reading, dtype=float).copy()
        if self.sensor_dropout_prob > 0:
            stale = rng.random(seen.shape[0]) < self.sensor_dropout_prob
            seen[stale] = np.asarray(previous, dtype=float)[stale]
            fresh = ~stale
        else:
            fresh = np.ones(seen.shape[0], dtype=bool)
        if self.sensor_noise_sigma > 0:
            seen[fresh] += rng.normal(
                0.0, self.sensor_noise_sigma, int(fresh.sum())
            )
        return seen

    def drift_at(self, fraction: float) -> float:
        """Ambient rise (K) at ``fraction`` of the run horizon."""
        return self.ambient_drift_k * min(max(fraction, 0.0), 1.0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (journal rows, experiment records)."""
        return {
            "sensor_noise_sigma": self.sensor_noise_sigma,
            "sensor_dropout_prob": self.sensor_dropout_prob,
            "stuck_core": self.stuck_core,
            "stuck_level": self.stuck_level,
            "ambient_drift_k": self.ambient_drift_k,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`as_dict` output (extras rejected)."""
        known = {
            "sensor_noise_sigma", "sensor_dropout_prob", "stuck_core",
            "stuck_level", "ambient_drift_k", "seed",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        stuck = kwargs.get("stuck_core")
        if stuck is not None:
            kwargs["stuck_core"] = int(stuck)
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: "FaultSpec | Mapping[str, Any] | None") -> "FaultSpec | None":
        """Accept a spec, a plain mapping, or ``None`` (CLI/JSON inputs)."""
        if value is None or isinstance(value, FaultSpec):
            return value
        return cls.from_dict(value)


def stuck_schedule(
    schedule: PeriodicSchedule, ladder, faults: FaultSpec
) -> PeriodicSchedule:
    """The schedule as executed with the stuck DVFS actuator applied.

    The stuck core runs ``ladder.levels[stuck_level]`` in every interval
    regardless of what the schedule asked for; other cores are untouched.
    """
    if faults.stuck_core is None:
        return schedule
    core = int(faults.stuck_core)
    if not 0 <= core < schedule.n_cores:
        raise ConfigurationError(
            f"stuck_core {core} out of range for {schedule.n_cores} cores"
        )
    stuck_v = float(ladder.levels[faults.stuck_level])
    intervals = tuple(
        StateInterval(
            length=iv.length,
            voltages=tuple(
                stuck_v if i == core else v for i, v in enumerate(iv.voltages)
            ),
        )
        for iv in schedule.intervals
    )
    return PeriodicSchedule(intervals)


def perturbed_peak(
    engine,
    schedule: PeriodicSchedule,
    faults: FaultSpec,
    grid_per_interval: int = 64,
) -> float:
    """Stable peak of ``schedule`` under the open-loop faults.

    Sensor faults do not apply — an offline schedule never reads a
    sensor (that immunity is the point).  A stuck DVFS mode rewrites the
    executed schedule; ambient drift raises the whole trace by its full
    amount (worst case over the horizon).
    """
    engine = ThermalEngine.ensure(engine)
    executed = stuck_schedule(schedule, engine.ladder, faults)
    peak = engine.general_peak(
        executed, grid_per_interval=grid_per_interval, stepup_fast_path=False
    ).value
    return float(peak + faults.ambient_drift_k)


def perturbed_peak_batch(
    engine,
    schedule: PeriodicSchedule,
    fault_specs,
    grid_per_interval: int = 64,
) -> list[float]:
    """:func:`perturbed_peak` for a whole scenario sweep in one grid call.

    Sensor-only scenarios leave the executed schedule untouched
    (:func:`stuck_schedule` returns the input object), so the sweep
    collapses to one grid row per *distinct* executed schedule — the
    typical fault table prices two schedules, not six — and all rows go
    through :func:`repro.thermal.grid.peak_temperature_grid` in a single
    tensorized evaluation.  Returns one peak per spec, in order, each
    offset by its own ambient drift.
    """
    from repro.thermal.grid import peak_temperature_grid

    engine = ThermalEngine.ensure(engine)
    specs = list(fault_specs)
    rows: list[tuple[Any, PeriodicSchedule]] = []
    row_index: dict[int, int] = {}
    row_of: list[int] = []
    for spec in specs:
        executed = stuck_schedule(schedule, engine.ladder, spec)
        key = id(executed)
        if key not in row_index:
            row_index[key] = len(rows)
            rows.append((engine.model, executed))
        row_of.append(row_index[key])
    if not rows:
        return []
    results = peak_temperature_grid(
        rows, grid_per_interval=grid_per_interval, stepup_fast_path=False
    )
    return [
        float(results[row_of[i]].value + specs[i].ambient_drift_k)
        for i in range(len(specs))
    ]
