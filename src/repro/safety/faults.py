"""Injectable fault models for closed-loop and open-loop hardening runs.

The reactive-DTM comparison (and the co-simulation engine) assume a
perfect world: noiseless sensors that never miss a read, DVFS actuators
that always obey, a constant ambient.  Real chips get none of that.
:class:`FaultSpec` describes a perturbation scenario — sensor noise and
dropout, a stuck DVFS mode, ambient drift — that
:func:`repro.algorithms.reactive.reactive_throttling` injects into its
sensing/actuation loop and :func:`repro.sim.engine.cosimulate` applies
to its power timeline, quantifying how much margin a certified schedule
retains when the environment misbehaves.

The punchline the ``faults`` experiment demonstrates: an *offline*
certificate (AO's) is immune to sensor faults — the schedule never reads
a sensor — while the reactive governor's safety degrades with every
perturbation knob.

Beyond the sensing/actuation knobs, a spec can carry *structural*
faults:

* :class:`CoreFailure` — fail-stop core failures (permanent or
  transient), the fault model the ``repro.realtime`` frame scheduler
  tolerates by activating backup copies;
* inter-layer TSV conductance derating and per-layer ambient gradients
  for 3D-stacked platforms (``stack3d`` / 2-layer ``tech-*``), applied
  open-loop through :func:`stacked_fault_model` /
  :func:`stacked_perturbed_peak`.

Layering: no imports from :mod:`repro.algorithms` (reactive imports us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule

__all__ = [
    "CoreFailure",
    "FaultSpec",
    "layer_of_node",
    "perturbed_peak",
    "perturbed_peak_batch",
    "stacked_fault_model",
    "stacked_perturbed_peak",
    "stuck_schedule",
]

#: Core-failure kinds :class:`CoreFailure` accepts.
FAILURE_KINDS = ("permanent", "transient")


@dataclass(frozen=True)
class CoreFailure:
    """One fail-stop core failure.

    Attributes
    ----------
    core:
        Index of the failing core.
    at_fraction:
        When in the run horizon the core stops, as a fraction in
        ``[0, 1]`` (consumers that reason per frame — the realtime
        recovery simulator — snap this to their frame grid first).
    kind:
        ``"permanent"`` (the core never returns) or ``"transient"``
        (the core returns after ``duration_fraction`` of the horizon).
    duration_fraction:
        Outage length for transient failures, as a horizon fraction.
        Ignored for permanent failures.
    """

    core: int
    at_fraction: float = 0.0
    kind: str = "permanent"
    duration_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ConfigurationError(f"core must be >= 0, got {self.core}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ConfigurationError(
                f"at_fraction must be in [0, 1], got {self.at_fraction}"
            )
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )
        if self.duration_fraction < 0:
            raise ConfigurationError(
                f"duration_fraction must be >= 0, got {self.duration_fraction}"
            )

    def active_at(self, fraction: float) -> bool:
        """Whether the core is down at ``fraction`` of the horizon."""
        if fraction < self.at_fraction:
            return False
        if self.kind == "permanent":
            return True
        return fraction < self.at_fraction + self.duration_fraction

    def as_dict(self) -> dict[str, Any]:
        return {
            "core": int(self.core),
            "at_fraction": float(self.at_fraction),
            "kind": self.kind,
            "duration_fraction": float(self.duration_fraction),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CoreFailure":
        known = {"core", "at_fraction", "kind", "duration_fraction"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown core-failure fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["core"] = int(kwargs["core"])
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: "CoreFailure | Mapping[str, Any]") -> "CoreFailure":
        if isinstance(value, CoreFailure):
            return value
        return cls.from_dict(value)


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection scenario.

    Attributes
    ----------
    sensor_noise_sigma:
        Std-dev (K) of zero-mean Gaussian noise added to every sensor
        reading.
    sensor_dropout_prob:
        Per-read, per-core probability that the sensor returns its
        *previous* reading instead of a fresh one (a stale sample).
    stuck_core:
        Index of a core whose DVFS actuator is stuck (``None`` = none).
    stuck_level:
        Ladder level index the stuck core is pinned at (``-1`` = the
        highest mode — the dangerous failure).
    ambient_drift_k:
        Ambient temperature rise (K) ramped in linearly over the run
        horizon — the schedule's effective threshold shrinks by this
        much by the end.
    core_failures:
        Fail-stop :class:`CoreFailure` events (permanent or transient).
        A failed core is power-gated (speed 0) regardless of what any
        policy commands; the ``repro.realtime`` scheduler's backup
        copies are what turns these from deadline misses into recovery.
    tsv_derating:
        Fractional loss of inter-layer (TSV/bond) conductance on
        stacked platforms, in ``[0, 1)`` — electromigration and bond
        voiding make upper layers cool worse.  Applied by
        :func:`stacked_fault_model`; meaningless on single-layer chips.
    layer_ambient_gradient_k:
        Per-layer ambient rise (K per layer index) on stacked
        platforms: layer ``l`` sees ambient ``+ l * gradient``.
        Applied by :func:`stacked_perturbed_peak`.
    seed:
        RNG seed; faults are deterministic given the spec.
    """

    sensor_noise_sigma: float = 0.0
    sensor_dropout_prob: float = 0.0
    stuck_core: int | None = None
    stuck_level: int = -1
    ambient_drift_k: float = 0.0
    core_failures: tuple[CoreFailure, ...] = ()
    tsv_derating: float = 0.0
    layer_ambient_gradient_k: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sensor_noise_sigma < 0:
            raise ConfigurationError(
                f"sensor_noise_sigma must be >= 0, got {self.sensor_noise_sigma}"
            )
        if not 0.0 <= self.sensor_dropout_prob <= 1.0:
            raise ConfigurationError(
                "sensor_dropout_prob must be in [0, 1], "
                f"got {self.sensor_dropout_prob}"
            )
        if not 0.0 <= self.tsv_derating < 1.0:
            raise ConfigurationError(
                f"tsv_derating must be in [0, 1), got {self.tsv_derating}"
            )
        object.__setattr__(
            self,
            "core_failures",
            tuple(CoreFailure.coerce(f) for f in self.core_failures),
        )

    @property
    def any_sensor_fault(self) -> bool:
        """Whether any sensing-path fault is active."""
        return self.sensor_noise_sigma > 0 or self.sensor_dropout_prob > 0

    @property
    def any_structural_fault(self) -> bool:
        """Whether any core-failure or 3D-stack degradation is active."""
        return (
            bool(self.core_failures)
            or self.tsv_derating > 0
            or self.layer_ambient_gradient_k != 0.0
        )

    @property
    def any_active(self) -> bool:
        """Whether the spec perturbs anything at all."""
        return (
            self.any_sensor_fault
            or self.stuck_core is not None
            or self.ambient_drift_k != 0.0
            or self.any_structural_fault
        )

    def failed_cores_at(self, fraction: float) -> frozenset[int]:
        """Cores down at ``fraction`` of the run horizon."""
        return frozenset(
            f.core for f in self.core_failures if f.active_at(fraction)
        )

    @property
    def permanent_failures(self) -> tuple[CoreFailure, ...]:
        """The failures that never heal (the re-certification set)."""
        return tuple(f for f in self.core_failures if f.kind == "permanent")

    def rng(self) -> np.random.Generator:
        """The deterministic generator driving this scenario."""
        return np.random.default_rng(self.seed)

    def perturb_reading(
        self,
        reading: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """What the governor *sees* given the true core temperatures.

        Dropout first (a stale sample carries no fresh noise), then
        Gaussian noise on the reads that did land.
        """
        seen = np.asarray(reading, dtype=float).copy()
        if self.sensor_dropout_prob > 0:
            stale = rng.random(seen.shape[0]) < self.sensor_dropout_prob
            seen[stale] = np.asarray(previous, dtype=float)[stale]
            fresh = ~stale
        else:
            fresh = np.ones(seen.shape[0], dtype=bool)
        if self.sensor_noise_sigma > 0:
            seen[fresh] += rng.normal(
                0.0, self.sensor_noise_sigma, int(fresh.sum())
            )
        return seen

    def drift_at(self, fraction: float) -> float:
        """Ambient rise (K) at ``fraction`` of the run horizon."""
        return self.ambient_drift_k * min(max(fraction, 0.0), 1.0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump of the *complete* field set.

        Every field is emitted, defaults included, so a journaled spec
        is fully sampled — replaying a unit from its journal row never
        depends on what the defaults were when the row was written.
        """
        return {
            "sensor_noise_sigma": self.sensor_noise_sigma,
            "sensor_dropout_prob": self.sensor_dropout_prob,
            "stuck_core": self.stuck_core,
            "stuck_level": self.stuck_level,
            "ambient_drift_k": self.ambient_drift_k,
            "core_failures": [f.as_dict() for f in self.core_failures],
            "tsv_derating": self.tsv_derating,
            "layer_ambient_gradient_k": self.layer_ambient_gradient_k,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`as_dict` output (extras rejected)."""
        known = {
            "sensor_noise_sigma", "sensor_dropout_prob", "stuck_core",
            "stuck_level", "ambient_drift_k", "core_failures",
            "tsv_derating", "layer_ambient_gradient_k", "seed",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        stuck = kwargs.get("stuck_core")
        if stuck is not None:
            kwargs["stuck_core"] = int(stuck)
        failures = kwargs.get("core_failures")
        if failures:
            kwargs["core_failures"] = tuple(
                CoreFailure.coerce(f) for f in failures
            )
        elif failures is not None:
            kwargs["core_failures"] = ()
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: "FaultSpec | Mapping[str, Any] | None") -> "FaultSpec | None":
        """Accept a spec, a plain mapping, or ``None`` (CLI/JSON inputs)."""
        if value is None or isinstance(value, FaultSpec):
            return value
        return cls.from_dict(value)


def stuck_schedule(
    schedule: PeriodicSchedule, ladder, faults: FaultSpec
) -> PeriodicSchedule:
    """The schedule as executed with the stuck DVFS actuator applied.

    The stuck core runs ``ladder.levels[stuck_level]`` in every interval
    regardless of what the schedule asked for; other cores are untouched.
    """
    if faults.stuck_core is None:
        return schedule
    core = int(faults.stuck_core)
    if not 0 <= core < schedule.n_cores:
        raise ConfigurationError(
            f"stuck_core {core} out of range for {schedule.n_cores} cores"
        )
    stuck_v = float(ladder.levels[faults.stuck_level])
    intervals = tuple(
        StateInterval(
            length=iv.length,
            voltages=tuple(
                stuck_v if i == core else v for i, v in enumerate(iv.voltages)
            ),
        )
        for iv in schedule.intervals
    )
    return PeriodicSchedule(intervals)


def perturbed_peak(
    engine,
    schedule: PeriodicSchedule,
    faults: FaultSpec,
    grid_per_interval: int = 64,
) -> float:
    """Stable peak of ``schedule`` under the open-loop faults.

    Sensor faults do not apply — an offline schedule never reads a
    sensor (that immunity is the point).  A stuck DVFS mode rewrites the
    executed schedule; ambient drift raises the whole trace by its full
    amount (worst case over the horizon).
    """
    engine = ThermalEngine.ensure(engine)
    executed = stuck_schedule(schedule, engine.ladder, faults)
    peak = engine.general_peak(
        executed, grid_per_interval=grid_per_interval, stepup_fast_path=False
    ).value
    return float(peak + faults.ambient_drift_k)


def perturbed_peak_batch(
    engine,
    schedule: PeriodicSchedule,
    fault_specs,
    grid_per_interval: int = 64,
) -> list[float]:
    """:func:`perturbed_peak` for a whole scenario sweep in one grid call.

    Sensor-only scenarios leave the executed schedule untouched
    (:func:`stuck_schedule` returns the input object), so the sweep
    collapses to one grid row per *distinct* executed schedule — the
    typical fault table prices two schedules, not six — and all rows go
    through :func:`repro.thermal.grid.peak_temperature_grid` in a single
    tensorized evaluation.  Returns one peak per spec, in order, each
    offset by its own ambient drift.
    """
    from repro.thermal.grid import peak_temperature_grid

    engine = ThermalEngine.ensure(engine)
    specs = list(fault_specs)
    rows: list[tuple[Any, PeriodicSchedule]] = []
    row_index: dict[int, int] = {}
    row_of: list[int] = []
    for spec in specs:
        executed = stuck_schedule(schedule, engine.ladder, spec)
        key = id(executed)
        if key not in row_index:
            row_index[key] = len(rows)
            rows.append((engine.model, executed))
        row_of.append(row_index[key])
    if not rows:
        return []
    results = peak_temperature_grid(
        rows, grid_per_interval=grid_per_interval, stepup_fast_path=False
    )
    return [
        float(results[row_of[i]].value + specs[i].ambient_drift_k)
        for i in range(len(specs))
    ]


# ----------------------------------------------------------------------
# 3D-stack structural faults
# ----------------------------------------------------------------------


def layer_of_node(node: int, n_nodes: int, n_layers: int) -> int:
    """Layer index of a stacked-network node.

    Stacked networks (:func:`repro.thermal.stack3d.build_3d_network`)
    number nodes layer-major: node ``layer * per_layer + i`` with
    ``per_layer = n_nodes / n_layers`` and layer 0 sink-adjacent.
    """
    if n_layers < 1 or n_nodes % n_layers:
        raise ConfigurationError(
            f"{n_nodes} nodes do not split into {n_layers} equal layers"
        )
    return int(node) // (n_nodes // n_layers)


def stacked_fault_model(model, faults: FaultSpec, n_layers: int):
    """``model`` with the spec's TSV conductance derating applied.

    Each inter-layer coupling (the off-diagonal entries between aligned
    cores of adjacent layers) is scaled by ``1 - tsv_derating``, with
    the diagonal adjusted to keep the network grounded — the derated
    matrix stays symmetric positive definite for any derating < 1.
    Returns ``model`` unchanged when the knob is off or the platform is
    single-layer.
    """
    from repro.thermal.model import ThermalModel
    from repro.thermal.rc import RCNetwork

    if faults.tsv_derating <= 0 or n_layers < 2:
        return model
    network = model.network
    n = network.conductance.shape[0]
    if n % n_layers:
        raise ConfigurationError(
            f"{n}-node network does not split into {n_layers} equal layers"
        )
    per_layer = n // n_layers
    g = network.conductance.copy()
    keep = 1.0 - faults.tsv_derating
    for layer in range(n_layers - 1):
        for i in range(per_layer):
            a = layer * per_layer + i
            b = (layer + 1) * per_layer + i
            g_inter = -g[a, b]
            if g_inter <= 0:
                continue  # cores not vertically coupled
            lost = (1.0 - keep) * g_inter
            g[a, b] += lost
            g[b, a] += lost
            g[a, a] -= lost
            g[b, b] -= lost
    derated = RCNetwork(
        floorplan=network.floorplan,
        conductance=g,
        capacitance=network.capacitance,
        core_nodes=network.core_nodes,
    )
    return ThermalModel(derated, model.power, t_ambient_c=model.t_ambient_c)


def stacked_perturbed_peak(
    engine,
    schedule: PeriodicSchedule,
    faults: FaultSpec,
    n_layers: int,
    grid_per_interval: int = 64,
) -> float:
    """:func:`perturbed_peak` for stacked platforms (3D knobs applied).

    The executed schedule (stuck DVFS folded in) is re-evaluated on the
    TSV-derated model; each core's stable maximum is then offset by its
    layer's ambient gradient before taking the chip-wide worst case, and
    the uniform ambient drift tops it off.  With both 3D knobs at zero
    this reduces exactly to :func:`perturbed_peak`.
    """
    from repro.thermal.peak import peak_temperature

    engine = ThermalEngine.ensure(engine)
    executed = stuck_schedule(schedule, engine.ladder, faults)
    model = stacked_fault_model(engine.model, faults, n_layers)
    if model is engine.model:
        peak = engine.general_peak(
            executed, grid_per_interval=grid_per_interval,
            stepup_fast_path=False,
        )
    else:
        peak = peak_temperature(
            model, executed, grid_per_interval=grid_per_interval
        )
    cores = np.asarray(model.network.core_nodes)
    offsets = np.array(
        [
            faults.layer_ambient_gradient_k
            * layer_of_node(int(node), model.n_nodes, n_layers)
            for node in cores
        ]
    )
    worst = float(np.max(np.asarray(peak.core_peaks) + offsets))
    return worst + faults.ambient_drift_k
