"""Graceful-degradation ladder for solver failures.

When a registered solver crashes (:class:`~repro.errors.SolverError`, a
linear-algebra failure on an ill-conditioned platform) or its result
fails certification, :func:`repro.algorithms.registry.guarded_solve`
walks this chain instead of losing the grid cell:

1. ``neighbor_rounding`` — the LNS baseline: round the continuous
   assignment down one ladder level per core.  Feasible by monotonicity
   whenever the continuous relaxation was.
2. ``best_constant`` — the monotonicity-pruned exact search over the
   constant-mode lattice (:func:`repro.algorithms.ao.best_constant_above`
   seeded with no incumbent), i.e. EXS's answer without EXS's failure
   modes.
3. ``lowest_mode`` — every core at the ladder's lowest level.  Builds
   unconditionally (the never-fails floor); its feasibility is reported
   honestly rather than assumed.

Each hop emits a plain :class:`~repro.algorithms.base.SchedulerResult`
named after the hop; the guard re-labels it with the requested solver's
name and records the hop in ``details["fallback"]``.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.algorithms.ao import best_constant_above
from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.lns import lns
from repro.algorithms.oscillation import plan_modes
from repro.engine import ThermalEngine
from repro.errors import SolverError
from repro.schedule.builders import constant_schedule

__all__ = ["FALLBACK_CHAIN", "run_fallback_hop"]


def _neighbor_rounding(engine: ThermalEngine, period: float) -> SchedulerResult:
    result = lns(engine, period=period)
    return SchedulerResult(
        name="neighbor_rounding",
        schedule=result.schedule,
        throughput=result.throughput,
        peak_theta=result.peak_theta,
        feasible=result.feasible,
        runtime_s=result.runtime_s,
        details=result.details,
        stats=result.stats,
    )


def _best_constant(engine: ThermalEngine, period: float) -> SchedulerResult:
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    cont = continuous_assignment(engine.platform)
    plan = plan_modes(engine.platform, cont.voltages)
    volts = best_constant_above(engine.platform, plan, incumbent_sum=-1.0)
    if volts is None:
        raise SolverError("no feasible constant assignment exists")
    peak = float(engine.steady_state_cores(volts).max())
    return SchedulerResult(
        name="best_constant",
        schedule=constant_schedule(volts, period=period),
        throughput=float(np.mean(volts)),
        peak_theta=peak,
        feasible=bool(peak <= engine.theta_max + 1e-9),
        runtime_s=time.perf_counter() - t0,
        details={"voltages": volts},
        stats=engine.stats_since(mark),
    )


def _lowest_mode(engine: ThermalEngine, period: float) -> SchedulerResult:
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    volts = np.full(engine.n_cores, engine.ladder.v_min)
    peak = float(engine.steady_state_cores(volts).max())
    return SchedulerResult(
        name="lowest_mode",
        schedule=constant_schedule(volts, period=period),
        throughput=float(np.mean(volts)),
        peak_theta=peak,
        feasible=bool(peak <= engine.theta_max + 1e-9),
        runtime_s=time.perf_counter() - t0,
        details={"voltages": volts},
        stats=engine.stats_since(mark),
    )


#: Degradation order: hop name -> builder.  Walked front to back; the
#: last hop never raises.
FALLBACK_CHAIN: dict[str, Callable[[ThermalEngine, float], SchedulerResult]] = {
    "neighbor_rounding": _neighbor_rounding,
    "best_constant": _best_constant,
    "lowest_mode": _lowest_mode,
}


def run_fallback_hop(
    hop: str, engine: ThermalEngine, period: float = 0.02
) -> SchedulerResult:
    """Build the degraded schedule for one named hop."""
    try:
        builder = FALLBACK_CHAIN[hop]
    except KeyError:
        raise SolverError(
            f"unknown fallback hop {hop!r}; chain: {list(FALLBACK_CHAIN)}"
        ) from None
    return builder(engine, period)
