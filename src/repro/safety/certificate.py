"""Independent safety certificates for scheduler results.

The paper's value proposition is a *guarantee*: AO/PCO schedules provably
never exceed ``T_max`` (Theorems 1-5).  Every solver in the registry,
however, prices its candidates through the same eigenbasis machinery it
optimizes with — a bug in the Theorem-1 fast path, an ill-conditioned
``G - E_beta``, or a solver simply lying about its peak would go
undetected.  :func:`certify` closes that loop: it re-derives the stable
peak of the emitted schedule via a *different* numerical route than the
solvers use (the MatEx-style analytic search with the step-up shortcut
disabled, optionally cross-checked against the LSODA ODE oracle), checks
the solver's structural claims (step-up shape, throughput accounting),
and returns a structured :class:`SafetyCertificate` that the registry
attaches to every :class:`~repro.algorithms.base.SchedulerResult`, the
runner journals, and ``repro certify`` gates builds on.

Layering: this module sits on the thermal/schedule/engine layers only —
it must not import :mod:`repro.algorithms` (the registry imports *us*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.engine import ThermalEngine
from repro.obs import METRICS
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up, throughput as schedule_throughput
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform import Platform

__all__ = ["SafetyCertificate", "certify", "claim_certificate"]

#: Default agreement tolerance between peak re-derivations (K).  The
#: registry's parity tests hold independent peaks to ~5e-4 K; 0.05 K
#: leaves two orders of magnitude of slack for grid-resolution noise
#: while still catching any genuinely wrong peak claim.
DEFAULT_TOLERANCE = 0.05

#: One-sided slack for the throughput invariant (claims may sit *below*
#: the raw schedule throughput — DVFS overhead only subtracts — but
#: never meaningfully above it).
THROUGHPUT_SLACK = 1e-6


@dataclass(frozen=True)
class SafetyCertificate:
    """Outcome of an independent re-verification of one schedule.

    Attributes
    ----------
    peak_theta:
        Certified stable peak (K above ambient): the worst case over
        every re-derivation route that ran.
    theta_max:
        The threshold the schedule was certified against.
    margin:
        ``theta_max - peak_theta`` — positive means certified headroom.
    method_peaks:
        Peak per verification route (``"claimed"``, ``"matex"``,
        ``"stepup"``, ``"reference"``, ``"trace"``).
    disagreement:
        Spread (max - min) across ``method_peaks`` — the cross-check.
    tolerance:
        Agreement tolerance the certificate was issued under.
    condition_number:
        2-norm condition number of the effective conductance matrix
        ``G - E_beta`` — a large value flags a platform whose thermal
        solves are numerically fragile.
    step_up:
        Whether the schedule satisfies Definition 1 (voltage
        non-decreasing per core), i.e. whether the Theorem-1 fast path
        was even applicable to it.
    independent:
        True when at least one re-derivation ran a route different from
        the solver's own claim (False for trace-only certificates of
        closed-loop baselines, whose "schedule" is a summary artifact).
    accepted:
        The verdict: routes agree within tolerance, a feasibility claim
        is backed by certified margin, and the throughput accounting is
        consistent.  ``reasons`` lists every violated check otherwise.
    reasons:
        Human-readable labels of the violated checks (empty if accepted).
    """

    peak_theta: float
    theta_max: float
    margin: float
    method_peaks: dict[str, float] = field(default_factory=dict)
    disagreement: float = 0.0
    tolerance: float = DEFAULT_TOLERANCE
    condition_number: float = float("nan")
    step_up: bool = False
    independent: bool = True
    accepted: bool = True
    reasons: tuple[str, ...] = ()

    @property
    def feasible(self) -> bool:
        """Whether the *certified* peak respects the threshold."""
        return self.margin >= -1e-9

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        routes = ", ".join(
            f"{name}={value:.4f}" for name, value in self.method_peaks.items()
        )
        line = (
            f"certificate {verdict}: peak={self.peak_theta:.4f} K, "
            f"margin={self.margin:+.4f} K, "
            f"disagreement={self.disagreement:.2e} K "
            f"(tol {self.tolerance:g}; {routes}; "
            f"cond(G-E)={self.condition_number:.1f})"
        )
        if self.reasons:
            line += f" [{'; '.join(self.reasons)}]"
        return line

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (journal rows, trace documents)."""
        return {
            "peak_theta": self.peak_theta,
            "theta_max": self.theta_max,
            "margin": self.margin,
            "method_peaks": dict(self.method_peaks),
            "disagreement": self.disagreement,
            "tolerance": self.tolerance,
            "condition_number": self.condition_number,
            "step_up": self.step_up,
            "independent": self.independent,
            "accepted": self.accepted,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SafetyCertificate":
        """Rebuild a certificate from :meth:`as_dict` output."""
        return cls(
            peak_theta=float(data["peak_theta"]),
            theta_max=float(data["theta_max"]),
            margin=float(data["margin"]),
            method_peaks={
                str(k): float(v)
                for k, v in (data.get("method_peaks") or {}).items()
            },
            disagreement=float(data.get("disagreement", 0.0)),
            tolerance=float(data.get("tolerance", DEFAULT_TOLERANCE)),
            condition_number=float(data.get("condition_number", float("nan"))),
            step_up=bool(data.get("step_up", False)),
            independent=bool(data.get("independent", True)),
            accepted=bool(data.get("accepted", True)),
            reasons=tuple(str(r) for r in (data.get("reasons") or ())),
        )


def _count(cert: SafetyCertificate) -> SafetyCertificate:
    METRICS.counter("safety.certificates").inc()
    if not cert.accepted:
        METRICS.counter("safety.certificates_rejected").inc()
    return cert


def certify(
    engine: "Platform | ThermalEngine",
    schedule: PeriodicSchedule,
    theta_max: float | None = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    claimed_peak: float | None = None,
    claimed_feasible: bool | None = None,
    claimed_throughput: float | None = None,
    grid_per_interval: int = 64,
    reference: bool = False,
    reference_samples: int = 64,
) -> SafetyCertificate:
    """Independently re-verify one schedule against ``theta_max``.

    The primary route is the MatEx-style analytic extrema search with the
    Theorem-1 step-up shortcut *disabled* — the solvers lean on that
    shortcut, so running the general search exercises a genuinely
    different code path over the same stable status.  For step-up
    schedules the Theorem-1 value is added as a second cross-check, and
    ``reference=True`` additionally runs the LSODA ODE oracle
    (:func:`repro.thermal.reference.reference_peak` — slow by design;
    reserve it for ``repro certify --reference`` and audits).

    Parameters
    ----------
    engine:
        The platform (or its engine) whose thermal model prices the
        schedule.
    theta_max:
        Threshold to certify against; defaults to the platform's.
    claimed_peak / claimed_feasible / claimed_throughput:
        The solver's own claims.  The peak claim joins the cross-check
        set; a feasibility claim must be backed by certified margin; the
        throughput claim must not exceed the raw schedule throughput
        (transition overhead only ever subtracts).
    """
    engine = ThermalEngine.ensure(engine)
    if theta_max is None:
        theta_max = engine.theta_max
    theta_max = float(theta_max)

    step_up = is_step_up(schedule)
    peaks: dict[str, float] = {}
    if claimed_peak is not None:
        peaks["claimed"] = float(claimed_peak)
    peaks["matex"] = float(
        engine.general_peak(
            schedule, grid_per_interval=grid_per_interval, stepup_fast_path=False
        ).value
    )
    if step_up:
        peaks["stepup"] = float(
            stepup_peak_temperature(engine.model, schedule, check=False).value
        )
    if reference:
        from repro.thermal.reference import reference_peak

        peaks["reference"] = float(
            reference_peak(
                engine.model, schedule, samples_per_interval=reference_samples
            )
        )

    certified = max(peaks.values())
    disagreement = float(certified - min(peaks.values()))
    margin = theta_max - certified

    reasons: list[str] = []
    if not np.isfinite(certified):
        reasons.append("non-finite peak")
    if disagreement > tolerance:
        reasons.append(
            f"peak routes disagree by {disagreement:.4f} K (> {tolerance:g})"
        )
    if claimed_feasible and margin < -tolerance:
        reasons.append(
            f"claimed feasible but certified margin is {margin:.4f} K"
        )
    if claimed_throughput is not None:
        raw = schedule_throughput(schedule)
        if claimed_throughput > raw + THROUGHPUT_SLACK:
            reasons.append(
                f"claimed throughput {claimed_throughput:.6f} exceeds the "
                f"schedule's raw throughput {raw:.6f}"
            )

    return _count(
        SafetyCertificate(
            peak_theta=float(certified),
            theta_max=theta_max,
            margin=float(margin),
            method_peaks=peaks,
            disagreement=disagreement,
            tolerance=float(tolerance),
            condition_number=engine.condition_number(),
            step_up=step_up,
            independent=True,
            accepted=not reasons,
            reasons=tuple(reasons),
        )
    )


def claim_certificate(
    engine: "Platform | ThermalEngine",
    claimed_peak: float,
    theta_max: float | None = None,
    *,
    claimed_feasible: bool | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> SafetyCertificate:
    """Certificate for a result whose schedule is *not* the artifact.

    The reactive baseline's ``schedule`` field summarizes a closed-loop
    simulation — re-deriving its peak from that pseudo-schedule would
    verify the wrong object.  This records the trace-measured peak as a
    non-independent certificate: the margin bookkeeping and feasibility
    consistency check still apply, but no cross-route agreement can be
    claimed (``independent=False``).
    """
    engine = ThermalEngine.ensure(engine)
    if theta_max is None:
        theta_max = engine.theta_max
    theta_max = float(theta_max)
    margin = theta_max - float(claimed_peak)
    reasons: list[str] = []
    if not np.isfinite(claimed_peak):
        reasons.append("non-finite peak")
    if claimed_feasible and margin < -tolerance:
        reasons.append(
            f"claimed feasible but trace margin is {margin:.4f} K"
        )
    return _count(
        SafetyCertificate(
            peak_theta=float(claimed_peak),
            theta_max=theta_max,
            margin=float(margin),
            method_peaks={"trace": float(claimed_peak)},
            disagreement=0.0,
            tolerance=float(tolerance),
            condition_number=engine.condition_number(),
            step_up=False,
            independent=False,
            accepted=not reasons,
            reasons=tuple(reasons),
        )
    )
