"""Independent safety certificates for scheduler results.

The paper's value proposition is a *guarantee*: AO/PCO schedules provably
never exceed ``T_max`` (Theorems 1-5).  Every solver in the registry,
however, prices its candidates through the same eigenbasis machinery it
optimizes with — a bug in the Theorem-1 fast path, an ill-conditioned
``G - E_beta``, or a solver simply lying about its peak would go
undetected.  :func:`certify` closes that loop: it re-derives the stable
peak of the emitted schedule via a *different* numerical route than the
solvers use (the MatEx-style analytic search with the step-up shortcut
disabled, optionally cross-checked against the LSODA ODE oracle), checks
the solver's structural claims (step-up shape, throughput accounting),
and returns a structured :class:`SafetyCertificate` that the registry
attaches to every :class:`~repro.algorithms.base.SchedulerResult`, the
runner journals, and ``repro certify`` gates builds on.

Layering: this module sits on the thermal/schedule/engine layers only —
it must not import :mod:`repro.algorithms` (the registry imports *us*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.engine import ThermalEngine
from repro.obs import METRICS
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up, throughput as schedule_throughput
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform import Platform

__all__ = ["SafetyCertificate", "certify", "certify_grid", "claim_certificate"]

#: Default agreement tolerance between peak re-derivations (K).  The
#: registry's parity tests hold independent peaks to ~5e-4 K; 0.05 K
#: leaves two orders of magnitude of slack for grid-resolution noise
#: while still catching any genuinely wrong peak claim.
DEFAULT_TOLERANCE = 0.05

#: One-sided slack for the throughput invariant (claims may sit *below*
#: the raw schedule throughput — DVFS overhead only subtracts — but
#: never meaningfully above it).
THROUGHPUT_SLACK = 1e-6


@dataclass(frozen=True)
class SafetyCertificate:
    """Outcome of an independent re-verification of one schedule.

    Attributes
    ----------
    peak_theta:
        Certified stable peak (K above ambient): the worst case over
        every re-derivation route that ran.
    theta_max:
        The threshold the schedule was certified against.
    margin:
        ``theta_max - peak_theta`` — positive means certified headroom.
    method_peaks:
        Peak per verification route (``"claimed"``, ``"matex"``,
        ``"stepup"``, ``"reference"``, ``"trace"``).
    disagreement:
        Spread (max - min) across ``method_peaks`` — the cross-check.
    tolerance:
        Agreement tolerance the certificate was issued under.
    condition_number:
        2-norm condition number of the effective conductance matrix
        ``G - E_beta`` — a large value flags a platform whose thermal
        solves are numerically fragile.
    step_up:
        Whether the schedule satisfies Definition 1 (voltage
        non-decreasing per core), i.e. whether the Theorem-1 fast path
        was even applicable to it.
    independent:
        True when at least one re-derivation ran a route different from
        the solver's own claim (False for trace-only certificates of
        closed-loop baselines, whose "schedule" is a summary artifact).
    accepted:
        The verdict: routes agree within tolerance, a feasibility claim
        is backed by certified margin, and the throughput accounting is
        consistent.  ``reasons`` lists every violated check otherwise.
    reasons:
        Human-readable labels of the violated checks (empty if accepted).
    reference_samples_used:
        Per-interval sampling density the LSODA reference route actually
        ran at (``None`` when the route did not run).  Adaptive
        subsampling (see :func:`certify`) reduces it for schedules whose
        certified margin is far from the threshold.
    """

    peak_theta: float
    theta_max: float
    margin: float
    method_peaks: dict[str, float] = field(default_factory=dict)
    disagreement: float = 0.0
    tolerance: float = DEFAULT_TOLERANCE
    condition_number: float = float("nan")
    step_up: bool = False
    independent: bool = True
    accepted: bool = True
    reasons: tuple[str, ...] = ()
    reference_samples_used: int | None = None

    @property
    def feasible(self) -> bool:
        """Whether the *certified* peak respects the threshold."""
        return self.margin >= -1e-9

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        routes = ", ".join(
            f"{name}={value:.4f}" for name, value in self.method_peaks.items()
        )
        line = (
            f"certificate {verdict}: peak={self.peak_theta:.4f} K, "
            f"margin={self.margin:+.4f} K, "
            f"disagreement={self.disagreement:.2e} K "
            f"(tol {self.tolerance:g}; {routes}; "
            f"cond(G-E)={self.condition_number:.1f})"
        )
        if self.reasons:
            line += f" [{'; '.join(self.reasons)}]"
        return line

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (journal rows, trace documents)."""
        return {
            "peak_theta": self.peak_theta,
            "theta_max": self.theta_max,
            "margin": self.margin,
            "method_peaks": dict(self.method_peaks),
            "disagreement": self.disagreement,
            "tolerance": self.tolerance,
            "condition_number": self.condition_number,
            "step_up": self.step_up,
            "independent": self.independent,
            "accepted": self.accepted,
            "reasons": list(self.reasons),
            "reference_samples_used": self.reference_samples_used,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SafetyCertificate":
        """Rebuild a certificate from :meth:`as_dict` output."""
        return cls(
            peak_theta=float(data["peak_theta"]),
            theta_max=float(data["theta_max"]),
            margin=float(data["margin"]),
            method_peaks={
                str(k): float(v)
                for k, v in (data.get("method_peaks") or {}).items()
            },
            disagreement=float(data.get("disagreement", 0.0)),
            tolerance=float(data.get("tolerance", DEFAULT_TOLERANCE)),
            condition_number=float(data.get("condition_number", float("nan"))),
            step_up=bool(data.get("step_up", False)),
            independent=bool(data.get("independent", True)),
            accepted=bool(data.get("accepted", True)),
            reasons=tuple(str(r) for r in (data.get("reasons") or ())),
            reference_samples_used=(
                int(data["reference_samples_used"])
                if data.get("reference_samples_used") is not None
                else None
            ),
        )


def _count(cert: SafetyCertificate) -> SafetyCertificate:
    METRICS.counter("safety.certificates").inc()
    if not cert.accepted:
        METRICS.counter("safety.certificates_rejected").inc()
    return cert


def _reference_budget(
    gap: float, tolerance: float, reference_samples: int
) -> int:
    """Adaptive per-interval sampling density for the LSODA oracle.

    The reference route only needs to *resolve the comparison*, not the
    trajectory: when the analytic routes already put the peak far from
    both ``theta_max`` and each other, a coarse oracle trace suffices to
    confirm agreement within ``tolerance``.  ``gap`` is the certified
    margin tightness ``|theta_max - certified|`` from the analytic
    routes; wide gaps quarter the density, moderate gaps halve it, and
    tight calls (the ones the certificate actually hinges on) keep the
    full budget.
    """
    if gap >= 8.0 * tolerance:
        return max(16, reference_samples // 4)
    if gap >= 2.0 * tolerance:
        return max(24, reference_samples // 2)
    return reference_samples


def _assemble(
    engine: ThermalEngine,
    schedule: PeriodicSchedule,
    theta_max: float,
    peaks: dict[str, float],
    *,
    tolerance: float,
    step_up: bool,
    claimed_feasible: bool | None,
    claimed_throughput: float | None,
    reference_samples_used: int | None = None,
) -> SafetyCertificate:
    """Turn a route->peak map into a counted certificate (shared by the
    scalar and grid entry points, so the checks cannot drift apart)."""
    certified = max(peaks.values())
    disagreement = float(certified - min(peaks.values()))
    margin = theta_max - certified

    reasons: list[str] = []
    if not np.isfinite(certified):
        reasons.append("non-finite peak")
    if disagreement > tolerance:
        reasons.append(
            f"peak routes disagree by {disagreement:.4f} K (> {tolerance:g})"
        )
    if claimed_feasible and margin < -tolerance:
        reasons.append(
            f"claimed feasible but certified margin is {margin:.4f} K"
        )
    if claimed_throughput is not None:
        raw = schedule_throughput(schedule)
        if claimed_throughput > raw + THROUGHPUT_SLACK:
            reasons.append(
                f"claimed throughput {claimed_throughput:.6f} exceeds the "
                f"schedule's raw throughput {raw:.6f}"
            )

    return _count(
        SafetyCertificate(
            peak_theta=float(certified),
            theta_max=theta_max,
            margin=float(margin),
            method_peaks=peaks,
            disagreement=disagreement,
            tolerance=float(tolerance),
            condition_number=engine.condition_number(),
            step_up=step_up,
            independent=True,
            accepted=not reasons,
            reasons=tuple(reasons),
            reference_samples_used=reference_samples_used,
        )
    )


def _reference_route(
    engine: ThermalEngine,
    schedule: PeriodicSchedule,
    peaks: dict[str, float],
    theta_max: float,
    *,
    tolerance: float,
    reference_samples: int,
    adaptive_reference: bool,
) -> int:
    """Run the LSODA oracle and add it to ``peaks``; returns the density."""
    from repro.thermal.reference import reference_peak

    samples = reference_samples
    if adaptive_reference and peaks:
        gap = abs(theta_max - max(peaks.values()))
        samples = _reference_budget(gap, tolerance, reference_samples)
    peaks["reference"] = float(
        reference_peak(engine.model, schedule, samples_per_interval=samples)
    )
    return samples


def certify(
    engine: "Platform | ThermalEngine",
    schedule: PeriodicSchedule,
    theta_max: float | None = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    claimed_peak: float | None = None,
    claimed_feasible: bool | None = None,
    claimed_throughput: float | None = None,
    grid_per_interval: int = 64,
    reference: bool = False,
    reference_samples: int = 64,
    adaptive_reference: bool = True,
) -> SafetyCertificate:
    """Independently re-verify one schedule against ``theta_max``.

    The primary route is the MatEx-style analytic extrema search with the
    Theorem-1 step-up shortcut *disabled* — the solvers lean on that
    shortcut, so running the general search exercises a genuinely
    different code path over the same stable status.  For step-up
    schedules the Theorem-1 value is added as a second cross-check, and
    ``reference=True`` additionally runs the LSODA ODE oracle
    (:func:`repro.thermal.reference.reference_peak`).  The oracle's
    per-interval density is subsampled adaptively by default: the
    analytic routes run first, and when their certified margin is far
    from ``theta_max`` (``>= 8x`` / ``>= 2x`` the tolerance) the oracle
    runs at a quarter / half of ``reference_samples`` — cheap enough for
    the default CI gate while tight calls keep the full budget.  Pass
    ``adaptive_reference=False`` for the fixed-density audit behavior.

    Parameters
    ----------
    engine:
        The platform (or its engine) whose thermal model prices the
        schedule.
    theta_max:
        Threshold to certify against; defaults to the platform's.
    claimed_peak / claimed_feasible / claimed_throughput:
        The solver's own claims.  The peak claim joins the cross-check
        set; a feasibility claim must be backed by certified margin; the
        throughput claim must not exceed the raw schedule throughput
        (transition overhead only ever subtracts).
    """
    engine = ThermalEngine.ensure(engine)
    if theta_max is None:
        theta_max = engine.theta_max
    theta_max = float(theta_max)

    step_up = is_step_up(schedule)
    peaks: dict[str, float] = {}
    if claimed_peak is not None:
        peaks["claimed"] = float(claimed_peak)
    peaks["matex"] = float(
        engine.general_peak(
            schedule, grid_per_interval=grid_per_interval, stepup_fast_path=False
        ).value
    )
    if step_up:
        peaks["stepup"] = float(
            stepup_peak_temperature(engine.model, schedule, check=False).value
        )
    samples_used: int | None = None
    if reference:
        samples_used = _reference_route(
            engine, schedule, peaks, theta_max,
            tolerance=tolerance,
            reference_samples=reference_samples,
            adaptive_reference=adaptive_reference,
        )

    return _assemble(
        engine, schedule, theta_max, peaks,
        tolerance=tolerance,
        step_up=step_up,
        claimed_feasible=claimed_feasible,
        claimed_throughput=claimed_throughput,
        reference_samples_used=samples_used,
    )


def certify_grid(
    items: "Sequence[tuple[Any, PeriodicSchedule] | tuple[Any, PeriodicSchedule, Mapping[str, Any]]]",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    grid_per_interval: int = 64,
    reference: bool = False,
    reference_samples: int = 64,
    adaptive_reference: bool = True,
) -> list[SafetyCertificate]:
    """Certify many ``(platform, schedule)`` pairs via the grid kernels.

    Semantically identical to calling :func:`certify` per item — the same
    route set, checks, and tolerances (both entry points assemble through
    one shared helper) — but the analytic routes are evaluated for the
    *whole* grid in single tensorized calls:
    :func:`repro.thermal.grid.peak_temperature_grid` for the MatEx search
    (step-up shortcut disabled, as in the scalar path) and
    :func:`repro.thermal.grid.stepup_peak_temperature_grid` for the
    Theorem-1 cross-check of the step-up rows.  The LSODA reference route
    stays scalar (the ODE oracle is deliberately a different machine) but
    inherits the adaptive density of :func:`certify`.

    Each item is ``(platform_or_engine, schedule)`` or
    ``(platform_or_engine, schedule, claims)`` where ``claims`` may carry
    ``theta_max``, ``claimed_peak``, ``claimed_feasible``, and
    ``claimed_throughput`` — the same knobs as :func:`certify`.

    Returns one certificate per item, in order.
    """
    from repro.thermal.grid import (
        peak_temperature_grid,
        stepup_peak_temperature_grid,
    )

    prepared: list[tuple[ThermalEngine, PeriodicSchedule, dict[str, Any]]] = []
    for item in items:
        engine, schedule = item[0], item[1]
        claims = dict(item[2]) if len(item) > 2 else {}
        prepared.append((ThermalEngine.ensure(engine), schedule, claims))
    if not prepared:
        return []

    rows = [(engine.model, schedule) for engine, schedule, _ in prepared]
    matex = peak_temperature_grid(
        rows, grid_per_interval=grid_per_interval, stepup_fast_path=False
    )
    step_flags = [is_step_up(schedule) for _, schedule, _ in prepared]
    stepup_peaks: dict[int, float] = {}
    stepup_rows = [i for i, flag in enumerate(step_flags) if flag]
    if stepup_rows:
        results = stepup_peak_temperature_grid(
            [rows[i] for i in stepup_rows], check=False
        )
        stepup_peaks = {
            i: float(res.value) for i, res in zip(stepup_rows, results)
        }

    certs: list[SafetyCertificate] = []
    for i, (engine, schedule, claims) in enumerate(prepared):
        theta_max = claims.get("theta_max")
        theta_max = float(
            engine.theta_max if theta_max is None else theta_max
        )
        peaks: dict[str, float] = {}
        if claims.get("claimed_peak") is not None:
            peaks["claimed"] = float(claims["claimed_peak"])
        peaks["matex"] = float(matex[i].value)
        if step_flags[i]:
            peaks["stepup"] = stepup_peaks[i]
        samples_used: int | None = None
        if reference:
            samples_used = _reference_route(
                engine, schedule, peaks, theta_max,
                tolerance=tolerance,
                reference_samples=reference_samples,
                adaptive_reference=adaptive_reference,
            )
        certs.append(
            _assemble(
                engine, schedule, theta_max, peaks,
                tolerance=tolerance,
                step_up=step_flags[i],
                claimed_feasible=claims.get("claimed_feasible"),
                claimed_throughput=claims.get("claimed_throughput"),
                reference_samples_used=samples_used,
            )
        )
    return certs


def claim_certificate(
    engine: "Platform | ThermalEngine",
    claimed_peak: float,
    theta_max: float | None = None,
    *,
    claimed_feasible: bool | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> SafetyCertificate:
    """Certificate for a result whose schedule is *not* the artifact.

    The reactive baseline's ``schedule`` field summarizes a closed-loop
    simulation — re-deriving its peak from that pseudo-schedule would
    verify the wrong object.  This records the trace-measured peak as a
    non-independent certificate: the margin bookkeeping and feasibility
    consistency check still apply, but no cross-route agreement can be
    claimed (``independent=False``).
    """
    engine = ThermalEngine.ensure(engine)
    if theta_max is None:
        theta_max = engine.theta_max
    theta_max = float(theta_max)
    margin = theta_max - float(claimed_peak)
    reasons: list[str] = []
    if not np.isfinite(claimed_peak):
        reasons.append("non-finite peak")
    if claimed_feasible and margin < -tolerance:
        reasons.append(
            f"claimed feasible but trace margin is {margin:.4f} K"
        )
    return _count(
        SafetyCertificate(
            peak_theta=float(claimed_peak),
            theta_max=theta_max,
            margin=float(margin),
            method_peaks={"trace": float(claimed_peak)},
            disagreement=0.0,
            tolerance=float(tolerance),
            condition_number=engine.condition_number(),
            step_up=False,
            independent=False,
            accepted=not reasons,
            reasons=tuple(reasons),
        )
    )
