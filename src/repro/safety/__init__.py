"""repro.safety — independent verification and graceful degradation.

Three pillars, wired through the registry, runner, sim and CLI:

* **certificates** (:func:`certify`, :class:`SafetyCertificate`) — every
  result the solver registry emits is re-verified through a numerical
  route different from the one the solver optimized with, and carries
  the structured verdict;
* **fallback chains** (:data:`FALLBACK_CHAIN`, consumed by
  :func:`repro.algorithms.registry.guarded_solve`) — a solver crash or a
  rejected certificate degrades AO -> neighbor rounding -> best constant
  -> lowest-mode floor instead of losing the cell;
* **fault injection** (:class:`FaultSpec`) — sensor noise/dropout, stuck
  DVFS modes and ambient drift for the reactive closed loop and the
  co-simulator, quantifying margin retained under perturbation.

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from repro.safety.certificate import (
    DEFAULT_TOLERANCE,
    SafetyCertificate,
    certify,
    claim_certificate,
)
from repro.safety.fallback import FALLBACK_CHAIN, run_fallback_hop
from repro.safety.faults import FaultSpec, perturbed_peak, stuck_schedule

__all__ = [
    "DEFAULT_TOLERANCE",
    "SafetyCertificate",
    "certify",
    "claim_certificate",
    "FALLBACK_CHAIN",
    "run_fallback_hop",
    "FaultSpec",
    "perturbed_peak",
    "stuck_schedule",
]
