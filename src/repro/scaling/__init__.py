"""Technology-scaling model: per-node tables and the platform generator.

``repro.scaling`` turns the repository's single calibrated 65 nm
platform into a family: Lumos-style scaling tables (45 -> 8 nm, ITRS vs
conservative, in-order vs out-of-order cores) plus
:func:`~repro.scaling.generator.tech_platform`, which emits a fully
paper-compatible :class:`~repro.platform.Platform` for any sweep point
— including 3D stacks.  The :mod:`repro.platforms` registry fronts this
with named ``tech-<node>-<style>`` specs; the ``scaling`` experiment
(``repro run scaling``) sweeps the family for the dark-silicon
frontier.

This package sits below the algorithm/experiment layers and must not
import them (ruff TID253).
"""

from repro.scaling.generator import tech_ladder, tech_platform, tech_summary
from repro.scaling.tables import (
    CORE_STYLES,
    SCENARIOS,
    TECH_NODES,
    dvfs_bounds_v,
    frequency_ghz,
)

__all__ = [
    "TECH_NODES",
    "SCENARIOS",
    "CORE_STYLES",
    "tech_platform",
    "tech_ladder",
    "tech_summary",
    "frequency_ghz",
    "dvfs_bounds_v",
]
