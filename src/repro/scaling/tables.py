"""Technology-scaling tables: 45 -> 8 nm under ITRS vs conservative scaling.

The paper evaluates one calibrated node; the dark-silicon question —
*when does thermally-gated capacity overtake what oscillation can
recover?* — needs the trajectory across nodes.  This module holds the
per-node scaling factors, in the style of the Lumos dark-silicon model
(Wang & Skadron): supply voltage, frequency, dynamic power and area all
scale relative to a 45 nm anchor, under two scenarios:

* ``"itrs"`` — the aggressive ITRS roadmap projections (frequency keeps
  climbing, vdd keeps dropping);
* ``"cons"`` — conservative scaling (vdd nearly flat below 22 nm,
  modest frequency gains) — the regime where power density explodes.

Two core styles anchor the absolute numbers: ``"io"`` (in-order, small
and efficient) and ``"o3"`` (out-of-order, big and power-hungry).  The
threshold voltage ``vth`` per node bounds the DVFS ladder from below
(a core cannot run meaningfully below threshold) while the upper bound
is a fixed overdrive ratio above nominal vdd.

The leakage share table is this repository's own modeling choice (Lumos
keeps leakage implicit): the fraction of nominal power that is leakage
grows monotonically as nodes shrink, which is what couples scaling to
the thermal feedback term ``beta`` and ultimately produces the
dark-silicon regime the ``scaling`` experiment maps.

All tables are plain dicts of floats — no numpy — so platform specs
built from them stay trivially JSON-able.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "TECH_NODES",
    "SCENARIOS",
    "CORE_STYLES",
    "VDD_BASE_V",
    "VDD_SCALE",
    "FREQ_SCALE",
    "POWER_SCALE",
    "AREA_SCALE",
    "VTH_V",
    "FREQ_BASE_GHZ",
    "POWER_BASE_W",
    "AREA_BASE_MM2",
    "DVFS_UPPER_RATIO",
    "LEAKAGE_SHARE",
    "check_point",
    "vdd_v",
    "frequency_ghz",
    "nominal_power_w",
    "core_area_mm2",
    "dvfs_bounds_v",
]

#: Modeled nodes, newest last.  45 nm is the scaling anchor.
TECH_NODES: tuple[int, ...] = (45, 32, 22, 16, 11, 8)

#: Scaling scenarios: aggressive roadmap vs conservative reality.
SCENARIOS: tuple[str, ...] = ("itrs", "cons")

#: Core microarchitecture styles the absolute anchors are stated for.
CORE_STYLES: tuple[str, ...] = ("io", "o3")

#: Nominal supply at the 45 nm anchor, volts.  This is also the unit the
#: paper's normalized ladder speaks — the calibrated platform's ladder
#: top (1.3 V) is exactly ``DVFS_UPPER_RATIO * VDD_BASE_V``.
VDD_BASE_V = 1.0

#: Nominal vdd relative to the 45 nm anchor, per scenario and node.
VDD_SCALE: dict[str, dict[int, float]] = {
    "itrs": {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62},
    "cons": {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.86, 11: 0.84, 8: 0.84},
}

#: Core frequency relative to the 45 nm anchor.
FREQ_SCALE: dict[str, dict[int, float]] = {
    "itrs": {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85},
    "cons": {45: 1.0, 32: 1.10, 22: 1.19, 16: 1.25, 11: 1.30, 8: 1.34},
}

#: Nominal core power relative to the 45 nm anchor.
POWER_SCALE: dict[str, dict[int, float]] = {
    "itrs": {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12},
    "cons": {45: 1.0, 32: 0.71, 22: 0.52, 16: 0.39, 11: 0.29, 8: 0.22},
}

#: Core area relative to the 45 nm anchor — halves per node.
AREA_SCALE: dict[int, float] = {
    45: 1.0, 32: 0.5, 22: 0.25, 16: 0.125, 11: 0.0625, 8: 0.03125,
}

#: Threshold voltage per node, volts (ITRS high-performance device).
VTH_V: dict[int, float] = {
    45: 0.3201, 32: 0.2970, 22: 0.2673, 16: 0.2409, 11: 0.2178, 8: 0.1980,
}

#: Absolute 45 nm anchors per core style.
FREQ_BASE_GHZ: dict[str, float] = {"io": 4.2, "o3": 3.7}
POWER_BASE_W: dict[str, float] = {"io": 6.14, "o3": 19.83}
AREA_BASE_MM2: dict[str, float] = {"io": 7.65, "o3": 26.48}

#: DVFS overdrive: the ladder tops out at this ratio above nominal vdd.
DVFS_UPPER_RATIO = 1.3

#: Fraction of nominal power that is leakage, growing as nodes shrink
#: (sub-threshold leakage worsens with thinner oxides and lower vth).
#: Modeled, monotone; drives both the alpha/gamma split and the thermal
#: feedback slope of generated platforms.
LEAKAGE_SHARE: dict[int, float] = {
    45: 0.20, 32: 0.25, 22: 0.30, 16: 0.36, 11: 0.43, 8: 0.50,
}


def check_point(node: int, scenario: str, style: str) -> None:
    """Validate one (node, scenario, style) sweep point.

    Raises
    ------
    ConfigurationError
        Naming the valid values, so CLI typos fail with a usable message.
    """
    if node not in AREA_SCALE:
        raise ConfigurationError(
            f"unknown technology node {node!r}; modeled: {TECH_NODES}"
        )
    if scenario not in VDD_SCALE:
        raise ConfigurationError(
            f"unknown scaling scenario {scenario!r}; known: {SCENARIOS}"
        )
    if style not in FREQ_BASE_GHZ:
        raise ConfigurationError(
            f"unknown core style {style!r}; known: {CORE_STYLES}"
        )


def vdd_v(node: int, scenario: str) -> float:
    """Nominal supply voltage at a node, volts."""
    return VDD_BASE_V * VDD_SCALE[scenario][node]


def frequency_ghz(node: int, scenario: str, style: str) -> float:
    """Nominal core frequency at a node, GHz (absolute-performance anchor)."""
    return FREQ_BASE_GHZ[style] * FREQ_SCALE[scenario][node]


def nominal_power_w(node: int, scenario: str, style: str) -> float:
    """Nominal per-core power at a node, watts."""
    return POWER_BASE_W[style] * POWER_SCALE[scenario][node]


def core_area_mm2(node: int, style: str) -> float:
    """Core tile area at a node, mm^2."""
    return AREA_BASE_MM2[style] * AREA_SCALE[node]


def dvfs_bounds_v(node: int, scenario: str) -> tuple[float, float]:
    """The DVFS ladder's voltage range ``(v_lo, v_hi)`` at a node.

    The lower bound is the threshold voltage (below it the core cannot
    switch usefully), the upper the fixed overdrive ratio above nominal
    vdd — both shrink with the node, which is the ladder-compression
    half of the dark-silicon story.
    """
    lo = VTH_V[node]
    hi = DVFS_UPPER_RATIO * vdd_v(node, scenario)
    if hi <= lo:  # pragma: no cover - impossible for the modeled tables
        raise ConfigurationError(
            f"degenerate DVFS range at {node} nm/{scenario}: [{lo}, {hi}]"
        )
    return lo, hi
