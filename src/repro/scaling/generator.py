"""Generate paper-compatible platforms at any technology-scaling point.

:func:`tech_platform` maps one ``(node, scenario, style)`` point of the
scaling tables onto the objects the rest of the repository already
understands — a calibrated-substrate :class:`~repro.platform.Platform`
— so every solver, certificate route, grid kernel and cache works on
generated platforms unchanged.  The mapping:

* **Geometry** — square tiles sized from the per-node core area; core
  counts without a paper layout get a near-square grid.
* **Thermal network** — the calibrated 65 nm single-layer parameters
  scaled by tile area: vertical (ambient) conductance and capacitance
  scale with area, the boundary spreading term with the tile edge, the
  lateral term (edge over pitch) is area-invariant.  Shrinking tiles
  therefore lose heat-removal ability much faster than they lose power
  — rising power density is what opens the dark-silicon regime.
* **Power model** — nominal per-core power split by the node's leakage
  share: ``alpha_lin = share * P / vdd`` (leakage, linear in v) and
  ``gamma = (1 - share) * P / vdd^3`` (dynamic), so ``psi(vdd)`` equals
  the table's nominal power exactly.  The leakage temperature slope
  ``beta`` is set to the node's leakage share of the network's smallest
  conductance eigenvalue — thermal-runaway pressure that grows with the
  node while keeping ``G - E_beta`` positive definite by construction
  (the generated platform always *builds*; it may still be thermally
  infeasible, which solvers report honestly).
* **Ladder** — ``n_levels`` evenly spaced voltages between the node's
  threshold voltage and the overdrive bound ``1.3 * vdd``; the power
  model's supported range is pinned to the same bounds.
* **3D stacks** — ``stack_layers > 1`` stacks identical layers through
  :func:`~repro.thermal.stack3d.build_3d_network`, with the inter-layer
  conductance scaled by the same area ratio as the vertical path.

Layering: this package sits below the algorithm and experiment layers
and must not import them (enforced by the ruff TID253 ban).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan.layout import Floorplan
from repro.floorplan.library import PAPER_CONFIGS
from repro.platform import Platform
from repro.power.dvfs import TransitionOverhead, VoltageLadder
from repro.power.model import PowerModel
from repro.scaling.tables import (
    LEAKAGE_SHARE,
    check_point,
    core_area_mm2,
    dvfs_bounds_v,
    frequency_ghz,
    nominal_power_w,
    vdd_v,
)
from repro.thermal.model import ThermalModel
from repro.thermal.params import SingleLayerParams
from repro.thermal.rc import build_single_layer_network

__all__ = ["tech_platform", "tech_ladder", "tech_summary"]

#: The calibrated substrate's tile area (4 mm x 4 mm) that the scaled
#: thermal parameters are stated relative to.
_ANCHOR_TILE_AREA_MM2 = 16.0

#: Calibrated 3D inter-layer conductance at the anchor tile area, W/K
#: (matches :func:`repro.platform.platform_3d`'s default).
_ANCHOR_G_INTERLAYER = 1.0

#: ``beta`` as a fraction of the network's smallest conductance
#: eigenvalue: the node's leakage share.  Always < 1, so the thermal
#: model construction (``G - E_beta`` positive definite) never fails.
_BETA_EIG_FRACTION = LEAKAGE_SHARE


def _tech_floorplan(n_cores: int, tile_area_mm2: float) -> Floorplan:
    """Square-tile floorplan for a core count at the node's tile size.

    Paper core counts (2/3/6/9) keep the paper's layouts; other counts
    get the tightest near-square grid with the first ``n_cores`` cells
    occupied (row-major), which keeps adjacency deterministic.
    """
    side_m = math.sqrt(tile_area_mm2) * 1e-3
    if n_cores in PAPER_CONFIGS:
        rows, cols = PAPER_CONFIGS[n_cores]
    else:
        cols = int(math.ceil(math.sqrt(n_cores)))
        rows = int(math.ceil(n_cores / cols))
    from repro.floorplan.layout import CoreGeometry

    return Floorplan(
        rows=rows,
        cols=cols,
        geometry=CoreGeometry(width_m=side_m, height_m=side_m),
        occupied=tuple(range(n_cores)),
    )


def _scaled_params(area_ratio: float) -> SingleLayerParams:
    """The calibrated single-layer parameters scaled to a new tile area.

    Vertical plate conductance and heat capacity scale with area, the
    boundary spreading term with the tile edge; the lateral term is
    ``k * edge * t / pitch`` with edge and pitch scaling together, so it
    stays fixed.
    """
    return SingleLayerParams().scaled(
        g_direct=area_ratio,
        g_boundary=math.sqrt(area_ratio),
        c_core=area_ratio,
    )


def tech_ladder(node: int, scenario: str, n_levels: int = 4) -> VoltageLadder:
    """``n_levels`` evenly spaced voltages over the node's DVFS range."""
    if n_levels < 2:
        raise ConfigurationError(
            f"a technology ladder needs >= 2 levels, got {n_levels}"
        )
    lo, hi = dvfs_bounds_v(node, scenario)
    levels = tuple(
        round(lo + (hi - lo) * k / (n_levels - 1), 6) for k in range(n_levels)
    )
    return VoltageLadder(levels)


def tech_platform(
    node: int = 45,
    scenario: str = "itrs",
    style: str = "io",
    n_cores: int = 9,
    n_levels: int = 4,
    stack_layers: int = 1,
    t_max_c: float = 55.0,
    t_ambient_c: float = 35.0,
    tau: float = 5e-6,
    sidewall_fraction: float = 0.05,
) -> Platform:
    """Build the platform for one technology-scaling sweep point.

    Parameters
    ----------
    node:
        Technology node in nm (45/32/22/16/11/8).
    scenario:
        ``"itrs"`` (aggressive roadmap) or ``"cons"`` (conservative).
    style:
        Core microarchitecture anchor: ``"io"`` or ``"o3"``.
    n_cores:
        Cores per layer.
    n_levels:
        Ladder size (evenly spaced over the node's DVFS voltage range).
    stack_layers:
        1 for a planar chip; > 1 stacks identical layers (layer 0 is
        sink-adjacent), multiplying both compute and power density.
    t_max_c, t_ambient_c, tau:
        Threshold, ambient and DVFS transition overhead, as everywhere.
    sidewall_fraction:
        Ambient-conductance fraction upper stack layers keep.
    """
    check_point(int(node), str(scenario), str(style))
    node, scenario, style = int(node), str(scenario), str(style)
    if n_cores < 1:
        raise ConfigurationError(f"n_cores must be >= 1, got {n_cores}")
    if stack_layers < 1:
        raise ConfigurationError(
            f"stack_layers must be >= 1, got {stack_layers}"
        )

    area_mm2 = core_area_mm2(node, style)
    area_ratio = area_mm2 / _ANCHOR_TILE_AREA_MM2
    params = _scaled_params(area_ratio)
    floorplan = _tech_floorplan(int(n_cores), area_mm2)

    if stack_layers == 1:
        network = build_single_layer_network(floorplan, params)
    else:
        from repro.floorplan.stack3d import Stack3D
        from repro.thermal.stack3d import build_3d_network

        network = build_3d_network(
            Stack3D(base=floorplan, n_layers=int(stack_layers)),
            params=params,
            g_interlayer=_ANCHOR_G_INTERLAYER * area_ratio,
            sidewall_fraction=float(sidewall_fraction),
        )

    vdd = vdd_v(node, scenario)
    p_nom = nominal_power_w(node, scenario, style)
    share = LEAKAGE_SHARE[node]
    ladder = tech_ladder(node, scenario, int(n_levels))
    # Leakage feedback: the node's share of the weakest heat-removal
    # mode.  eigvalsh of a small symmetric matrix — deterministic.
    lambda_min = float(
        np.linalg.eigvalsh(np.asarray(network.conductance, dtype=float))[0]
    )
    power = PowerModel(
        alpha_lin=share * p_nom / vdd,
        gamma=(1.0 - share) * p_nom / vdd**3,
        beta=_BETA_EIG_FRACTION[node] * lambda_min,
        v_min=ladder.v_min,
        v_max=ladder.v_max,
    )
    model = ThermalModel(network, power, t_ambient_c=float(t_ambient_c))
    return Platform(
        model=model,
        ladder=ladder,
        overhead=TransitionOverhead(tau=float(tau)),
        t_max_c=float(t_max_c),
    )


def tech_summary(node: int, scenario: str, style: str) -> dict[str, float]:
    """Derived headline quantities of one sweep point (for docs/listings)."""
    check_point(int(node), str(scenario), str(style))
    node, scenario, style = int(node), str(scenario), str(style)
    lo, hi = dvfs_bounds_v(node, scenario)
    return {
        "node_nm": float(node),
        "vdd_v": vdd_v(node, scenario),
        "frequency_ghz": frequency_ghz(node, scenario, style),
        "nominal_power_w": nominal_power_w(node, scenario, style),
        "core_area_mm2": core_area_mm2(node, style),
        "v_lo": lo,
        "v_hi": hi,
        "leakage_share": LEAKAGE_SHARE[node],
    }
