"""Declarative platform specs: one canonical construction path.

Platforms used to be built through three inconsistent ad-hoc factories
(:func:`~repro.platform.paper_platform`, ``platform_3d``, manual
``big_little_power_model`` wiring).  A :class:`PlatformSpec` replaces
all of that with a frozen, content-hashable value: a **family** name
plus a flat mapping of JSON-scalar **overrides**.  Every consumer —
:func:`repro.api.load_platform`, the CLI's ``-o platforms=...`` and
``repro certify``, the :class:`~repro.service.session.SchedulerSession`
resolver, :func:`~repro.service.cache.platform_hash`, and the sharded
runner's ``solve_cell`` payloads — resolves platforms through specs, so
equivalent constructions can never drift apart in cache keys.

Families
--------
* ``paper`` — the calibrated 65 nm paper platform
  (:func:`~repro.platform.paper_platform`);
* ``big_little`` — the paper substrate with a heterogeneous big.LITTLE
  power model (big cores default to the first half);
* ``stack3d`` — the 3D-stacked platform
  (:func:`~repro.platform.platform_3d`);
* ``tech`` — the technology-scaling generator
  (:func:`~repro.scaling.generator.tech_platform`), one point per
  (node, scenario, style, stack).

Named presets (``paper``, ``paper3``, ``big_little``, ``stack3d`` and
the generated ``tech-<node>-<style>`` grid) are specs with overrides
pre-filled; ``PlatformSpec.named("tech-16-io", n_cores=4)`` layers
further overrides on top.

Specs round-trip JSON exactly: ``PlatformSpec.from_dict(s.as_dict())
== s``, and :meth:`PlatformSpec.canonical` is a deterministic string
suitable for memo keys across processes.  Building a platform from a
spec stamps the spec onto ``Platform.spec``, so sweep-derived copies
(:meth:`~repro.platform.Platform.with_t_max` /
:meth:`~repro.platform.Platform.with_ladder`) keep provenance that
rebuilds the *same* physics — no silent cache-key drift.
"""

from __future__ import annotations

import numbers
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError
from repro.platform import Platform, paper_platform, platform_3d
from repro.power.dvfs import VoltageLadder

__all__ = [
    "PlatformSpec",
    "PlatformFamily",
    "FAMILIES",
    "get_family",
    "platform_names",
    "get_preset",
    "build_platform",
]


def _canonical_value(value: Any) -> Any:
    """Canonicalize one override value to a hashable JSON-scalar form."""
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    raise ConfigurationError(
        f"platform-spec override values must be JSON scalars or lists, "
        f"got {type(value).__name__}: {value!r}"
    )


def _jsonable(value: Any) -> Any:
    """Tuples back to lists for the JSON wire form."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class PlatformFamily:
    """One registered way of building platforms.

    Attributes
    ----------
    name:
        Family id (``paper``, ``big_little``, ``stack3d``, ``tech``).
    builder:
        Callable accepting the family's keyword parameters and returning
        a bare :class:`~repro.platform.Platform`.
    params:
        The accepted override names — unknown overrides are rejected
        with this list, so CLI typos fail loudly.
    description:
        One-liner for ``repro list platforms``.
    """

    name: str
    builder: Callable[..., Platform]
    params: tuple[str, ...]
    description: str


def _build_paper(**kwargs: Any) -> Platform:
    ladder_levels = kwargs.pop("ladder_levels", None)
    if ladder_levels is not None:
        kwargs["ladder"] = VoltageLadder(tuple(ladder_levels))
    kwargs.setdefault("n_cores", 3)
    return paper_platform(**kwargs)


def _build_big_little(**kwargs: Any) -> Platform:
    from repro.power.heterogeneous import big_little_power_model

    kwargs.setdefault("n_cores", 3)
    n_cores = int(kwargs["n_cores"])
    big_cores = kwargs.pop("big_cores", None)
    if big_cores is None:
        big_cores = tuple(range(max(1, n_cores // 2)))
    power = big_little_power_model(
        big_cores=list(int(c) for c in big_cores),
        n_cores=n_cores,
        little_gamma_scale=float(kwargs.pop("little_gamma_scale", 0.45)),
        little_alpha_scale=float(kwargs.pop("little_alpha_scale", 0.55)),
    )
    ladder_levels = kwargs.pop("ladder_levels", None)
    if ladder_levels is not None:
        kwargs["ladder"] = VoltageLadder(tuple(ladder_levels))
    return paper_platform(power=power, **kwargs)


def _build_stack3d(**kwargs: Any) -> Platform:
    ladder_levels = kwargs.pop("ladder_levels", None)
    if ladder_levels is not None:
        kwargs["ladder"] = VoltageLadder(tuple(ladder_levels))
    kwargs.setdefault("n_layers", 3)
    kwargs.setdefault("rows", 2)
    kwargs.setdefault("cols", 2)
    return platform_3d(**kwargs)


def _build_tech(**kwargs: Any) -> Platform:
    from repro.scaling.generator import tech_platform

    ladder_levels = kwargs.pop("ladder_levels", None)
    platform = tech_platform(**kwargs)
    if ladder_levels is not None:
        platform = replace(platform, ladder=VoltageLadder(tuple(ladder_levels)))
    return platform


#: The family registry.  ``ladder_levels`` everywhere is what keeps
#: :meth:`Platform.with_ladder` copies spec-representable.
FAMILIES: dict[str, PlatformFamily] = {
    fam.name: fam
    for fam in (
        PlatformFamily(
            name="paper",
            builder=_build_paper,
            params=(
                "n_cores", "n_levels", "t_max_c", "t_ambient_c",
                "tau", "topology", "ladder_levels",
            ),
            description="calibrated 65 nm paper platform",
        ),
        PlatformFamily(
            name="big_little",
            builder=_build_big_little,
            params=(
                "n_cores", "n_levels", "t_max_c", "t_ambient_c",
                "tau", "topology", "ladder_levels",
                "big_cores", "little_gamma_scale", "little_alpha_scale",
            ),
            description="paper substrate with heterogeneous big.LITTLE power",
        ),
        PlatformFamily(
            name="stack3d",
            builder=_build_stack3d,
            params=(
                "n_layers", "rows", "cols", "n_levels", "t_max_c",
                "t_ambient_c", "tau", "g_interlayer",
                "sidewall_fraction", "ladder_levels",
            ),
            description="3D-stacked paper substrate (layer 0 sink-adjacent)",
        ),
        PlatformFamily(
            name="tech",
            builder=_build_tech,
            params=(
                "node", "scenario", "style", "n_cores", "n_levels",
                "stack_layers", "t_max_c", "t_ambient_c", "tau",
                "sidewall_fraction", "ladder_levels",
            ),
            description="technology-scaling generator (45-8 nm, io/o3)",
        ),
    )
}


def get_family(name: str) -> PlatformFamily:
    """Look a family up by id, failing with the known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform family {name!r}; known: {sorted(FAMILIES)}"
        ) from None


@dataclass(frozen=True)
class PlatformSpec:
    """A frozen, content-hashable recipe for one platform.

    Attributes
    ----------
    family:
        A :data:`FAMILIES` id.
    overrides:
        Sorted ``(name, value)`` pairs of keyword overrides, values
        canonicalized to hashable JSON scalars/tuples.  Construct with a
        mapping — ``PlatformSpec("tech", {"node": 16})`` — or through
        :meth:`named` / :meth:`with_overrides`.
    """

    family: str
    overrides: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        raw = self.overrides
        if isinstance(raw, Mapping):
            items = raw.items()
        else:
            items = tuple(raw)
        canon = tuple(
            sorted((str(k), _canonical_value(v)) for k, v in items)
        )
        names = [k for k, _ in canon]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate override names in {names}")
        object.__setattr__(self, "overrides", canon)
        family = get_family(self.family)
        unknown = set(names) - set(family.params)
        if unknown:
            raise ConfigurationError(
                f"family {family.name!r} does not accept overrides "
                f"{sorted(unknown)}; valid: {sorted(family.params)}"
            )

    # -- construction ---------------------------------------------------

    @classmethod
    def named(cls, name: str, **overrides: Any) -> "PlatformSpec":
        """A preset spec by name, with further overrides layered on top.

        ``name`` may be a preset (``paper3``, ``tech-16-io``, ...) or a
        bare family id (``tech``); see :func:`platform_names`.
        """
        preset = _PRESETS.get(name)
        if preset is not None:
            return preset[0].with_overrides(**overrides)
        if name in FAMILIES:
            return cls(name, overrides)
        raise ConfigurationError(
            f"unknown platform {name!r}; known presets: "
            f"{', '.join(platform_names())} (or a family id: "
            f"{', '.join(sorted(FAMILIES))})"
        )

    @classmethod
    def coerce(cls, value: Any) -> "PlatformSpec":
        """Any accepted platform description -> a spec (no warnings).

        Accepts a spec, a preset/family name, a spec document
        (``{"family": ..., "overrides": {...}}``), a legacy flat kwargs
        dict (routed to the ``paper`` family, the shape old journal rows
        and manifests carry), or ``None`` (the default ``paper`` spec).
        The deprecation shim for the legacy forms lives in
        :func:`repro.api.load_platform`; internal resolvers use this
        silent path.
        """
        if isinstance(value, cls):
            return value
        if value is None:
            return cls("paper")
        if isinstance(value, str):
            return cls.named(value)
        if isinstance(value, Mapping):
            if "family" in value:
                return cls.from_dict(value)
            if "name" in value:
                doc = dict(value)
                return cls.named(str(doc.pop("name")), **doc)
            return cls("paper", dict(value))
        raise ConfigurationError(
            f"cannot interpret {type(value).__name__} as a platform spec"
        )

    def with_overrides(self, **overrides: Any) -> "PlatformSpec":
        """Copy with further overrides layered on top (later wins)."""
        if not overrides:
            return self
        merged = dict(self.overrides)
        merged.update(overrides)
        return PlatformSpec(self.family, merged)

    # -- wire form ------------------------------------------------------

    def overrides_dict(self) -> dict[str, Any]:
        """The overrides as a plain dict (canonical tuple values)."""
        return dict(self.overrides)

    def as_dict(self) -> dict[str, Any]:
        """JSON wire form: ``{"family": ..., "overrides": {...}}``."""
        return {
            "family": self.family,
            "overrides": {k: _jsonable(v) for k, v in self.overrides},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PlatformSpec":
        """Rebuild a spec from its :meth:`as_dict` document."""
        if "family" not in doc:
            raise ConfigurationError(
                f"a platform-spec document needs a 'family' key, got "
                f"{sorted(doc)}"
            )
        overrides = doc.get("overrides") or {}
        if not isinstance(overrides, Mapping):
            raise ConfigurationError(
                f"'overrides' must be a mapping, got {type(overrides).__name__}"
            )
        return cls(str(doc["family"]), overrides)

    def canonical(self) -> str:
        """Deterministic canonical-JSON string (memo keys, journals)."""
        from repro.runner.units import canonical_json

        return canonical_json(self.as_dict())

    # -- building -------------------------------------------------------

    def build(self) -> Platform:
        """Build the platform, stamping this spec as its provenance."""
        family = get_family(self.family)
        platform = family.builder(**self.overrides_dict())
        return replace(platform, spec=self)


def build_platform(spec: Any) -> Platform:
    """:meth:`PlatformSpec.coerce` then :meth:`~PlatformSpec.build`."""
    return PlatformSpec.coerce(spec).build()


def _tech_preset_description(node: int, style: str) -> str:
    from repro.scaling.tables import FREQ_BASE_GHZ, LEAKAGE_SHARE

    del FREQ_BASE_GHZ  # descriptions stay static; tables validate style
    return (
        f"generated {node} nm {style} platform (itrs scaling, "
        f"{LEAKAGE_SHARE[node]:.0%} leakage share)"
    )


def _presets() -> dict[str, tuple["PlatformSpec", str]]:
    from repro.scaling.tables import CORE_STYLES, TECH_NODES

    presets: dict[str, tuple[PlatformSpec, str]] = {
        "paper": (
            PlatformSpec("paper"),
            "calibrated paper platform (3 cores, 2 levels, T_max 55 C)",
        ),
        "paper3": (
            PlatformSpec("paper", {"n_cores": 3}),
            "the paper's 3-core reference configuration, explicitly",
        ),
        "big_little": (
            PlatformSpec("big_little"),
            "3-core big.LITTLE variant (first half big)",
        ),
        "stack3d": (
            PlatformSpec("stack3d"),
            "3-layer 2x2 3D stack on the paper substrate",
        ),
    }
    for node in TECH_NODES:
        for style in CORE_STYLES:
            presets[f"tech-{node}-{style}"] = (
                PlatformSpec("tech", {"node": node, "style": style}),
                _tech_preset_description(node, style),
            )
    return presets


#: Named presets: name -> (spec, description).
_PRESETS: dict[str, tuple[PlatformSpec, str]] = _presets()


def platform_names() -> tuple[str, ...]:
    """All named presets, stable order (paper first, tech grid last)."""
    return tuple(_PRESETS)


def get_preset(name: str) -> tuple[PlatformSpec, str]:
    """``(spec, description)`` of one named preset."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform preset {name!r}; known: "
            f"{', '.join(platform_names())}"
        ) from None
