"""JSON (de)serialization of schedules and scheduler results.

A governor computed offline must ship its schedule to the machine that
executes it; this module provides a stable, versioned JSON wire format for
:class:`~repro.schedule.periodic.PeriodicSchedule` and
:class:`~repro.algorithms.base.SchedulerResult`.

The format is intentionally dumb — explicit interval lists, no pickling —
so non-Python consumers (a kernel governor, a C runtime) can parse it.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.errors import ScheduleError
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "schedule_to_json",
    "schedule_from_json",
    "result_to_dict",
    "result_from_dict",
]

FORMAT_VERSION = 1


def schedule_to_dict(schedule: PeriodicSchedule) -> dict[str, Any]:
    """Plain-dict form of a schedule (JSON-ready)."""
    return {
        "format": "repro.schedule",
        "version": FORMAT_VERSION,
        "n_cores": schedule.n_cores,
        "period_s": schedule.period,
        "intervals": [
            {"length_s": iv.length, "voltages": list(iv.voltages)}
            for iv in schedule.intervals
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> PeriodicSchedule:
    """Rebuild a schedule from its plain-dict form.

    Raises
    ------
    ScheduleError
        On format/version mismatch or malformed interval data.
    """
    if data.get("format") != "repro.schedule":
        raise ScheduleError(f"not a repro schedule document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    try:
        intervals = tuple(
            StateInterval(
                length=float(item["length_s"]),
                voltages=tuple(float(v) for v in item["voltages"]),
            )
            for item in data["intervals"]
        )
    except (KeyError, TypeError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from exc
    schedule = PeriodicSchedule(intervals)
    declared = data.get("n_cores")
    if declared is not None and declared != schedule.n_cores:
        raise ScheduleError(
            f"document declares {declared} cores but intervals have "
            f"{schedule.n_cores}"
        )
    return schedule


def schedule_to_json(schedule: PeriodicSchedule, indent: int | None = None) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str) -> PeriodicSchedule:
    """Parse a schedule from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid JSON: {exc}") from exc
    return schedule_from_dict(data)


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def result_to_dict(result: SchedulerResult) -> dict[str, Any]:
    """Plain-dict form of a scheduler result (schedule + metrics + details).

    Detail entries are converted to JSON-safe types; entries that still
    resist conversion are stringified rather than dropped.
    """
    details = {}
    for key, value in result.details.items():
        converted = _jsonable(value)
        try:
            json.dumps(converted)
        except (TypeError, ValueError):
            converted = str(value)
        details[key] = converted
    return {
        "format": "repro.result",
        "version": FORMAT_VERSION,
        "name": result.name,
        "throughput": result.throughput,
        "peak_theta": result.peak_theta,
        "feasible": result.feasible,
        "runtime_s": result.runtime_s,
        "schedule": schedule_to_dict(result.schedule),
        "details": details,
        "stats": result.stats.as_dict() if result.stats is not None else None,
        "certificate": (
            result.certificate.as_dict()
            if result.certificate is not None
            else None
        ),
    }


def result_from_dict(data: dict[str, Any]) -> SchedulerResult:
    """Rebuild a :class:`SchedulerResult` from its plain-dict form.

    The inverse of :func:`result_to_dict` up to the lossy detail
    conversion (arrays come back as lists, stringified leftovers stay
    strings).  This is what lets the experiment runner journal finished
    work units as JSON and reassemble them on ``--resume``.
    """
    if data.get("format") != "repro.result":
        raise ScheduleError(f"not a repro result document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported result format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    from repro.engine import EngineStats
    from repro.safety.certificate import SafetyCertificate

    stats_doc = data.get("stats")
    cert_doc = data.get("certificate")
    try:
        return SchedulerResult(
            name=str(data["name"]),
            schedule=schedule_from_dict(data["schedule"]),
            throughput=float(data["throughput"]),
            peak_theta=float(data["peak_theta"]),
            feasible=bool(data["feasible"]),
            runtime_s=float(data.get("runtime_s", 0.0)),
            details=dict(data.get("details") or {}),
            stats=EngineStats.from_dict(stats_doc) if stats_doc else None,
            certificate=(
                SafetyCertificate.from_dict(cert_doc) if cert_doc else None
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ScheduleError(f"malformed result document: {exc}") from exc
