"""Schedule constructors.

The central builder is :func:`from_core_timelines`: given each core's
private (length, voltage) sequence over a common period, take the union of
all switch instants and emit one state interval per gap — the canonical
state-interval representation the thermal solvers consume.

On top of it we provide the shapes the paper uses:

* :func:`constant_schedule` — one mode per core (the EXS/LNS world),
* :func:`two_mode_schedule` — per-core low-then-high pairs (the step-up
  building block of AO),
* :func:`phase_schedule` — per-core high intervals placed at chosen start
  offsets (Fig. 3's ``x_i`` sweep, PCO's shifts),
* :func:`random_schedule` / :func:`random_stepup_schedule` — workload
  generators for the property tests and Figs. 4-5.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.intervals import MIN_INTERVAL, CoreSegment, StateInterval
from repro.schedule.periodic import PeriodicSchedule

__all__ = [
    "from_core_timelines",
    "constant_schedule",
    "two_mode_schedule",
    "phase_schedule",
    "random_schedule",
    "random_stepup_schedule",
]


def _coerce_timeline(timeline) -> list[CoreSegment]:
    segs = []
    for item in timeline:
        if isinstance(item, CoreSegment):
            segs.append(item)
        else:
            length, voltage = item
            segs.append(CoreSegment(length=float(length), voltage=float(voltage)))
    if not segs:
        raise ScheduleError("each core timeline needs at least one segment")
    return segs


def from_core_timelines(
    timelines: Sequence[Sequence],
    atol: float = 1e-9,
) -> PeriodicSchedule:
    """Combine per-core timelines into a state-interval schedule.

    Parameters
    ----------
    timelines:
        One sequence per core of ``CoreSegment`` or ``(length, voltage)``
        pairs.  All cores must cover the same total period (within
        ``atol`` relative tolerance); tiny rounding drift is absorbed by
        stretching the final segment.
    """
    if not timelines:
        raise ScheduleError("need at least one core timeline")
    per_core = [_coerce_timeline(t) for t in timelines]
    periods = [sum(s.length for s in segs) for segs in per_core]
    period = periods[0]
    for i, p in enumerate(periods[1:], start=1):
        if abs(p - period) > atol * max(period, 1.0):
            raise ScheduleError(
                f"core {i} period {p} != core 0 period {period}"
            )

    # Union of all switch instants.
    cuts = {0.0, period}
    for segs in per_core:
        t = 0.0
        for seg in segs[:-1]:
            t += seg.length
            cuts.add(min(t, period))
    grid = np.array(sorted(cuts))
    # Drop numerically-duplicate cuts.
    keep = np.concatenate([[True], np.diff(grid) > MIN_INTERVAL])
    grid = grid[keep]
    if grid[-1] < period - MIN_INTERVAL:
        grid = np.append(grid, period)

    # Voltage of each core within each gap.
    intervals = []
    mids = 0.5 * (grid[:-1] + grid[1:])
    core_volts = np.empty((len(mids), len(per_core)))
    for c, segs in enumerate(per_core):
        ends = np.cumsum([s.length for s in segs])
        ends[-1] = period  # absorb rounding drift
        idx = np.searchsorted(ends, mids, side="left")
        idx = np.clip(idx, 0, len(segs) - 1)
        core_volts[:, c] = [segs[k].voltage for k in idx]
    for q in range(len(mids)):
        intervals.append(
            StateInterval(length=float(grid[q + 1] - grid[q]), voltages=tuple(core_volts[q]))
        )
    return PeriodicSchedule(tuple(intervals))


def constant_schedule(voltages, period: float = 1.0) -> PeriodicSchedule:
    """Single state interval: every core at a constant mode."""
    return PeriodicSchedule(
        (StateInterval(length=float(period), voltages=tuple(float(v) for v in voltages)),)
    )


def two_mode_schedule(
    v_low,
    v_high,
    high_ratio,
    period: float,
    high_first: bool = False,
) -> PeriodicSchedule:
    """Per-core two-mode schedule: low for ``(1-r)t_p`` then high for ``r t_p``.

    This is the step-up building block of AO: with ``high_first=False``
    every core's voltage is non-decreasing over the period, so the result
    is a step-up schedule regardless of per-core ratios.

    Parameters
    ----------
    v_low, v_high:
        Per-core arrays (or scalars) of the two modes.  Where
        ``v_low == v_high`` or the ratio is 0/1 the core degenerates to a
        constant mode.
    high_ratio:
        Per-core array (or scalar) in [0, 1]: fraction of the period spent
        at ``v_high``.
    period:
        Schedule period ``t_p`` in seconds.
    """
    v_low = np.atleast_1d(np.asarray(v_low, dtype=float))
    v_high = np.atleast_1d(np.asarray(v_high, dtype=float))
    ratio = np.atleast_1d(np.asarray(high_ratio, dtype=float))
    n = max(v_low.size, v_high.size, ratio.size)
    v_low, v_high, ratio = (
        np.broadcast_to(v_low, n).astype(float),
        np.broadcast_to(v_high, n).astype(float),
        np.broadcast_to(ratio, n).astype(float),
    )
    if np.any((ratio < -1e-12) | (ratio > 1 + 1e-12)):
        raise ScheduleError(f"high_ratio must be within [0, 1], got {ratio}")
    if np.any(v_high < v_low):
        raise ScheduleError("two_mode_schedule requires v_high >= v_low per core")
    ratio = np.clip(ratio, 0.0, 1.0)
    if period <= 0:
        raise ScheduleError(f"period must be > 0, got {period}")

    timelines = []
    for c in range(n):
        t_high = ratio[c] * period
        t_low = period - t_high
        segs: list[tuple[float, float]] = []
        first = (t_high, v_high[c]) if high_first else (t_low, v_low[c])
        second = (t_low, v_low[c]) if high_first else (t_high, v_high[c])
        for length, v in (first, second):
            if length >= MIN_INTERVAL:
                segs.append((length, v))
        if not segs:  # degenerate: zero-length everything cannot happen (period > 0)
            segs.append((period, v_low[c]))
        timelines.append(segs)
    return from_core_timelines(timelines)


def phase_schedule(
    v_low,
    v_high,
    high_length,
    high_start,
    period: float,
) -> PeriodicSchedule:
    """Per-core schedules with the high-voltage burst at a chosen offset.

    Core ``c`` runs ``v_low[c]`` except during
    ``[high_start[c], high_start[c] + high_length[c])`` (wrapped around the
    period), where it runs ``v_high[c]``.  This is exactly the family swept
    in Fig. 3 and searched by PCO.
    """
    v_low = np.atleast_1d(np.asarray(v_low, dtype=float))
    v_high = np.atleast_1d(np.asarray(v_high, dtype=float))
    h_len = np.atleast_1d(np.asarray(high_length, dtype=float))
    h_start = np.atleast_1d(np.asarray(high_start, dtype=float))
    n = max(v_low.size, v_high.size, h_len.size, h_start.size)
    v_low = np.broadcast_to(v_low, n).astype(float)
    v_high = np.broadcast_to(v_high, n).astype(float)
    h_len = np.broadcast_to(h_len, n).astype(float)
    h_start = np.broadcast_to(h_start, n).astype(float)
    if period <= 0:
        raise ScheduleError(f"period must be > 0, got {period}")
    if np.any((h_len < 0) | (h_len > period + 1e-12)):
        raise ScheduleError("high_length must lie in [0, period]")

    timelines = []
    for c in range(n):
        start = float(h_start[c]) % period
        length = min(float(h_len[c]), period)
        segs: list[tuple[float, float]] = []
        if length < MIN_INTERVAL:
            segs = [(period, v_low[c])]
        elif length > period - MIN_INTERVAL:
            segs = [(period, v_high[c])]
        else:
            end = start + length
            if end <= period + MIN_INTERVAL:
                end = min(end, period)
                if start >= MIN_INTERVAL:
                    segs.append((start, v_low[c]))
                segs.append((end - start, v_high[c]))
                if period - end >= MIN_INTERVAL:
                    segs.append((period - end, v_low[c]))
            else:  # wraps around the period end
                wrap = end - period
                segs.append((wrap, v_high[c]))
                segs.append((start - wrap, v_low[c]))
                segs.append((period - start, v_high[c]))
        timelines.append(segs)
    return from_core_timelines(timelines)


def random_schedule(
    n_cores: int,
    rng: np.random.Generator,
    levels: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.3),
    max_segments: int = 4,
    period: float | None = None,
) -> PeriodicSchedule:
    """Random periodic schedule (workload generator for property tests)."""
    if n_cores < 1 or max_segments < 1:
        raise ScheduleError("need n_cores >= 1 and max_segments >= 1")
    if period is None:
        period = float(rng.uniform(0.05, 10.0))
    timelines = []
    for _ in range(n_cores):
        k = int(rng.integers(1, max_segments + 1))
        weights = rng.dirichlet(np.ones(k))
        weights = np.maximum(weights, 1e-3)
        weights /= weights.sum()
        volts = rng.choice(np.asarray(levels, dtype=float), size=k)
        timelines.append([(float(w * period), float(v)) for w, v in zip(weights, volts)])
    return from_core_timelines(timelines)


def random_stepup_schedule(
    n_cores: int,
    rng: np.random.Generator,
    levels: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.3),
    max_segments: int = 4,
    period: float | None = None,
) -> PeriodicSchedule:
    """Random *step-up* schedule: per-core voltages sorted non-decreasing."""
    sched = random_schedule(n_cores, rng, levels=levels, max_segments=max_segments, period=period)
    from repro.schedule.transforms import step_up

    return step_up(sched)
