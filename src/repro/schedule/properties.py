"""Schedule predicates and metrics: step-up test, throughput, workload.

Throughput follows eq. (5): the chip-wide average of per-core processing
speed over the period, with speed numerically equal to voltage (the paper
uses ``v`` and ``f`` interchangeably).  A custom ``speed_of`` mapping can
be supplied for platforms where frequency is not proportional to voltage.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.schedule.periodic import PeriodicSchedule

__all__ = ["is_step_up", "throughput", "core_workloads", "same_workload"]


def is_step_up(schedule: PeriodicSchedule, atol: float = 1e-12) -> bool:
    """Definition 1: every core's voltage is non-decreasing across intervals."""
    volts = schedule.voltage_matrix
    return bool(np.all(np.diff(volts, axis=0) >= -atol))


def _speeds(schedule: PeriodicSchedule, speed_of: Callable | None) -> np.ndarray:
    volts = schedule.voltage_matrix
    if speed_of is None:
        return volts
    return np.vectorize(speed_of, otypes=[float])(volts)


def throughput(
    schedule: PeriodicSchedule,
    speed_of: Callable[[float], float] | None = None,
) -> float:
    """Chip-wide throughput (eq. 5): mean speed per core over the period."""
    speeds = _speeds(schedule, speed_of)
    lengths = schedule.lengths
    total_work = float(np.sum(speeds * lengths[:, None]))
    return total_work / (schedule.n_cores * schedule.period)


def core_workloads(
    schedule: PeriodicSchedule,
    speed_of: Callable[[float], float] | None = None,
) -> np.ndarray:
    """Per-core work completed in one period: ``sum_q f_{i,q} * l_q``."""
    speeds = _speeds(schedule, speed_of)
    lengths = schedule.lengths
    return np.asarray((speeds * lengths[:, None]).sum(axis=0))


def same_workload(
    a: PeriodicSchedule,
    b: PeriodicSchedule,
    rtol: float = 1e-9,
) -> bool:
    """Whether two schedules complete the same per-core work per period.

    Requires equal periods (workload comparisons across different periods
    are rate comparisons — use :func:`throughput` for those).
    """
    if a.n_cores != b.n_cores:
        return False
    if abs(a.period - b.period) > rtol * max(a.period, b.period):
        return False
    return bool(
        np.allclose(core_workloads(a), core_workloads(b), rtol=rtol, atol=1e-12)
    )
