"""Schedule transforms: step-up reordering, m-oscillation, phase shifts.

* :func:`step_up` implements Definition 2 — per core, reorder its segments
  by non-decreasing voltage, then recombine.  Theorem 2 guarantees the
  result's stable-status peak upper-bounds the original's.
* :func:`m_oscillate` implements Definition 3 — compress every state
  interval by ``m`` (when the compressed pattern is repeated periodically
  this is exactly "divide each interval into m and interleave").
  Theorem 5: the peak temperature is non-increasing in ``m``.
* :func:`m_oscillate_core` oscillates a *single* core (the Fig. 2
  counterexample: this may *raise* the peak).
* :func:`shift_core` cyclically shifts one core's timeline (PCO's move).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.schedule.builders import from_core_timelines
from repro.schedule.intervals import CoreSegment, StateInterval
from repro.schedule.periodic import PeriodicSchedule, _rotate_segments

__all__ = [
    "step_up",
    "m_oscillate",
    "m_oscillate_core",
    "shift_core",
    "merge_adjacent",
]


def step_up(schedule: PeriodicSchedule) -> PeriodicSchedule:
    """The corresponding step-up schedule ``S_u(t)`` (Definition 2).

    Each core's segments are sorted by non-decreasing voltage
    (stable sort: equal-voltage segments keep their relative order),
    independently per core; the per-core timelines are then recombined
    into state intervals.
    """
    timelines = []
    for core in range(schedule.n_cores):
        segs = schedule.core_timeline(core, merge=True)
        segs = sorted(segs, key=lambda s: s.voltage)
        timelines.append(segs)
    return from_core_timelines(timelines)


def m_oscillate(schedule: PeriodicSchedule, m: int) -> PeriodicSchedule:
    """The m-oscillating schedule ``S(m, t)`` (Definition 3).

    Every state interval's length is scaled down by ``m`` with voltages
    unchanged.  Repeating the result periodically is equivalent to
    repeating the compressed pattern ``m`` times inside the original
    period, which is how the paper phrases it.
    """
    if m < 1 or int(m) != m:
        raise ScheduleError(f"m must be a positive integer, got {m}")
    if m == 1:
        return schedule
    return schedule.scaled(1.0 / int(m))


def m_oscillate_core(schedule: PeriodicSchedule, core: int, m: int) -> PeriodicSchedule:
    """Oscillate only one core ``m`` times faster (Fig. 2's experiment).

    The chosen core's timeline is compressed by ``m`` and repeated ``m``
    times within the unchanged period; all other cores keep their
    schedules.  The paper shows this does **not** necessarily reduce the
    peak temperature — only chip-wide oscillation (Theorem 5) does.
    """
    if m < 1 or int(m) != m:
        raise ScheduleError(f"m must be a positive integer, got {m}")
    if not (0 <= core < schedule.n_cores):
        raise ScheduleError(f"core {core} out of range [0, {schedule.n_cores})")
    m = int(m)
    timelines = []
    for c in range(schedule.n_cores):
        segs = schedule.core_timeline(c, merge=True)
        if c == core and m > 1:
            cycle = [CoreSegment(length=s.length / m, voltage=s.voltage) for s in segs]
            segs = cycle * m
        timelines.append(segs)
    return from_core_timelines(timelines)


def shift_core(schedule: PeriodicSchedule, core: int, offset: float) -> PeriodicSchedule:
    """Cyclically shift one core's timeline *later* by ``offset`` seconds.

    Used by PCO to interleave high-power phases across cores spatially.
    The per-core workload (and hence throughput) is unchanged.
    """
    if not (0 <= core < schedule.n_cores):
        raise ScheduleError(f"core {core} out of range [0, {schedule.n_cores})")
    timelines = []
    for c in range(schedule.n_cores):
        segs = schedule.core_timeline(c, merge=False)
        if c == core:
            segs = _rotate_segments(segs, float(offset))
        timelines.append(segs)
    return from_core_timelines(timelines)


def merge_adjacent(schedule: PeriodicSchedule) -> PeriodicSchedule:
    """Coalesce consecutive state intervals with identical voltage vectors."""
    merged: list[StateInterval] = []
    for iv in schedule.intervals:
        if merged and merged[-1].voltages == iv.voltages:
            merged[-1] = StateInterval(
                length=merged[-1].length + iv.length, voltages=iv.voltages
            )
        else:
            merged.append(iv)
    return PeriodicSchedule(tuple(merged))
