"""Periodic multi-core schedules: representation, builders, transforms."""

from repro.schedule.intervals import StateInterval, CoreSegment
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.builders import (
    from_core_timelines,
    constant_schedule,
    two_mode_schedule,
    phase_schedule,
    random_schedule,
    random_stepup_schedule,
)
from repro.schedule.transforms import (
    step_up,
    m_oscillate,
    m_oscillate_core,
    shift_core,
    merge_adjacent,
)
from repro.schedule.properties import (
    is_step_up,
    throughput,
    core_workloads,
    same_workload,
)

__all__ = [
    "StateInterval",
    "CoreSegment",
    "PeriodicSchedule",
    "from_core_timelines",
    "constant_schedule",
    "two_mode_schedule",
    "phase_schedule",
    "random_schedule",
    "random_stepup_schedule",
    "step_up",
    "m_oscillate",
    "m_oscillate_core",
    "shift_core",
    "merge_adjacent",
    "is_step_up",
    "throughput",
    "core_workloads",
    "same_workload",
]
