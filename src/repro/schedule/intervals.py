"""Primitive schedule pieces: state intervals and per-core segments.

A **state interval** (section II-A) is a stretch of time in which *every*
core holds a fixed running mode; a periodic schedule is a sequence of
them.  A **core segment** is the per-core view: one core holding one
voltage for some duration.  Builders convert between the two
(:func:`repro.schedule.builders.from_core_timelines`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError

__all__ = ["StateInterval", "CoreSegment", "MIN_INTERVAL"]

#: Durations below this (seconds) are treated as degenerate and rejected or
#: dropped by builders.  Far below any DVFS-relevant timescale.
MIN_INTERVAL = 1e-12


@dataclass(frozen=True)
class StateInterval:
    """One state interval: every core pinned to a voltage for ``length`` s.

    Attributes
    ----------
    length:
        Duration in seconds (strictly positive).
    voltages:
        Tuple of per-core supply voltages (0.0 = idle core).
    """

    length: float
    voltages: tuple[float, ...]

    def __post_init__(self) -> None:
        if not np.isfinite(self.length) or self.length < MIN_INTERVAL:
            raise ScheduleError(
                f"state interval length must be >= {MIN_INTERVAL}, got {self.length}"
            )
        volts = tuple(float(v) for v in self.voltages)
        if len(volts) == 0:
            raise ScheduleError("state interval needs at least one core")
        if any(v < 0 or not np.isfinite(v) for v in volts):
            raise ScheduleError(f"voltages must be finite and >= 0, got {volts}")
        object.__setattr__(self, "length", float(self.length))
        object.__setattr__(self, "voltages", volts)

    @property
    def n_cores(self) -> int:
        """Number of cores this interval describes."""
        return len(self.voltages)

    def with_length(self, length: float) -> "StateInterval":
        """Copy with a different duration (used by the m-oscillating scale)."""
        return StateInterval(length=length, voltages=self.voltages)

    def with_voltage(self, core: int, v: float) -> "StateInterval":
        """Copy with one core's voltage replaced."""
        if not (0 <= core < self.n_cores):
            raise ScheduleError(f"core {core} out of range [0, {self.n_cores})")
        volts = list(self.voltages)
        volts[core] = float(v)
        return StateInterval(length=self.length, voltages=tuple(volts))


@dataclass(frozen=True)
class CoreSegment:
    """One core holding one voltage for ``length`` seconds."""

    length: float
    voltage: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.length) or self.length < MIN_INTERVAL:
            raise ScheduleError(
                f"segment length must be >= {MIN_INTERVAL}, got {self.length}"
            )
        if self.voltage < 0 or not np.isfinite(self.voltage):
            raise ScheduleError(f"segment voltage must be finite >= 0, got {self.voltage}")
        object.__setattr__(self, "length", float(self.length))
        object.__setattr__(self, "voltage", float(self.voltage))
