"""The periodic multi-core schedule ``S(t)`` of the paper.

A :class:`PeriodicSchedule` is an ordered sequence of
:class:`~repro.schedule.intervals.StateInterval` objects, repeated forever.
It offers both views the paper works with:

* the *state-interval* view (``lengths``, ``voltage_matrix``) used by the
  thermal solvers, and
* the *per-core timeline* view (``core_timeline``) used by the step-up
  reordering (Definition 2) and the phase shifts of PCO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.intervals import MIN_INTERVAL, CoreSegment, StateInterval

__all__ = ["PeriodicSchedule"]


@dataclass(frozen=True)
class PeriodicSchedule:
    """An immutable periodic schedule over N cores.

    Attributes
    ----------
    intervals:
        Tuple of state intervals, all with the same core count.
    """

    intervals: tuple[StateInterval, ...]

    def __post_init__(self) -> None:
        ivs = tuple(self.intervals)
        if len(ivs) == 0:
            raise ScheduleError("a schedule needs at least one state interval")
        n = ivs[0].n_cores
        for q, iv in enumerate(ivs):
            if iv.n_cores != n:
                raise ScheduleError(
                    f"interval {q} has {iv.n_cores} cores, expected {n}"
                )
        object.__setattr__(self, "intervals", ivs)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.intervals[0].n_cores

    @property
    def n_intervals(self) -> int:
        """Number of state intervals ``z``."""
        return len(self.intervals)

    @property
    def period(self) -> float:
        """Schedule period ``t_p`` in seconds."""
        return float(sum(iv.length for iv in self.intervals))

    @property
    def lengths(self) -> np.ndarray:
        """``(z,)`` interval durations."""
        return np.array([iv.length for iv in self.intervals])

    @property
    def voltage_matrix(self) -> np.ndarray:
        """``(z, n_cores)`` voltage of each core in each state interval."""
        return np.array([iv.voltages for iv in self.intervals])

    @property
    def boundaries(self) -> np.ndarray:
        """``(z + 1,)`` cumulative scheduling points ``t_0=0 .. t_z=t_p``."""
        return np.concatenate([[0.0], np.cumsum(self.lengths)])

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def core_timeline(self, core: int, merge: bool = True) -> list[CoreSegment]:
        """Per-core view: the sequence of (length, voltage) segments.

        With ``merge`` (default) consecutive segments at the same voltage
        are coalesced, which is the natural per-core decomposition the
        paper's Definition 2 reorders.
        """
        if not (0 <= core < self.n_cores):
            raise ScheduleError(f"core {core} out of range [0, {self.n_cores})")
        segs: list[CoreSegment] = []
        for iv in self.intervals:
            v = iv.voltages[core]
            if merge and segs and abs(segs[-1].voltage - v) < 1e-12:
                segs[-1] = CoreSegment(length=segs[-1].length + iv.length, voltage=v)
            else:
                segs.append(CoreSegment(length=iv.length, voltage=v))
        return segs

    def voltage_at(self, t: float) -> np.ndarray:
        """Voltage vector in effect at time ``t`` (wrapped into the period)."""
        period = self.period
        t = float(t) % period
        bounds = self.boundaries
        q = int(np.searchsorted(bounds, t, side="right") - 1)
        q = min(q, self.n_intervals - 1)
        return np.asarray(self.intervals[q].voltages)

    # ------------------------------------------------------------------
    # edits (return new schedules)
    # ------------------------------------------------------------------

    def with_interval(self, q: int, interval: StateInterval) -> "PeriodicSchedule":
        """Copy with state interval ``q`` replaced."""
        if not (0 <= q < self.n_intervals):
            raise ScheduleError(f"interval {q} out of range [0, {self.n_intervals})")
        if interval.n_cores != self.n_cores:
            raise ScheduleError(
                f"replacement has {interval.n_cores} cores, expected {self.n_cores}"
            )
        ivs = list(self.intervals)
        ivs[q] = interval
        return PeriodicSchedule(tuple(ivs))

    def scaled(self, factor: float) -> "PeriodicSchedule":
        """Copy with every interval length multiplied by ``factor``."""
        if factor <= 0:
            raise ScheduleError(f"scale factor must be > 0, got {factor}")
        return PeriodicSchedule(
            tuple(iv.with_length(iv.length * factor) for iv in self.intervals)
        )

    def rotated(self, offset: float) -> "PeriodicSchedule":
        """Copy with the whole schedule cyclically shifted by ``offset`` s.

        Rotation does not change the stable-status peak temperature (it
        relabels the period start) but is useful for aligning comparisons.
        """
        from repro.schedule.builders import from_core_timelines

        period = self.period
        offset = float(offset) % period
        if offset < MIN_INTERVAL:
            return self
        timelines = []
        for core in range(self.n_cores):
            timelines.append(_rotate_segments(self.core_timeline(core, merge=False), offset))
        return from_core_timelines(timelines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeriodicSchedule(z={self.n_intervals}, n_cores={self.n_cores}, "
            f"period={self.period:.6g}s)"
        )


def _rotate_segments(segs: list[CoreSegment], offset: float) -> list[CoreSegment]:
    """Cyclically shift a per-core timeline *later* by ``offset`` seconds."""
    period = sum(s.length for s in segs)
    offset = offset % period
    cut = period - offset  # old-time instant that becomes the new period start
    head: list[CoreSegment] = []  # old content in [0, cut): plays second
    tail: list[CoreSegment] = []  # old content in [cut, period): plays first
    t = 0.0
    for seg in segs:
        start, end = t, t + seg.length
        before = min(end, cut) - start
        if before >= MIN_INTERVAL:
            head.append(CoreSegment(length=before, voltage=seg.voltage))
        after = end - max(start, cut)
        if after >= MIN_INTERVAL:
            tail.append(CoreSegment(length=after, voltage=seg.voltage))
        t = end
    return tail + head
