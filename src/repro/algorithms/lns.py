"""LNS — the lower-neighboring-speed baseline (section III).

Compute the ideal continuous voltages, then round each core *down* to the
nearest available discrete level.  Monotonicity of the thermal map makes
the rounded point always feasible, but with few levels the loss can be
large — this is the pessimism the paper's motivation example quantifies.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import continuous_assignment
from repro.engine import ThermalEngine, engine_entrypoint
from repro.schedule.builders import constant_schedule

__all__ = ["lns"]


@engine_entrypoint("LNS")
def lns(engine: ThermalEngine, period: float = 0.02) -> SchedulerResult:
    """Run the LNS baseline.

    Parameters
    ----------
    engine:
        The target platform (or its :class:`ThermalEngine`).
    period:
        Nominal period of the emitted (constant) schedule — it only labels
        the schedule object; a constant schedule's behaviour is
        period-independent.
    """
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    cont = continuous_assignment(engine.platform)
    voltages = np.array(
        [engine.ladder.lower_neighbor(v) for v in cont.voltages]
    )
    theta = engine.steady_state_cores(voltages)
    peak = float(theta.max())
    elapsed = time.perf_counter() - t0
    return SchedulerResult(
        name="LNS",
        schedule=constant_schedule(voltages, period=period),
        throughput=float(np.mean(voltages)),
        peak_theta=peak,
        feasible=bool(peak <= engine.theta_max + 1e-9),
        runtime_s=elapsed,
        details={"continuous_voltages": cont.voltages},
        stats=engine.stats_since(mark),
    )
