"""Uniform solver registry: name -> ``solve(engine, **params) -> SchedulerResult``.

Every scheduler in the repo — the paper's four comparison approaches plus
the auxiliary ones — registers here under a :class:`SolverSpec`, giving
experiments and the CLI one dispatch surface instead of per-module
imports and if/elif ladders.  All entry points share the same shape:

``spec.solve(platform_or_engine, **params) -> SchedulerResult``

where the first argument may be a bare :class:`~repro.platform.Platform`
or a shared :class:`~repro.engine.ThermalEngine` (passing one engine
across several solvers shares the model's caches and attributes the
instrumentation counters per run).

Two schedulers that historically returned something else are adapted:
``continuous`` (the ideal relaxation, a :class:`ContinuousAssignment`)
and ``minpeak`` (the fixed-workload dual, a :class:`MinPeakResult`) are
wrapped so they too emit a :class:`SchedulerResult` here; their native
entry points remain available unchanged.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace

import numpy as np

from repro.algorithms.ao import ao
from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.control import (
    gain_scheduled_controller,
    integral_controller,
)
from repro.algorithms.dark import dark_silicon_ao
from repro.algorithms.exs import exs, exs_pruned
from repro.algorithms.lns import lns
from repro.algorithms.minpeak import minimize_peak
from repro.algorithms.pco import pco
from repro.algorithms.reactive import reactive_throttling
from repro.engine import ThermalEngine, engine_entrypoint
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    SolverError,
    ThermalModelError,
)
from repro.obs import METRICS, span
from repro.platform import Platform
from repro.safety.certificate import (
    DEFAULT_TOLERANCE,
    certify,
    claim_certificate,
)
from repro.safety.fallback import FALLBACK_CHAIN, run_fallback_hop
from repro.schedule.builders import constant_schedule

__all__ = [
    "MARGIN_POLICIES",
    "MARGIN_POLICY_CONDITION",
    "SolverSpec",
    "SOLVERS",
    "get_solver",
    "guarded_solve",
    "solve",
]


@engine_entrypoint("continuous")
def _solve_continuous(
    engine: ThermalEngine, period: float = 0.02
) -> SchedulerResult:
    """The ideal continuous relaxation, wrapped as a ``SchedulerResult``.

    The emitted constant schedule uses the (generally off-ladder)
    continuous voltages — the upper bound AO chases, not something
    discrete hardware can run.
    """
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    cont = continuous_assignment(engine.platform)
    peak = float(engine.steady_state_cores(cont.voltages).max())
    elapsed = time.perf_counter() - t0
    return SchedulerResult(
        name="continuous",
        schedule=constant_schedule(cont.voltages, period=period),
        throughput=cont.throughput,
        peak_theta=peak,
        feasible=bool(peak <= engine.theta_max + 1e-9),
        runtime_s=elapsed,
        details={"clamped": cont.clamped, "core_theta": cont.core_theta},
        stats=engine.stats_since(mark),
    )


@engine_entrypoint("minpeak")
def _solve_minpeak(
    engine: ThermalEngine,
    target_speeds=None,
    period: float = 0.02,
    m_cap: int | None = None,
    m_step: int = 1,
) -> SchedulerResult:
    """The fixed-workload dual, wrapped as a ``SchedulerResult``.

    ``target_speeds`` defaults to the platform's ideal continuous
    voltages, so the bare call minimizes the peak of the workload AO
    would try to schedule.  ``feasible`` compares the minimized peak
    against the platform threshold — the dual itself does not enforce it.
    """
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    if target_speeds is None:
        target_speeds = continuous_assignment(engine.platform).voltages
    kwargs = {} if m_cap is None else {"m_cap": m_cap}
    mp = minimize_peak(
        engine, target_speeds, period=period, m_step=m_step, **kwargs
    )
    elapsed = time.perf_counter() - t0
    targets = np.asarray(mp.target_speeds, dtype=float)
    return SchedulerResult(
        name="minpeak",
        schedule=mp.schedule,
        throughput=float(np.mean(targets)),
        peak_theta=float(mp.peak.value),
        feasible=bool(mp.peak.value <= engine.theta_max + 1e-6),
        runtime_s=elapsed,
        details={
            "m": mp.m,
            "target_speeds": targets,
            "constant_bound_theta": mp.constant_bound_theta,
        },
        stats=engine.stats_since(mark),
    )


@dataclass(frozen=True)
class SolverSpec:
    """One registered scheduler.

    Attributes
    ----------
    name:
        Canonical registry key (also the lookup key, case-insensitive).
    func:
        The entry point, ``func(platform_or_engine, **params)``.
    description:
        One-line summary for ``repro list``.
    params:
        Names of the keyword parameters the solver accepts; :func:`solve`
        rejects anything else, and :func:`repro.experiments.comparison.run_cell`
        filters its common parameter pool through this set.
    quick:
        Parameter overrides for seconds-scale smoke runs (``--quick``).
    schedule_is_artifact:
        Whether ``result.schedule`` is the solver's actual output (so an
        independent peak evaluation of it must reproduce ``peak_theta``).
        False for ``reactive``, whose schedule is a pseudo-schedule
        summarizing a closed-loop simulation.
    """

    name: str
    func: Callable[..., SchedulerResult]
    description: str
    params: tuple[str, ...] = ()
    quick: Mapping[str, object] = field(default_factory=dict)
    schedule_is_artifact: bool = True

    def solve(
        self,
        platform: Platform | ThermalEngine,
        *,
        certify_tolerance: float | None = None,
        **params,
    ) -> SchedulerResult:
        """Run the solver after validating parameter names.

        Every result leaving the registry carries an independent
        :class:`~repro.safety.certificate.SafetyCertificate`: the
        schedule's peak is re-derived through the general MatEx search
        (a different route from the Theorem-1 fast path the solvers
        optimize with) and checked against the solver's own claims.
        Certification runs *after* the solver's counters were
        checkpointed, so ``result.stats`` attributes exactly the work
        the solver itself did.
        """
        unknown = set(params) - set(self.params)
        if unknown:
            raise SolverError(
                f"solver {self.name!r} does not accept "
                f"{sorted(unknown)}; valid parameters: {sorted(self.params)}"
            )
        engine = ThermalEngine.ensure(platform)
        result = self.func(engine, **params)
        return self.attach_certificate(engine, result, certify_tolerance)

    def attach_certificate(
        self,
        engine: ThermalEngine,
        result: SchedulerResult,
        tolerance: float | None = None,
    ) -> SchedulerResult:
        """Certify ``result`` and return a copy carrying the certificate.

        Solvers whose ``schedule`` field is the real artifact get the
        full independent re-derivation; closed-loop baselines
        (``schedule_is_artifact=False``) get a trace certificate — their
        pseudo-schedule summarizes a simulation, so re-deriving its peak
        would verify the wrong object.
        """
        tolerance = DEFAULT_TOLERANCE if tolerance is None else tolerance
        if self.schedule_is_artifact:
            cert = certify(
                engine,
                result.schedule,
                tolerance=tolerance,
                claimed_peak=result.peak_theta,
                claimed_feasible=result.feasible,
                claimed_throughput=result.throughput,
            )
        else:
            cert = claim_certificate(
                engine,
                result.peak_theta,
                claimed_feasible=result.feasible,
                tolerance=tolerance,
            )
        return replace(result, certificate=cert)


_AO_PARAMS = (
    "period", "m_cap", "m_step", "t_unit", "fill", "adaptive", "active_mask",
)

#: All registered schedulers, keyed by canonical name.
SOLVERS: dict[str, SolverSpec] = {
    spec.name: spec
    for spec in (
        SolverSpec(
            name="LNS",
            func=lns,
            description="lower-neighboring-speed rounding baseline",
            params=("period",),
        ),
        SolverSpec(
            name="EXS",
            func=exs,
            description="exhaustive constant-mode search (Algorithm 1)",
        ),
        SolverSpec(
            name="EXS-pruned",
            func=exs_pruned,
            description="monotonicity-pruned exact constant-mode search",
        ),
        SolverSpec(
            name="AO",
            func=ao,
            description="aligned oscillation (Algorithm 2)",
            params=_AO_PARAMS,
            quick={"m_cap": 16},
        ),
        SolverSpec(
            name="PCO",
            func=pco,
            description="phase-conscious oscillation (AO + spatial interleaving)",
            params=(
                "period", "m_cap", "m_step", "t_unit", "shift_grid", "adaptive",
            ),
            quick={"m_cap": 16, "shift_grid": 4},
        ),
        SolverSpec(
            name="dark",
            func=dark_silicon_ao,
            description="AO with greedy dark-silicon power gating",
            params=("max_dark", "explore_extra") + _AO_PARAMS,
            quick={"m_cap": 16},
        ),
        SolverSpec(
            name="reactive",
            func=reactive_throttling,
            description="reactive DTM threshold-throttling baseline",
            params=(
                "sensor_period", "guard_band", "horizon", "settle_fraction",
                "faults",
            ),
            schedule_is_artifact=False,
        ),
        SolverSpec(
            name="integral",
            func=integral_controller,
            description="per-core adjustable-gain integral DVFS controller",
            params=(
                "ki", "gain_scale", "gain_schedule", "hot_gain",
                "sensor_period", "reference_offset", "horizon",
                "settle_fraction", "faults",
            ),
            quick={"horizon": 0.02},
            schedule_is_artifact=False,
        ),
        SolverSpec(
            name="gain_sched",
            func=gain_scheduled_controller,
            description="integral controller with per-core gain scheduling",
            params=(
                "ki", "gain_scale", "hot_gain", "sensor_period",
                "reference_offset", "horizon", "settle_fraction", "faults",
            ),
            quick={"horizon": 0.02},
            schedule_is_artifact=False,
        ),
        SolverSpec(
            name="continuous",
            func=_solve_continuous,
            description="ideal continuous relaxation (upper bound)",
            params=("period",),
        ),
        SolverSpec(
            name="minpeak",
            func=_solve_minpeak,
            description="fixed-workload peak minimization (the dual)",
            params=("target_speeds", "period", "m_cap", "m_step"),
            quick={"m_cap": 16},
        ),
    )
}

_BY_LOWER = {name.lower(): name for name in SOLVERS}


def get_solver(name: str) -> SolverSpec:
    """Look a solver up by name (case-insensitive).

    Raises
    ------
    KeyError
        With the list of known solvers when the name is not registered.
    """
    canonical = _BY_LOWER.get(str(name).lower())
    if canonical is None:
        raise KeyError(
            f"unknown solver {name!r}; known solvers: {', '.join(SOLVERS)}"
        )
    return SOLVERS[canonical]


def solve(
    name: str, platform: Platform | ThermalEngine, **params
) -> SchedulerResult:
    """Dispatch ``name`` through the registry: lookup, validate, run."""
    return get_solver(name).solve(platform, **params)


#: Failures :func:`guarded_solve` degrades on (solver crashes and
#: numerical breakdowns).  :class:`~repro.errors.InfeasibleError` is
#: deliberately absent: "no feasible assignment exists" is a *correct
#: answer*, not a failure, and no fallback can contradict it.
_DEGRADABLE = (SolverError, ThermalModelError, np.linalg.LinAlgError)

#: Condition number of the thermal conductance system above which the
#: ``"shrink"`` margin policy distrusts the certified margin and
#: re-solves against a threshold tightened by the certificate's observed
#: reference-route disagreement.
MARGIN_POLICY_CONDITION = 1e3

#: Values :func:`guarded_solve` accepts for ``margin_policy``.
MARGIN_POLICIES = (None, "off", "shrink")


def guarded_solve(
    solver: str | SolverSpec,
    platform: Platform | ThermalEngine,
    *,
    certify_tolerance: float | None = None,
    fallback_period: float = 0.02,
    margin_policy: str | None = None,
    **params,
) -> SchedulerResult:
    """Run a solver with certificate gating and graceful degradation.

    The happy path is exactly :meth:`SolverSpec.solve`.  When the solver
    crashes (:class:`~repro.errors.SolverError`, a linear-algebra
    failure) or its certificate is rejected, the result is rebuilt by
    walking :data:`repro.safety.fallback.FALLBACK_CHAIN` — neighbor
    rounding, then the exact constant search, then the lowest-mode
    never-fails floor — until a hop yields a feasible, certified
    schedule.  Each hop is traced as a ``safety/fallback`` span and
    counted on the ``safety.fallback`` metric; the emitted result keeps
    the *requested* solver's name (grid assembly keys rows by it) and
    records what happened in ``details["fallback"]``.

    ``margin_policy="shrink"`` adds a post-hoc robustness pass for
    ill-conditioned platforms: when the conductance system's condition
    number is at least :data:`MARGIN_POLICY_CONDITION` and the
    certificate's two reference routes disagree, the solve is repeated
    against ``T_max`` shrunk by that observed disagreement, and the
    tightened result is kept if it stays feasible (re-certified against
    the *original* threshold, so the bought margin is visible).  The
    outcome — applied or not, and why — lands in
    ``details["margin_policy"]``.

    Raises
    ------
    InfeasibleError
        Propagated untouched — infeasibility is an answer, not a crash.
    """
    if margin_policy not in MARGIN_POLICIES:
        raise ConfigurationError(
            f"unknown margin_policy {margin_policy!r}; "
            f"expected one of {MARGIN_POLICIES}"
        )
    spec = solver if isinstance(solver, SolverSpec) else get_solver(solver)
    engine = ThermalEngine.ensure(platform)
    tolerance = DEFAULT_TOLERANCE if certify_tolerance is None else certify_tolerance
    result = _guarded(spec, engine, tolerance, fallback_period, params)
    if margin_policy != "shrink":
        return result
    return _apply_margin_policy(
        spec, engine, result, tolerance, fallback_period, params
    )


def _apply_margin_policy(
    spec: SolverSpec,
    engine: ThermalEngine,
    result: SchedulerResult,
    tolerance: float,
    fallback_period: float,
    params: Mapping,
) -> SchedulerResult:
    """The ``"shrink"`` margin policy: distrust margins when ill-conditioned.

    Tightens ``T_max`` by the certificate's observed reference-route
    disagreement and re-solves; keeps the original result whenever the
    platform is well conditioned, there is no disagreement, or the
    tightened problem turns out infeasible.
    """
    cond = float(engine.condition_number())
    cert = result.certificate
    disagreement = float(cert.disagreement) if cert is not None else 0.0
    record: dict = {
        "policy": "shrink",
        "applied": False,
        "condition_number": cond,
        "condition_threshold": MARGIN_POLICY_CONDITION,
        "disagreement": disagreement,
        "shrink_theta": 0.0,
    }
    if cond < MARGIN_POLICY_CONDITION:
        record["reason"] = "well conditioned"
        return replace(result, details={**result.details, "margin_policy": record})
    if disagreement <= 0.0:
        record["reason"] = "reference routes agree"
        return replace(result, details={**result.details, "margin_policy": record})
    shrunk_t_max = engine.platform.t_max_c - disagreement
    if shrunk_t_max <= engine.model.t_ambient_c:
        record["reason"] = "shrunk T_max would not exceed ambient"
        return replace(result, details={**result.details, "margin_policy": record})
    shrunk_engine = ThermalEngine.ensure(
        engine.platform.with_t_max(shrunk_t_max)
    )
    with span("safety/margin_policy", solver=spec.name, shrink=disagreement):
        METRICS.counter("safety.margin_policy").inc()
        try:
            tightened = _guarded(
                spec, shrunk_engine, tolerance, fallback_period, params
            )
        except InfeasibleError:
            record["reason"] = "tightened solve infeasible"
            return replace(
                result, details={**result.details, "margin_policy": record}
            )
    if not tightened.feasible:
        record["reason"] = "tightened solve infeasible"
        return replace(result, details={**result.details, "margin_policy": record})
    # Re-certify against the *original* threshold so the margin the
    # shrink bought is stated against the real T_max.
    final_cert = certify(
        engine,
        tightened.schedule,
        tolerance=tolerance,
        claimed_peak=tightened.peak_theta,
    )
    record["applied"] = True
    record["shrink_theta"] = disagreement
    record["tightened_t_max_c"] = float(shrunk_t_max)
    return replace(
        tightened,
        certificate=final_cert,
        feasible=bool(final_cert.feasible),
        details={**tightened.details, "margin_policy": record},
    )


def _guarded(
    spec: SolverSpec,
    engine: ThermalEngine,
    tolerance: float,
    fallback_period: float,
    params: Mapping,
) -> SchedulerResult:
    """The certificate-gated solve with fallback degradation."""
    failure: str
    try:
        result = spec.solve(engine, certify_tolerance=tolerance, **params)
    except InfeasibleError:
        raise
    except _DEGRADABLE as exc:
        failure = f"{type(exc).__name__}: {exc}"
    else:
        cert = result.certificate
        if cert is None or cert.accepted:
            return result
        failure = "certificate rejected: " + "; ".join(cert.reasons)

    hop_failures: dict[str, str] = {}
    last: SchedulerResult | None = None
    for hop in FALLBACK_CHAIN:
        METRICS.counter("safety.fallback").inc()
        with span("safety/fallback", solver=spec.name, hop=hop, failure=failure):
            try:
                degraded = run_fallback_hop(hop, engine, period=fallback_period)
            except _DEGRADABLE as exc:
                hop_failures[hop] = f"{type(exc).__name__}: {exc}"
                continue
        cert = certify(
            engine,
            degraded.schedule,
            tolerance=tolerance,
            claimed_peak=degraded.peak_theta,
            claimed_feasible=degraded.feasible,
            claimed_throughput=degraded.throughput,
        )
        last = replace(
            degraded,
            name=spec.name,
            certificate=cert,
            details={
                **degraded.details,
                "fallback": {
                    "requested": spec.name,
                    "hop": hop,
                    "failure": failure,
                    "hop_failures": dict(hop_failures),
                },
            },
        )
        if cert.accepted and last.feasible:
            return last
        hop_failures[hop] = (
            "infeasible" if cert.accepted else "; ".join(cert.reasons)
        )
    if last is not None:  # the floor built but is honestly infeasible
        return last
    raise SolverError(
        f"solver {spec.name!r} failed ({failure}) and every fallback hop "
        f"failed too: {hop_failures}"
    )
