"""Throughput-maximization algorithms: LNS, EXS, AO (Algorithm 2), PCO."""

from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import ContinuousAssignment, continuous_assignment
from repro.algorithms.lns import lns
from repro.algorithms.exs import exs, exs_pruned
from repro.algorithms.oscillation import (
    ModePlan,
    plan_modes,
    adjusted_high_ratios,
    build_oscillating_schedule,
    choose_m,
    effective_throughput,
)
from repro.algorithms.tpt import enforce_threshold, fill_headroom
from repro.algorithms.minpeak import MinPeakResult, minimize_peak
from repro.algorithms.ao import ao
from repro.algorithms.control import ControllerTrace, integral_controller
from repro.algorithms.dark import dark_silicon_ao
from repro.algorithms.reactive import reactive_throttling
from repro.algorithms.pco import pco
from repro.algorithms.registry import SOLVERS, SolverSpec, get_solver, solve

__all__ = [
    "SchedulerResult",
    "ContinuousAssignment",
    "continuous_assignment",
    "lns",
    "exs",
    "exs_pruned",
    "ModePlan",
    "plan_modes",
    "adjusted_high_ratios",
    "build_oscillating_schedule",
    "choose_m",
    "effective_throughput",
    "enforce_threshold",
    "fill_headroom",
    "MinPeakResult",
    "minimize_peak",
    "ao",
    "ControllerTrace",
    "integral_controller",
    "dark_silicon_ao",
    "reactive_throttling",
    "pco",
    "SOLVERS",
    "SolverSpec",
    "get_solver",
    "solve",
]
