"""Peak-temperature minimization at fixed workload (the dual of Problem 1).

Theorems 3-5 are statements about *minimizing the peak for a given
workload*: run each core at the constant speed matching its work if the
ladder offers it (Theorem 3); otherwise split between the two neighboring
modes (Theorem 4) and oscillate as fast as the transition overhead allows
(Theorem 5).  :func:`minimize_peak` operationalizes exactly that recipe —
the building block the workload layer (:mod:`repro.workload`) uses to
thermally qualify a task mapping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.oscillation import (
    DEFAULT_M_CAP,
    adjusted_high_ratios,
    build_oscillating_schedule,
    choose_m,
    plan_modes,
)
from repro.engine import ThermalEngine, engine_entrypoint
from repro.errors import SolverError
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.peak import PeakResult

__all__ = ["MinPeakResult", "minimize_peak"]


@dataclass(frozen=True)
class MinPeakResult:
    """Outcome of a fixed-workload peak minimization.

    Attributes
    ----------
    schedule:
        The emitted m-oscillating step-up schedule.
    peak:
        Its stable-status peak (exact engine).
    m:
        The chosen oscillation count.
    target_speeds:
        The per-core speeds the schedule realizes (net of overhead).
    constant_bound_theta:
        The unreachable lower bound: the peak if every core could run its
        continuous target speed exactly (Theorem 3's optimum).  The gap to
        ``peak`` is the discreteness penalty.
    runtime_s:
        Wall-clock seconds spent.
    """

    schedule: PeriodicSchedule
    peak: PeakResult
    m: int
    target_speeds: np.ndarray
    constant_bound_theta: float
    runtime_s: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"min-peak: {self.peak.value:.2f} K above ambient at m={self.m} "
            f"(constant-speed bound {self.constant_bound_theta:.2f} K, "
            f"discreteness penalty "
            f"{self.peak.value - self.constant_bound_theta:+.2f} K)"
        )


@engine_entrypoint()
def minimize_peak(
    engine: ThermalEngine,
    target_speeds,
    period: float = 0.02,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
) -> MinPeakResult:
    """Minimize the stable peak while each core delivers its target speed.

    Parameters
    ----------
    engine:
        The platform or its engine (``t_max_c`` is *not* enforced here —
        this is the unconstrained dual; callers compare ``result.peak``
        against their own threshold).
    target_speeds:
        Per-core average speeds (voltages) to sustain, each within the
        supported continuous range.
    period:
        Base period before oscillation.
    m_cap, m_step:
        Scan bounds for the oscillation count.

    Raises
    ------
    SolverError
        If a target speed lies outside the platform's speed range.
    """
    platform = engine.platform
    t0 = time.perf_counter()
    targets = np.atleast_1d(np.asarray(target_speeds, dtype=float))
    if targets.shape != (platform.n_cores,):
        raise SolverError(
            f"target_speeds must have shape ({platform.n_cores},), got {targets.shape}"
        )
    v_lo, v_hi = platform.ladder.v_min, platform.ladder.v_max
    active = targets > 0
    if np.any((targets[active] < v_lo - 1e-9) | (targets[active] > v_hi + 1e-9)):
        raise SolverError(
            f"target speeds must be 0 (idle) or within [{v_lo}, {v_hi}], "
            f"got {targets}"
        )

    # Theorem 3's (generally unreachable) bound: the continuous constant point.
    constant_bound = float(
        engine.steady_state_cores(np.clip(targets, 0.0, v_hi)).max()
    )

    plan = plan_modes(platform, targets)
    if not plan.oscillating.any():
        # Every target is a ladder level: the constant schedule is optimal.
        sched = build_oscillating_schedule(plan, plan.high_ratio, period, 1)
        peak = engine.general_peak(sched)
        return MinPeakResult(
            schedule=sched,
            peak=peak,
            m=1,
            target_speeds=targets,
            constant_bound_theta=constant_bound,
            runtime_s=time.perf_counter() - t0,
        )

    m_opt, sched, _history = choose_m(
        engine, plan, period, m_cap=m_cap, m_step=m_step
    )
    ratios = adjusted_high_ratios(platform, plan, m_opt, period)
    sched = build_oscillating_schedule(plan, ratios, period, m_opt)
    peak = engine.general_peak(sched)
    return MinPeakResult(
        schedule=sched,
        peak=peak,
        m=m_opt,
        target_speeds=targets,
        constant_bound_theta=constant_bound,
        runtime_s=time.perf_counter() - t0,
    )
