"""Common result type for all scheduling algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine import EngineStats
from repro.schedule.periodic import PeriodicSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.safety.certificate import SafetyCertificate

__all__ = ["SchedulerResult"]


@dataclass(frozen=True)
class SchedulerResult:
    """The outcome of a throughput-maximization run.

    Attributes
    ----------
    name:
        Algorithm identifier ("LNS", "EXS", "AO", "PCO", ...).
    schedule:
        The emitted periodic schedule.
    throughput:
        Chip-wide throughput per eq. (5), net of DVFS transition losses
        where the algorithm incurs them.
    peak_theta:
        Stable-status peak core temperature above ambient (K) as computed
        by the algorithm's own peak engine.
    feasible:
        Whether ``peak_theta`` respects the platform threshold.
    runtime_s:
        Wall-clock seconds the algorithm spent.
    details:
        Algorithm-specific extras (chosen m, mode plan, search statistics).
    stats:
        Thermal-engine counters attributed to this run
        (:class:`~repro.engine.EngineStats`) — steady-state solves, cache
        hit rates, batch sizes, per-phase wall time.  ``None`` when the
        algorithm ran outside an instrumented engine.
    certificate:
        Independent :class:`~repro.safety.certificate.SafetyCertificate`
        re-verifying the emitted schedule through a different numerical
        route.  Attached by the solver registry
        (:meth:`~repro.algorithms.registry.SolverSpec.solve`); ``None``
        when the solver entry point was called directly.
    """

    name: str
    schedule: PeriodicSchedule
    throughput: float
    peak_theta: float
    feasible: bool
    runtime_s: float = 0.0
    details: dict[str, Any] = field(default_factory=dict)
    stats: EngineStats | None = None
    certificate: "SafetyCertificate | None" = None

    def peak_celsius(self, t_ambient_c: float = 35.0) -> float:
        """Peak temperature in Celsius."""
        return self.peak_theta + t_ambient_c

    def summary(self) -> str:
        """Human-readable summary (plus the engine stats line when present)."""
        line = (
            f"{self.name}: THR={self.throughput:.4f}, "
            f"peak={self.peak_theta:.2f} K above ambient, "
            f"feasible={self.feasible}, {self.runtime_s * 1e3:.1f} ms"
        )
        if self.stats is not None:
            line += f"\n  engine: {self.stats.summary_line()}"
        if self.certificate is not None:
            line += f"\n  {self.certificate.summary()}"
        return line

    def mean_voltage(self) -> float:
        """Time-averaged voltage across cores (equals eq.-5 THR when f=v)."""
        sched = self.schedule
        volts = sched.voltage_matrix
        lengths = sched.lengths
        return float((volts * lengths[:, None]).sum() / (sched.n_cores * sched.period))
