"""The ideal continuous relaxation (section V's starting point).

Following Hanumaiah et al. [21], assume every core's stable-state
temperature sits exactly at ``T_max``.  Pinning the steady state of
eq. (2) at ``[T_max]_{Nx1}`` and solving for the implied heat injection
gives each core's power budget, and inverting ``psi`` gives the ideal
continuous voltage:

``v_i = psi^{-1}( q_i )``  with  ``q = (G - E_beta)[cores,:] theta*``.

When a budget falls outside the supported voltage range the core clamps
to the range end; clamped cores then no longer sit at ``T_max``, freeing
thermal headroom the remaining cores can absorb — we iterate the pinned
solve on the shrinking free set until no new clamps appear (at most N
rounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import ThermalEngine, as_platform
from repro.errors import SolverError
from repro.platform import Platform
from repro.util.linalg import solve_linear

__all__ = ["ContinuousAssignment", "continuous_assignment"]


@dataclass(frozen=True)
class ContinuousAssignment:
    """The ideal continuous operating point.

    Attributes
    ----------
    voltages:
        ``(n_cores,)`` ideal per-core supply voltages (clamped to the
        supported range).
    core_theta:
        ``(n_cores,)`` resulting steady-state core temperatures above
        ambient — ``theta_max`` for unclamped cores, lower for clamped
        ones.
    clamped:
        Boolean mask of cores whose budget hit the voltage range.
    throughput:
        Chip-wide throughput of this operating point (mean voltage).
    """

    voltages: np.ndarray
    core_theta: np.ndarray
    clamped: np.ndarray
    throughput: float


def continuous_assignment(
    platform: Platform | ThermalEngine,
    active_mask: np.ndarray | None = None,
) -> ContinuousAssignment:
    """Compute the ideal continuous per-core voltages for the platform.

    Parameters
    ----------
    active_mask:
        Optional boolean mask of cores allowed to run; masked-out cores
        are power-gated (v = 0) — the dark-silicon case.  Default: all
        cores active.

    Raises
    ------
    SolverError
        If the clamping iteration fails to settle within N rounds
        (cannot happen for monotone networks; defensive), or the platform
        is infeasible even at the minimum voltages.
    """
    platform = as_platform(platform)
    model = platform.model
    power = model.power
    n = platform.n_cores
    theta_max = platform.theta_max
    core_nodes = model.network.core_nodes
    g = model.g_eff

    v_lo, v_hi = power.v_min, power.v_max
    fixed_v = np.full(n, np.nan)  # NaN = still free (pinned at theta_max)
    if active_mask is not None:
        active_mask = np.asarray(active_mask, dtype=bool)
        if active_mask.shape != (n,):
            raise SolverError(
                f"active_mask must have shape ({n},), got {active_mask.shape}"
            )
        fixed_v[~active_mask] = 0.0  # power-gated from the start

    voltages: np.ndarray | None = None
    theta_cores: np.ndarray | None = None
    for _ in range(n + 1):
        free = np.isnan(fixed_v)
        if not free.any():
            voltages = fixed_v.copy()
            theta_cores = _steady_cores(model, voltages)
            break

        # Pin free cores at theta_max, hold clamped cores at their fixed
        # voltage, and solve for everything else.
        pinned_nodes = core_nodes[free]
        other_nodes = np.setdiff1d(np.arange(model.n_nodes), pinned_nodes)

        rhs = np.zeros(model.n_nodes)
        if (~free).any():
            # Full-length voltage vector (0 on free cores) so heterogeneous
            # per-core power models broadcast correctly; rows of pinned
            # cores are excluded from the solve, so their entries are inert.
            v_fixed_full = np.where(free, 0.0, fixed_v)
            rhs[core_nodes] = np.asarray(power.psi(v_fixed_full))

        g_oo = g[np.ix_(other_nodes, other_nodes)]
        g_op = g[np.ix_(other_nodes, pinned_nodes)]
        theta_other = solve_linear(
            g_oo, rhs[other_nodes] - g_op @ np.full(pinned_nodes.size, theta_max)
        )
        theta_full = np.empty(model.n_nodes)
        theta_full[pinned_nodes] = theta_max
        theta_full[other_nodes] = theta_other

        q_free = g[pinned_nodes, :] @ theta_full
        free_idx = np.where(free)[0]
        v_free = np.array(
            [
                power.psi_inverse_for(int(core), max(qi, 0.0))
                for core, qi in zip(free_idx, q_free)
            ]
        )

        newly_clamped = False
        for k, core in enumerate(free_idx):
            if v_free[k] > v_hi + 1e-12:
                fixed_v[core] = v_hi
                newly_clamped = True
            elif v_free[k] < v_lo - 1e-12:
                fixed_v[core] = v_lo
                newly_clamped = True
        if not newly_clamped:
            voltages = fixed_v.copy()
            voltages[free_idx] = v_free
            theta_cores = theta_full[core_nodes]
            break
    else:  # pragma: no cover - defensive
        raise SolverError("continuous relaxation failed to settle clamping")

    assert voltages is not None and theta_cores is not None

    # A core clamped at v_min whose ideal budget was below v_min injects
    # more heat than its share, pushing temperatures past theta_max even
    # though the pinned solve assumed otherwise.  Repair with a greedy
    # continuous reduction (the continuous analogue of the TPT loop):
    # repeatedly lower the voltage that cools the hottest core most per
    # unit of throughput until the constraint holds.
    if theta_cores.max() > theta_max + 1e-9:
        floor_v = np.full(n, v_lo)
        if active_mask is not None:
            floor_v[~active_mask] = 0.0
        if model.steady_state_cores(floor_v).max() > theta_max + 1e-9:
            raise SolverError(
                f"infeasible: even v_min on all active cores exceeds theta_max "
                f"({model.steady_state_cores(floor_v).max():.3f} > "
                f"{theta_max:.3f} K)"
            )
        voltages, theta_cores = _greedy_reduce(model, voltages, theta_max, v_lo)

    return ContinuousAssignment(
        voltages=voltages,
        core_theta=theta_cores,
        clamped=~np.isnan(fixed_v),
        throughput=float(np.mean(voltages)),
    )


def _greedy_reduce(
    model,
    voltages: np.ndarray,
    theta_max: float,
    v_lo: float,
    step: float = 2e-3,
    max_iter: int = 10_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Lower voltages greedily until the steady state respects theta_max.

    Sensitivities come from the thermal map's linearity: the hottest
    core's temperature drop per watt removed on core j is the (hot, j)
    entry of the steady-state response, and the watts per volt is
    ``psi'(v_j)`` — so each move picks ``argmax_j response[hot, j] *
    psi'(v_j)`` among cores above ``v_lo``.
    """
    power = model.power
    volts = voltages.copy()
    cores = model.network.core_nodes
    # Response of core temperatures to per-core unit injections.
    response = np.linalg.solve(model.g_eff, np.eye(model.n_nodes))[
        np.ix_(cores, cores)
    ]
    theta = model.steady_state_cores(volts)
    for _ in range(max_iter):
        if theta.max() <= theta_max + 1e-9:
            return volts, theta
        hot = int(np.argmax(theta))
        movable = volts > v_lo + 1e-12
        if not movable.any():  # pragma: no cover - guarded by the v_min check
            raise SolverError("greedy reduction exhausted all voltages")
        dpsi = power.alpha_lin + 3.0 * power.gamma * volts**2
        gain = response[hot, :] * dpsi
        gain[~movable] = -np.inf
        j = int(np.argmax(gain))
        volts[j] = max(v_lo, volts[j] - step)
        theta = model.steady_state_cores(volts)
    raise SolverError("greedy reduction did not converge")  # pragma: no cover


def _steady_cores(model, voltages: np.ndarray) -> np.ndarray:
    return model.steady_state_cores(voltages)
