"""Reactive DTM baseline: threshold throttling with a temperature sensor.

The paper's introduction contrasts its proactive (offline, guaranteed)
approach with reactive DTM — governors that throttle when a sensor reads
hot.  This module makes that comparison executable: a closed-loop
simulation of per-core threshold throttling with hysteresis on the same
thermal engine the proactive algorithms use.

The governor's dilemma, quantified here: sample-and-react always either
*overshoots* (the temperature keeps rising between sensor reads, so
``T_max`` is violated) or must keep a *guard band* below the threshold
(sacrificing throughput).  AO needs neither — its guarantee is computed
offline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.engine import ThermalEngine, engine_entrypoint
from repro.errors import SolverError
from repro.safety.faults import FaultSpec
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule
from repro.sim.engine import simulate_closed_loop

__all__ = ["ReactiveTrace", "reactive_throttling"]


@dataclass(frozen=True)
class ReactiveTrace:
    """Sampled closed-loop state of the reactive governor.

    Attributes
    ----------
    times:
        Sensor instants (s).
    temperatures:
        ``(n_samples, n_nodes)`` temperatures at the sensor instants.
    levels:
        ``(n_samples, n_cores)`` the voltage applied *after* each read.
    peak_theta:
        Hottest core temperature observed anywhere in the run (dense
        within-step maxima, not just at sensor instants).
    """

    times: np.ndarray
    temperatures: np.ndarray
    levels: np.ndarray
    peak_theta: float


@engine_entrypoint("reactive")
def reactive_throttling(
    engine: ThermalEngine,
    sensor_period: float = 1e-3,
    guard_band: float = 0.0,
    horizon: float | None = None,
    settle_fraction: float = 0.5,
    faults: FaultSpec | dict | None = None,
) -> SchedulerResult:
    """Simulate a per-core reactive threshold governor.

    Policy (per sensor read, per core): if the core reads above
    ``T_max - guard_band``, step one ladder level down; if it reads below
    the re-raise threshold (one guard band lower still), step one level
    up.  Classic hysteresis throttling.

    Parameters
    ----------
    sensor_period:
        Time between sensor reads (reaction latency).
    guard_band:
        Kelvin below ``T_max`` at which throttling starts.  0 = throttle
        exactly at the limit (maximally aggressive, maximal overshoot).
    horizon:
        Simulated span (default: 60 sensor periods plus 8 thermal time
        constants, enough to reach the limit cycle).
    settle_fraction:
        Fraction of the horizon discarded as warm-up before throughput
        and peak statistics are taken.
    faults:
        Optional :class:`~repro.safety.faults.FaultSpec` (or its dict
        form) injected into the closed loop: the governor reacts to
        *perturbed* sensor readings (noise, dropout), a stuck DVFS core
        ignores its commands, and ambient drift raises the physical
        temperatures the statistics are taken over.  The paper's DTM
        dilemma, sharpened: an offline certificate is immune to all of
        this; the reactive loop is not.

    Returns
    -------
    SchedulerResult
        ``throughput`` is the time-averaged speed over the measurement
        window, ``peak_theta`` the true (dense) maximum over it;
        ``feasible`` reports whether ``T_max`` was respected —
        with ``guard_band = 0`` it typically is **not**, which is the
        point.  ``details["trace"]`` holds the :class:`ReactiveTrace`;
        ``details["overshoot_k"]`` the violation depth.
    """
    if sensor_period <= 0:
        raise SolverError(f"sensor_period must be > 0, got {sensor_period}")
    faults = FaultSpec.coerce(faults)
    mark = engine.checkpoint()
    model = engine.model
    ladder = engine.ladder
    n = engine.n_cores
    theta_max = engine.theta_max
    throttle_at = theta_max - guard_band
    raise_at = throttle_at - max(guard_band, 0.5)

    if horizon is None:
        horizon = 60 * sensor_period + 8.0 * model.slowest_time_constant
    n_steps = int(np.ceil(horizon / sensor_period))
    settle_steps = int(settle_fraction * n_steps)

    t0 = time.perf_counter()
    level_idx = np.full(n, len(ladder) - 1, dtype=int)  # start at full speed

    def policy(_step: int, reading: np.ndarray) -> np.ndarray:
        for i in range(n):
            if reading[i] > throttle_at and level_idx[i] > 0:
                level_idx[i] -= 1
            elif reading[i] < raise_at and level_idx[i] < len(ladder) - 1:
                level_idx[i] += 1
        return level_idx

    loop = simulate_closed_loop(
        model,
        ladder,
        policy,
        n_steps=n_steps,
        sensor_period=sensor_period,
        initial_levels=level_idx,
        settle_steps=settle_steps,
        faults=faults,
    )
    elapsed = time.perf_counter() - t0
    peak = loop.peak_theta
    trace = ReactiveTrace(
        times=loop.times,
        temperatures=loop.temperatures,
        levels=loop.levels,
        peak_theta=peak,
    )
    # Report the limit-cycle behaviour as a pseudo-schedule (the last
    # sensor period's level vector held constant) so SchedulerResult's
    # schedule field stays meaningful for inspection.
    schedule = PeriodicSchedule(
        (StateInterval(length=sensor_period, voltages=tuple(loop.levels[-1])),)
    )
    return SchedulerResult(
        name="Reactive",
        schedule=schedule,
        throughput=loop.throughput,
        peak_theta=peak,
        feasible=bool(peak <= theta_max + 1e-9),
        runtime_s=elapsed,
        details={
            "trace": trace,
            "overshoot_k": float(max(0.0, peak - theta_max)),
            "guard_band": guard_band,
            "sensor_period": sensor_period,
            "faults": faults.as_dict() if faults is not None else None,
        },
        stats=engine.stats_since(mark),
    )
