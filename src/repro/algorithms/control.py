"""Closed-loop integral-controller solver family (adjustable gain).

The reactive baseline throttles on a threshold; this module implements
the principled alternative: a per-core *integral* feedback controller in
the style of Rao et al.'s adjustable-gain thermal controllers
(arXiv:1507.06357).  Each core regulates its temperature error to a
reference just below ``theta_max`` by integrating the error and mapping
the integral state onto a continuous DVFS command, which is then
quantized onto the platform's discrete voltage ladder:

.. math::

    z_i(k+1) &= \\operatorname{clip}(z_i(k) + T_s\\, e_i(k),\\;
               z_i^{lo}, z_i^{hi}) \\\\
    u_i(k+1) &= u_{mid} + K_i\\, z_i(k+1)

with error ``e_i = theta_ref - reading_i`` (hot errors weighted by
``hot_gain`` — the safety asymmetry a thermal governor wants), and the
clamp bounds ``z^{lo/hi}`` chosen so the command exactly spans the
ladder — the classic anti-windup conditioning that keeps the integral
state bounded while the command saturates.

**Gain scheduling.**  The gains come from the platform physics rather
than hand tuning: for a first-order plant with time constant ``tau`` and
DC gain ``s = dtheta/dv``, the discrete-time integral gain
``1 / ((1 - exp(-T_s / tau)) * s * T_s)`` is the deadbeat choice — the
command increment that cancels the present error within one sensor
period, given that a period only realizes a ``1 - exp(-T_s/tau)``
fraction of the DC response.  The ``integral``
solver uses the platform's *dominant* (slowest) time constant for every
core; the ``gain_sched`` preset schedules per-core gains from each core
node's local time constant ``-1 / A_ii``, so thermally fast cores get
proportionally hotter gains.  Both scale by ``gain_scale`` and use
per-core DC gains measured from the coupled steady-state map.

On a 2-level ladder the quantized integral controller is an *online
oscillation synthesizer*: the integral state dithers the core between
the two levels with exactly the duty cycle that parks the temperature at
the reference — the closed-loop mirror of the paper's offline
oscillating schedules, which is what makes the comparison in the
``control`` experiment meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.engine import ThermalEngine, engine_entrypoint
from repro.errors import SolverError
from repro.obs import METRICS, span
from repro.safety.faults import FaultSpec
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule
from repro.sim.engine import simulate_closed_loop

__all__ = [
    "ControllerTrace",
    "dc_gain_vector",
    "scheduled_gains",
    "integral_controller",
]


@dataclass(frozen=True)
class ControllerTrace:
    """Sampled closed-loop state of the integral controller.

    Attributes
    ----------
    times:
        Sensor instants (s).
    temperatures:
        ``(n_samples, n_nodes)`` temperatures at the sensor instants.
    levels:
        ``(n_samples, n_cores)`` voltages actually applied per step
        (quantized commands, stuck-DVFS fault folded in).
    commands:
        ``(n_samples, n_cores)`` the continuous (pre-quantization)
        controller commands.
    integrals:
        ``(n_samples, n_cores)`` the anti-windup-clamped integral state.
    peak_theta:
        Hottest core temperature observed anywhere in the measurement
        window (dense within-step maxima, not just sensor samples).
    """

    times: np.ndarray
    temperatures: np.ndarray
    levels: np.ndarray
    commands: np.ndarray
    integrals: np.ndarray
    peak_theta: float


def dc_gain_vector(engine: "ThermalEngine") -> np.ndarray:
    """Per-core DC gain ``dtheta_i / dv_i`` of the coupled steady-state map.

    Measured by finite difference on the real (leakage-coupled) model:
    raise core ``i`` from the ladder floor to the ladder ceiling with
    every other core at the floor, and read off core ``i``'s steady-state
    response.  The cross-coupling a core's own ladder swing induces is
    included, which is what the feedback loop actually fights.
    """
    engine = ThermalEngine.ensure(engine)
    n = engine.n_cores
    v_lo, v_hi = engine.ladder.v_min, engine.ladder.v_max
    base = np.full(n, v_lo)
    theta_base = engine.steady_state_cores(base)
    gains = np.empty(n)
    for i in range(n):
        v = base.copy()
        v[i] = v_hi
        gains[i] = (engine.steady_state_cores(v)[i] - theta_base[i]) / (v_hi - v_lo)
    return gains


def scheduled_gains(
    engine: "ThermalEngine",
    sensor_period: float,
    *,
    per_core: bool = False,
    gain_scale: float = 1.0,
) -> np.ndarray:
    """Integral gains ``K_i`` (V per K·s) from the platform physics.

    ``K_i = gain_scale / ((1 - exp(-T_s / tau_i)) * s_i * T_s)`` — the
    deadbeat integral gain for a first-order plant with time constant
    ``tau_i`` and DC gain ``s_i``: one sensor period only realizes a
    ``1 - exp(-T_s/tau)`` fraction of the DC response, so the command
    increment that cancels a 1 K error within the next period is
    ``1 / ((1 - exp(-T_s/tau)) * s)`` volts.  With ``per_core=False``
    every core uses the dominant (slowest) model time constant; with
    ``per_core=True`` core ``i`` uses its node's local time constant
    ``-1 / A_ii`` (the gain-scheduling mode), so thermally fast cores —
    which realize more of their DC response per period — get
    proportionally gentler gains.
    """
    engine = ThermalEngine.ensure(engine)
    model = engine.model
    s = dc_gain_vector(engine)
    if per_core:
        core_nodes = model.network.core_nodes
        tau = -1.0 / np.diag(model.a)[core_nodes]
    else:
        tau = np.full(engine.n_cores, model.slowest_time_constant)
    return gain_scale / (-np.expm1(-sensor_period / tau) * s * sensor_period)


@engine_entrypoint("integral")
def integral_controller(
    engine: ThermalEngine,
    ki: float | tuple | None = None,
    gain_scale: float = 1.0,
    gain_schedule: bool = False,
    hot_gain: float = 2.0,
    sensor_period: float = 1e-3,
    reference_offset: float = 1.0,
    horizon: float | None = None,
    settle_fraction: float = 0.5,
    faults: FaultSpec | dict | None = None,
) -> SchedulerResult:
    """Simulate the per-core adjustable-gain integral DVFS controller.

    Parameters
    ----------
    ki:
        Explicit integral gain(s) in V per K·s — a scalar shared by all
        cores or one value per core.  ``None`` (default) derives the
        gains from the platform's thermal time constants and DC gains
        via :func:`scheduled_gains`.
    gain_scale:
        Multiplier on the derived gains (ignored when ``ki`` is given).
        1.0 is the deadbeat setting; smaller is more conservative.
    gain_schedule:
        Schedule per-core gains from each core's local time constant
        instead of the shared dominant one (the ``gain_sched`` registry
        preset sets this).
    hot_gain:
        Multiplier on *hot* errors (reading above the reference).  The
        asymmetry biases the loop toward safety: sensor noise then costs
        throughput rather than overshoot, and throughput degrades
        monotonically as noise grows.
    sensor_period:
        Time between sensor reads (and command updates).
    reference_offset:
        Kelvin below ``theta_max`` the loop regulates to — the closed
        loop's guard band.
    horizon:
        Simulated span (default: 60 sensor periods plus 8 thermal time
        constants, enough to settle into the limit cycle).
    settle_fraction:
        Fraction of the horizon discarded as warm-up before throughput
        and peak statistics are taken.
    faults:
        Optional :class:`~repro.safety.faults.FaultSpec` (or dict form)
        injected into the loop: the controller integrates *perturbed*
        readings (noise, dropout), a stuck DVFS core ignores its
        commands, ambient drift shrinks the real margin.

    Returns
    -------
    SchedulerResult
        ``throughput`` is the time-averaged speed over the measurement
        window, ``peak_theta`` the true (dense) maximum over it;
        ``details["trace"]`` holds the :class:`ControllerTrace`,
        ``details["gains"]`` the per-core gains used, and
        ``details["windup_z_bounds"]`` the anti-windup clamp interval.
    """
    if sensor_period <= 0:
        raise SolverError(f"sensor_period must be > 0, got {sensor_period}")
    if reference_offset < 0:
        raise SolverError(
            f"reference_offset must be >= 0, got {reference_offset}"
        )
    if gain_scale <= 0:
        raise SolverError(f"gain_scale must be > 0, got {gain_scale}")
    if hot_gain < 1.0:
        raise SolverError(
            f"hot_gain must be >= 1 (safety bias), got {hot_gain}"
        )
    faults = FaultSpec.coerce(faults)
    mark = engine.checkpoint()
    model = engine.model
    ladder = engine.ladder
    n = engine.n_cores
    theta_max = engine.theta_max
    theta_ref = theta_max - reference_offset

    if ki is None:
        gains = scheduled_gains(
            engine, sensor_period,
            per_core=gain_schedule, gain_scale=gain_scale,
        )
    else:
        gains = np.broadcast_to(np.asarray(ki, dtype=float), (n,)).copy()
        if np.any(gains <= 0):
            raise SolverError(f"ki must be > 0, got {np.asarray(ki)}")

    if horizon is None:
        horizon = 60 * sensor_period + 8.0 * model.slowest_time_constant
    n_steps = int(np.ceil(horizon / sensor_period))
    settle_steps = int(settle_fraction * n_steps)

    t0 = time.perf_counter()
    levels_arr = np.asarray(ladder.levels)
    v_lo, v_hi = ladder.v_min, ladder.v_max
    u_mid = 0.5 * (v_lo + v_hi)
    # Anti-windup: clamp the integral state so the command exactly spans
    # the ladder — the state cannot wind up past what actuation can do.
    z_lo = (v_lo - u_mid) / gains
    z_hi = (v_hi - u_mid) / gains
    midpoints = 0.5 * (levels_arr[1:] + levels_arr[:-1])

    z = z_hi.copy()  # start at full speed, like the reactive governor
    commands = np.empty((n_steps, n))
    integrals = np.empty((n_steps, n))
    # Step 0 applies the initial full-speed command.
    commands_prev = u_mid + gains * z
    clamped_steps = 0

    def policy(step: int, reading: np.ndarray) -> np.ndarray:
        nonlocal z, commands_prev, clamped_steps
        e = theta_ref - reading
        e = np.where(e < 0, hot_gain * e, e)
        raw = z + sensor_period * e
        z = np.clip(raw, z_lo, z_hi)
        if np.any(raw != z):
            clamped_steps += 1
        u = u_mid + gains * z
        commands[step] = commands_prev
        integrals[step] = z
        commands_prev = u
        return np.searchsorted(midpoints, u)

    with span(
        "controller/loop",
        n_steps=n_steps,
        gain_schedule=bool(gain_schedule),
        sensor_period=sensor_period,
    ):
        loop = simulate_closed_loop(
            model,
            ladder,
            policy,
            n_steps=n_steps,
            sensor_period=sensor_period,
            initial_levels=np.searchsorted(midpoints, commands_prev),
            settle_steps=settle_steps,
            faults=faults,
        )
    elapsed = time.perf_counter() - t0
    peak = loop.peak_theta
    overshoot = float(max(0.0, peak - theta_max))
    METRICS.counter("controller.runs").inc()
    METRICS.counter("controller.steps").inc(n_steps)
    METRICS.counter("controller.windup_clamped_steps").inc(clamped_steps)
    METRICS.histogram("controller.overshoot_k").observe(overshoot)

    trace = ControllerTrace(
        times=loop.times,
        temperatures=loop.temperatures,
        levels=loop.levels,
        commands=commands,
        integrals=integrals,
        peak_theta=peak,
    )
    # The settled limit cycle as a pseudo-schedule (the last sensor
    # period's level vector held constant) — same contract as reactive:
    # the schedule field summarizes the simulation, it is not the
    # artifact the closed loop "computed".
    schedule = PeriodicSchedule(
        (StateInterval(length=sensor_period, voltages=tuple(loop.levels[-1])),)
    )
    return SchedulerResult(
        name="GainSched" if gain_schedule else "Integral",
        schedule=schedule,
        throughput=loop.throughput,
        peak_theta=peak,
        feasible=bool(peak <= theta_max + 1e-9),
        runtime_s=elapsed,
        details={
            "trace": trace,
            "overshoot_k": overshoot,
            "gains": gains.tolist(),
            "gain_schedule": bool(gain_schedule),
            "hot_gain": float(hot_gain),
            "windup_z_bounds": (z_lo.tolist(), z_hi.tolist()),
            "windup_clamped_steps": int(clamped_steps),
            "theta_ref": float(theta_ref),
            "reference_offset": float(reference_offset),
            "sensor_period": sensor_period,
            "faults": faults.as_dict() if faults is not None else None,
        },
        stats=engine.stats_since(mark),
    )


@engine_entrypoint("gain_sched")
def gain_scheduled_controller(
    engine: ThermalEngine, **params
) -> SchedulerResult:
    """:func:`integral_controller` with per-core gain scheduling on.

    Registered as the ``gain_sched`` solver: identical loop, but each
    core's integral gain is scheduled from its own local thermal time
    constant instead of the shared dominant one.
    """
    result = integral_controller(engine, gain_schedule=True, **params)
    return replace(result, name="GainSched")
