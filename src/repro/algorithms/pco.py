"""PCO — phase-conscious oscillation (section VI-C).

AO constrains every candidate to be a step-up schedule so the peak is
cheap to verify; the price is purely *temporal* interleaving.  PCO starts
from AO's output and additionally interleaves *spatially*: each core's
cycle is phase-shifted so that neighbours' high-power bursts avoid
coinciding, which lowers the peak and frees headroom that a final ratio
fill converts back into throughput.

Shifted schedules are no longer step-up, so every candidate is priced with
the general MatEx-style peak search — this is why Table V shows PCO
consistently slower than AO.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.ao import ao, constant_floor_guard
from repro.algorithms.base import SchedulerResult
from repro.algorithms.oscillation import (
    DEFAULT_M_CAP,
    build_oscillating_schedule,
    effective_throughput,
    plan_modes,
)
from repro.algorithms.tpt import fill_headroom
from repro.engine import ThermalEngine, engine_entrypoint
from repro.schedule.transforms import shift_core

__all__ = ["pco"]


@engine_entrypoint("PCO")
def pco(
    engine: ThermalEngine,
    period: float = 0.02,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
    t_unit: float | None = None,
    shift_grid: int = 8,
    adaptive: bool = True,
) -> SchedulerResult:
    """Run PCO: AO, then per-core phase search, then headroom refill.

    Parameters
    ----------
    shift_grid:
        Number of candidate phase offsets per core (evenly spaced over the
        oscillation cycle).
    Other parameters are forwarded to :func:`repro.algorithms.ao.ao`.
    """
    platform = engine.platform
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    base = ao(
        engine,
        period=period,
        m_cap=m_cap,
        m_step=m_step,
        t_unit=t_unit,
        fill=False,
        adaptive=adaptive,
    )
    m_opt = base.details["m_opt"]
    ratios = np.asarray(base.details["final_high_ratio"], dtype=float)
    plan = plan_modes(platform, np.asarray(base.details["continuous_voltages"]))
    cycle = period / m_opt

    general_peak, general_peak_batch = engine.peak_fns(general=True)

    # Greedy sequential phase search: shift one core at a time, keep the
    # offset that minimizes the (general) stable peak.  Each core's whole
    # offset grid is priced as one batch.
    sched = build_oscillating_schedule(plan, ratios, period, m_opt)
    peak = general_peak(sched)
    shifts = [0.0] * platform.n_cores
    candidates = [k * cycle / shift_grid for k in range(shift_grid)]
    with engine.phase("pco/phase_search"):
        for core in range(platform.n_cores):
            best_off, best_val = 0.0, peak.value
            trials = [shift_core(sched, core, off) for off in candidates[1:]]
            for off, trial_peak in zip(candidates[1:], general_peak_batch(trials)):
                if trial_peak.value < best_val - 1e-12:
                    best_off, best_val = off, trial_peak.value
            if best_off > 0.0:
                sched = shift_core(sched, core, best_off)
                shifts[core] = best_off
                peak = general_peak(sched)

    # Refill the headroom the interleaving created (ratios grow under the
    # general peak engine, with the shifts re-applied on every rebuild).
    fill_iters = 0
    if peak.value < platform.theta_max - 1e-6 and plan.oscillating.any():
        with engine.phase("pco/fill"):
            ratios, sched, peak, fill_iters = fill_headroom(
                engine, plan, ratios, period, m_opt,
                t_unit=t_unit, peak_fn=general_peak,
                peak_batch_fn=general_peak_batch, adaptive=adaptive,
                shifts=shifts,
            )

    throughput = float(effective_throughput(sched, platform))
    peak_value = float(peak.value)
    # Same AO >= EXS safety net as ao(): never lose to the best constant
    # assignment reachable from the lower-neighbor floor.
    with engine.phase("pco/floor_guard"):
        sched, peak_value, throughput, floor_volts = constant_floor_guard(
            platform, plan, period, sched, peak_value, throughput
        )
    elapsed = time.perf_counter() - t0
    details = dict(base.details)
    details.update(
        {
            "shifts": shifts,
            "fill_iterations": fill_iters,
            "ao_runtime_s": base.runtime_s,
        }
    )
    if floor_volts is not None:
        details["constant_floor"] = floor_volts
    return SchedulerResult(
        name="PCO",
        schedule=sched,
        throughput=throughput,
        peak_theta=peak_value,
        feasible=bool(peak_value <= platform.theta_max + 1e-6),
        runtime_s=elapsed,
        details=details,
        stats=engine.stats_since(mark),
    )
