"""Dark-silicon scheduling: power-gate cores until the rest can run.

The paper's system model allows inactive cores (``v = f = 0``), and its
introduction cites the dark-silicon problem [7]; dense 3D stacks built
with :func:`repro.platform.platform_3d` make the case concrete — past a
certain layer count not even the all-``v_min`` configuration is thermally
feasible, so *some* cores must go dark.

:func:`dark_silicon_ao` searches the gating greedily: while the active set
is infeasible (or while gating improves throughput), switch off the core
with the worst thermal quality (steady-state self-heating per watt),
then run AO on the survivors.  Greedy-by-thermal-quality is not provably
optimal but matches how the continuous budget concentrates on
well-cooled cores.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.ao import ao
from repro.algorithms.base import SchedulerResult
from repro.engine import ThermalEngine, engine_entrypoint
from repro.errors import InfeasibleError, SolverError
from repro.platform import Platform

__all__ = ["dark_silicon_ao"]


def _thermal_quality_order(platform: Platform) -> np.ndarray:
    """Core indices sorted worst-cooled first (gate these first)."""
    model = platform.model
    cores = model.network.core_nodes
    response = np.linalg.solve(model.g_eff, np.eye(model.n_nodes))
    self_heating = np.diag(response[np.ix_(cores, cores)])
    return np.argsort(-self_heating)


@engine_entrypoint("dark")
def dark_silicon_ao(
    engine: ThermalEngine,
    max_dark: int | None = None,
    explore_extra: int = 1,
    **ao_kwargs,
) -> SchedulerResult:
    """AO with greedy power gating.

    Parameters
    ----------
    engine:
        The target platform (or its :class:`ThermalEngine`).
    max_dark:
        Maximum number of cores allowed to go dark
        (default: ``n_cores - 1``).
    explore_extra:
        After the first feasible active set is found, try gating this many
        *additional* cores and keep whichever result has the highest
        chip-wide throughput (gating can pay when a hot core's minimum
        speed costs its neighbours more than it contributes).
    **ao_kwargs:
        Forwarded to :func:`repro.algorithms.ao.ao`.

    Raises
    ------
    InfeasibleError
        If no active set (down to a single core) is feasible.
    """
    platform = engine.platform
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    n = platform.n_cores
    if max_dark is None:
        max_dark = n - 1
    order = _thermal_quality_order(platform)

    best: SchedulerResult | None = None
    found_at: int | None = None
    for dark_count in range(0, max_dark + 1):
        active = np.ones(n, dtype=bool)
        active[order[:dark_count]] = False
        try:
            result = ao(engine, active_mask=active, **ao_kwargs)
        except SolverError:
            continue  # this active set is thermally infeasible; gate more
        if found_at is None:
            found_at = dark_count
        if best is None or result.throughput > best.throughput + 1e-12:
            best = result
            best.details["dark_cores"] = sorted(int(c) for c in order[:dark_count])
        if found_at is not None and dark_count >= found_at + explore_extra:
            break

    if best is None:
        raise InfeasibleError(
            f"no active subset of up to {n} cores is feasible at "
            f"T_max={platform.t_max_c} C"
        )
    elapsed = time.perf_counter() - t0
    return SchedulerResult(
        name="AO-dark",
        schedule=best.schedule,
        throughput=best.throughput,
        peak_theta=best.peak_theta,
        feasible=best.feasible,
        runtime_s=elapsed,
        details=best.details,
        stats=engine.stats_since(mark),
    )
