"""Section V machinery: mode planning, overhead compensation, choosing m.

Pipeline (mirroring Algorithm 2's first half):

1. :func:`plan_modes` — from the ideal continuous voltages, pick the two
   neighboring discrete modes per core and the throughput-preserving time
   ratios (eq. (11), justified by Theorems 3/4).
2. :func:`adjusted_high_ratios` — stretch the high mode by ``delta`` per
   oscillation cycle to pay for the DVFS clock-halt ``tau`` (section V).
3. :func:`build_oscillating_schedule` — emit the m-oscillating *step-up*
   schedule: per cycle (period ``t_p / m``), every core runs low then high.
4. :func:`choose_m` — linear scan ``m = 1 .. M`` (the overhead bound of
   :class:`~repro.power.dvfs.TransitionOverhead`), evaluating each
   candidate's stable peak through the Theorem-1 fast path, and keeping
   the minimizer.  Without overhead the peak is monotone decreasing in
   ``m`` (Theorem 5); with overhead the high-ratio inflation turns the
   scan into a genuine tradeoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import ThermalEngine, as_platform
from repro.errors import SolverError
from repro.platform import Platform
from repro.schedule.builders import two_mode_schedule
from repro.schedule.periodic import PeriodicSchedule

__all__ = [
    "ModePlan",
    "plan_modes",
    "adjusted_high_ratios",
    "build_oscillating_schedule",
    "choose_m",
    "choose_m_grid",
    "effective_throughput",
]

#: Hard cap on the m scan, guarding against tau -> 0 blowing the bound up.
DEFAULT_M_CAP = 256


@dataclass(frozen=True)
class ModePlan:
    """Per-core two-neighboring-mode decomposition of a continuous point.

    Attributes
    ----------
    v_low, v_high:
        ``(n_cores,)`` chosen discrete modes (equal for constant cores).
    high_ratio:
        ``(n_cores,)`` fraction of time at ``v_high`` that reproduces the
        continuous throughput (eq. (11)), before overhead compensation.
    target_voltages:
        The continuous voltages the plan realizes.
    """

    v_low: np.ndarray
    v_high: np.ndarray
    high_ratio: np.ndarray
    target_voltages: np.ndarray

    @property
    def oscillating(self) -> np.ndarray:
        """Mask of cores that genuinely use two distinct modes."""
        return (self.v_high > self.v_low + 1e-12) & (self.high_ratio > 1e-12) & (
            self.high_ratio < 1 - 1e-12
        )

    @property
    def n_cores(self) -> int:
        """Number of cores planned."""
        return self.v_low.shape[0]


def plan_modes(platform: Platform | ThermalEngine, voltages: np.ndarray) -> ModePlan:
    """Decompose continuous voltages onto the platform's discrete ladder.

    A target of exactly 0 means the core idles (power-gated) and is planned
    as a constant zero-voltage mode.
    """
    platform = as_platform(platform)
    voltages = np.asarray(voltages, dtype=float)
    v_low = np.empty_like(voltages)
    v_high = np.empty_like(voltages)
    ratio = np.empty_like(voltages)
    for i, v in enumerate(voltages):
        if v == 0.0:
            v_low[i] = v_high[i] = 0.0
            ratio[i] = 1.0
            continue
        lo, hi, _r_l, r_h = platform.ladder.split_ratios(float(v))
        v_low[i], v_high[i], ratio[i] = lo, hi, r_h
    return ModePlan(
        v_low=v_low, v_high=v_high, high_ratio=ratio, target_voltages=voltages.copy()
    )


def adjusted_high_ratios(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    m: int,
    period: float,
) -> np.ndarray:
    """High-mode ratios inflated to pay the transition overhead at this m.

    Per period each oscillating core performs ``m`` cycles; each cycle
    needs ``delta_i`` extra high time (section V), so
    ``r_H' = r_H + m * delta_i / period``.  Ratios are clamped to 1; cores
    whose low interval cannot host the transitions any more are reported
    by :func:`max_m_bound` — callers should not exceed it.
    """
    platform = as_platform(platform)
    ratios = plan.high_ratio.copy()
    tau = platform.overhead.tau
    if tau == 0 or m <= 0:
        return ratios
    osc = plan.oscillating
    for i in np.where(osc)[0]:
        delta = platform.overhead.delta(plan.v_low[i], plan.v_high[i])
        ratios[i] = min(1.0, ratios[i] + m * delta / period)
    return ratios


def max_m_bound(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    period: float,
    cap: int = DEFAULT_M_CAP,
) -> int:
    """Chip-wide oscillation bound ``M = min_i M_i`` (section V), capped."""
    platform = as_platform(platform)
    cores = []
    for i in np.where(plan.oscillating)[0]:
        t_low = (1.0 - plan.high_ratio[i]) * period
        cores.append((t_low, float(plan.v_low[i]), float(plan.v_high[i])))
    m = platform.overhead.max_m(cores)
    return max(1, min(m, cap))


def build_oscillating_schedule(
    plan: ModePlan,
    high_ratio,
    period: float,
    m: int,
) -> PeriodicSchedule:
    """The m-oscillating step-up schedule for the given (possibly adjusted) ratios.

    One emitted period is a single cycle of length ``period / m`` — every
    core low first, then high — which repeated periodically realizes the
    paper's "divide each interval into m and interleave" schedule while
    staying step-up (Theorem 1 applies to each cycle).
    """
    if m < 1:
        raise SolverError(f"m must be >= 1, got {m}")
    cycle = period / m
    return two_mode_schedule(plan.v_low, plan.v_high, np.asarray(high_ratio), cycle)


def choose_m(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    period: float,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
    batch: bool = True,
) -> tuple[int, PeriodicSchedule, list[tuple[int, float]]]:
    """Linear scan over m; return the peak-minimizing oscillation count.

    Returns ``(m_opt, schedule_at_m_opt, history)`` where history holds
    the scanned ``(m, peak)`` pairs for diagnostics and Fig. 5-style plots.

    With ``batch`` (default) the whole sweep is priced through the batched
    stable-status engine in one call; ``batch=False`` keeps the scalar
    per-candidate loop (the two paths select the same m).
    """
    engine = ThermalEngine.ensure(platform)
    m_max = max_m_bound(engine, plan, period, cap=m_cap)
    candidates = list(range(1, m_max + 1, max(1, m_step)))
    schedules = [
        build_oscillating_schedule(
            plan, adjusted_high_ratios(engine, plan, m, period), period, m
        )
        for m in candidates
    ]
    if batch:
        peaks = [r.value for r in engine.stepup_peak_batch(schedules)]
    else:
        peaks = [engine.stepup_peak(sched).value for sched in schedules]
    return _select_m(candidates, schedules, peaks)


def _select_m(candidates, schedules, peaks):
    """Shared selection rule: first m whose peak strictly improves."""
    history: list[tuple[int, float]] = []
    best_m, best_peak, best_sched = 1, np.inf, None
    for m, sched, peak in zip(candidates, schedules, peaks):
        history.append((m, peak))
        if peak < best_peak - 1e-12:
            best_m, best_peak, best_sched = m, peak, sched
    assert best_sched is not None
    return best_m, best_sched, history


def choose_m_grid(
    targets,
    period: float,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
) -> list[tuple[int, PeriodicSchedule, list[tuple[int, float]]]]:
    """Run :func:`choose_m` for many (platform, plan) pairs in one grid call.

    Parameters
    ----------
    targets:
        Sequence of ``(platform_or_engine, plan)`` pairs.  Platforms may
        differ in core count and thermal model; all scans share ``period``,
        ``m_cap`` and ``m_step`` (the shape the comparison sweep needs).

    Returns
    -------
    One ``(m_opt, schedule, history)`` triple per target, in input order
    — identical to calling :func:`choose_m` per target, but every
    candidate across every platform is priced through one
    :func:`repro.thermal.grid.stepup_peak_temperature_grid` evaluation.
    """
    from repro.thermal.grid import stepup_peak_temperature_grid

    targets = list(targets)
    rows: list[tuple] = []  # (model, schedule) grid rows
    spans: list[tuple[ThermalEngine, list[int], list[PeriodicSchedule]]] = []
    for platform, plan in targets:
        engine = ThermalEngine.ensure(platform)
        m_max = max_m_bound(engine, plan, period, cap=m_cap)
        candidates = list(range(1, m_max + 1, max(1, m_step)))
        schedules = [
            build_oscillating_schedule(
                plan, adjusted_high_ratios(engine, plan, m, period), period, m
            )
            for m in candidates
        ]
        # Attribute the batched pricing to each target's engine so stats
        # stay comparable with the per-target scalar path.
        engine._count_batch(len(schedules))
        spans.append((engine, candidates, schedules))
        rows.extend((engine.model, sched) for sched in schedules)

    peaks = [r.value for r in stepup_peak_temperature_grid(rows, check=False)]

    out = []
    offset = 0
    for _engine, candidates, schedules in spans:
        span_peaks = peaks[offset : offset + len(schedules)]
        offset += len(schedules)
        out.append(_select_m(candidates, schedules, span_peaks))
    return out


def effective_throughput(
    schedule: PeriodicSchedule,
    platform: Platform | ThermalEngine,
    transitions_per_period: np.ndarray | None = None,
) -> float:
    """Eq.-5 throughput net of DVFS clock-halt losses.

    ``transitions_per_period[i]`` is the number of voltage switches core i
    performs per schedule period (2 for a two-mode cycle).  The work lost
    per switch is ``v * tau`` at the voltage ruling when the clock halts;
    following the paper's accounting we charge ``(v_H + v_L) * tau`` per
    up/down pair, i.e. ``tau * sum of the two voltages`` per two switches.
    """
    platform = as_platform(platform)
    volts = schedule.voltage_matrix
    lengths = schedule.lengths
    total_work = float((volts * lengths[:, None]).sum())
    tau = platform.overhead.tau
    if tau > 0:
        for i in range(schedule.n_cores):
            distinct = np.unique(volts[:, i])
            if distinct.size >= 2:
                pairs = 1.0  # one up/down pair per period for a two-mode cycle
                if transitions_per_period is not None:
                    pairs = transitions_per_period[i] / 2.0
                total_work -= pairs * tau * (distinct.max() + distinct.min())
    return total_work / (schedule.n_cores * schedule.period)
