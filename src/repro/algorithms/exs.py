"""EXS — exhaustive single-mode search (Algorithm 1).

Every core runs one constant discrete mode; enumerate all ``L^N``
assignments, keep the feasible one (steady state under ``T_max``) with the
highest total speed.  Two implementations:

* :func:`exs` — the paper's Algorithm 1, vectorized: steady states for
  whole batches of assignments are obtained with one Cholesky solve per
  batch (the factorization is shared), so even the 9-core x 5-level grid
  (~2M assignments) is tractable.  Complexity is still exponential — this
  is the Table V cost story.
* :func:`exs_pruned` — depth-first search exploiting monotonicity (raising
  any core's voltage raises every temperature) plus a throughput bound.
  Exact same answer, often orders of magnitude fewer evaluations; used by
  the ablation benchmark.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.engine import EngineStats, ThermalEngine, engine_entrypoint
from repro.errors import InfeasibleError
from repro.schedule.builders import constant_schedule

__all__ = ["exs", "exs_pruned"]

#: Assignments evaluated per vectorized batch (bounds peak memory).
BATCH = 65536


def _result(voltages: np.ndarray, peak: float, elapsed: float,
            name: str, evaluations: int,
            stats: EngineStats | None = None) -> SchedulerResult:
    return SchedulerResult(
        name=name,
        schedule=constant_schedule(voltages, period=0.02),
        throughput=float(np.mean(voltages)),
        peak_theta=float(peak),
        feasible=True,
        runtime_s=elapsed,
        details={"evaluations": evaluations},
        stats=stats,
    )


@engine_entrypoint("EXS")
def exs(engine: ThermalEngine) -> SchedulerResult:
    """The paper's Algorithm 1 (vectorized full enumeration).

    Raises
    ------
    InfeasibleError
        If not even the all-lowest assignment fits under ``T_max``.
    """
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    levels = np.asarray(engine.ladder.levels)
    n = engine.n_cores
    theta_max = engine.theta_max

    best_throughput = -np.inf
    best_voltages: np.ndarray | None = None
    best_peak = np.inf
    evaluations = 0

    combos = itertools.product(range(levels.size), repeat=n)
    while True:
        chunk = list(itertools.islice(combos, BATCH))
        if not chunk:
            break
        evaluations += len(chunk)
        volts = levels[np.asarray(chunk)]  # (batch, n)
        theta = engine.steady_state_batch(volts)  # (batch, n)
        peaks = theta.max(axis=1)
        feasible = peaks <= theta_max + 1e-9
        if not feasible.any():
            continue
        sums = volts.sum(axis=1)
        sums[~feasible] = -np.inf
        k = int(np.argmax(sums))
        if sums[k] > best_throughput:
            best_throughput = float(sums[k])
            best_voltages = volts[k]
            best_peak = float(peaks[k])

    elapsed = time.perf_counter() - t0
    if best_voltages is None:
        raise InfeasibleError(
            f"no constant assignment fits under theta_max={theta_max:.2f} K"
        )
    return _result(
        best_voltages, best_peak, elapsed, "EXS", evaluations,
        stats=engine.stats_since(mark),
    )


@engine_entrypoint("EXS-pruned")
def exs_pruned(engine: ThermalEngine) -> SchedulerResult:
    """Monotonicity-pruned exact search (same answer as :func:`exs`).

    DFS over cores assigns levels from high to low.  Two prunes:

    * *thermal*: a partial assignment is evaluated with all remaining
      cores at the lowest level; if that optimistic completion already
      violates ``T_max``, no completion is feasible (monotonicity).
    * *bound*: if the partial sum plus ``v_max`` for every unassigned core
      cannot beat the incumbent, the subtree is skipped.
    """
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    levels = sorted(engine.ladder.levels, reverse=True)
    n = engine.n_cores
    theta_max = engine.theta_max
    v_min, v_max = engine.ladder.v_min, engine.ladder.v_max

    best = {"sum": -np.inf, "voltages": None, "peak": np.inf, "evals": 0}
    assignment = np.full(n, v_min)

    def peak_of(volts: np.ndarray) -> float:
        best["evals"] += 1
        return float(engine.steady_state_cores(volts).max())

    def dfs(core: int, partial_sum: float) -> None:
        if partial_sum + (n - core) * v_max <= best["sum"] + 1e-12:
            return
        if core == n:
            peak = peak_of(assignment.copy())
            if peak <= theta_max + 1e-9 and partial_sum > best["sum"]:
                best["sum"] = partial_sum
                best["voltages"] = assignment.copy()
                best["peak"] = peak
            return
        for lvl in levels:
            assignment[core] = lvl
            # Optimistic completion: all remaining cores at the lowest level.
            optimistic = assignment.copy()
            optimistic[core + 1 :] = v_min
            if peak_of(optimistic) > theta_max + 1e-9:
                assignment[core] = v_min
                continue  # even the coolest completion fails; try a lower level
            dfs(core + 1, partial_sum + lvl)
        assignment[core] = v_min

    dfs(0, 0.0)
    elapsed = time.perf_counter() - t0
    if best["voltages"] is None:
        raise InfeasibleError(
            f"no constant assignment fits under theta_max={theta_max:.2f} K"
        )
    return _result(
        best["voltages"],
        best["peak"],
        elapsed,
        "EXS-pruned",
        best["evals"],
        stats=engine.stats_since(mark),
    )
