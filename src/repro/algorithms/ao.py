"""AO — aligned oscillation, the paper's Algorithm 2.

Steps (section V):

1. Ideal continuous voltages with the stable state pinned at ``T_max``
   (:mod:`repro.algorithms.continuous`).
2. Two neighboring discrete modes + throughput-preserving ratios per core
   (:func:`repro.algorithms.oscillation.plan_modes`, Theorems 3/4).
3. Linear scan for the oscillation count ``m`` under the transition-
   overhead bound ``M``, minimizing the Theorem-1 stable peak
   (:func:`repro.algorithms.oscillation.choose_m`).
4. TPT-guided ratio reduction until the peak respects ``T_max``
   (:func:`repro.algorithms.tpt.enforce_threshold`); when the chosen m
   leaves headroom instead, an optional symmetric fill consumes it.

Every intermediate schedule is step-up, so peaks are exact and cheap —
this is what buys the orders-of-magnitude speedup over EXS at scale.
"""

from __future__ import annotations

import time

from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import (
    DEFAULT_M_CAP,
    adjusted_high_ratios,
    build_oscillating_schedule,
    choose_m,
    effective_throughput,
    plan_modes,
)
from repro.algorithms.tpt import enforce_threshold, fill_headroom
from repro.platform import Platform
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

__all__ = ["ao"]


def ao(
    platform: Platform,
    period: float = 0.02,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
    t_unit: float | None = None,
    fill: bool = True,
    adaptive: bool = True,
    active_mask=None,
) -> SchedulerResult:
    """Run Algorithm 2 (AO) on the platform.

    Parameters
    ----------
    period:
        The base schedule period ``t_p`` before oscillation (the paper's
        motivation example uses 20 ms).
    m_cap, m_step:
        Bounds/stride of the linear m scan.
    t_unit:
        TPT time quantum (default: cycle/200).
    fill:
        Consume leftover headroom by growing ratios after the TPT loop.
    adaptive:
        Batch TPT quanta via local linearity (same fixed point, far fewer
        iterations); disable for the paper-literal loop.
    active_mask:
        Optional boolean mask of cores allowed to run; the rest are
        power-gated (dark silicon — see
        :func:`repro.algorithms.dark.dark_silicon_ao`).
    """
    t0 = time.perf_counter()
    cont = continuous_assignment(platform, active_mask=active_mask)
    plan = plan_modes(platform, cont.voltages)

    details: dict = {
        "continuous_voltages": cont.voltages,
        "v_low": plan.v_low,
        "v_high": plan.v_high,
        "base_high_ratio": plan.high_ratio,
    }

    if not plan.oscillating.any():
        # Every core hit a ladder level exactly: a constant schedule.
        sched = build_oscillating_schedule(plan, plan.high_ratio, period, 1)
        peak = stepup_peak_temperature(platform.model, sched, check=False)
        ratios = plan.high_ratio.copy()
        m_opt = 1
        tpt_iters = 0
        details["m_history"] = [(1, peak.value)]
    else:
        m_opt, sched, history = choose_m(
            platform, plan, period, m_cap=m_cap, m_step=m_step
        )
        details["m_history"] = history
        ratios = adjusted_high_ratios(platform, plan, m_opt, period)
        ratios, sched, peak, tpt_iters = enforce_threshold(
            platform, plan, ratios, period, m_opt,
            t_unit=t_unit, adaptive=adaptive,
        )

    fill_iters = 0
    if fill and peak.value < platform.theta_max - 1e-6 and plan.oscillating.any():
        ratios, sched, peak, fill_iters = fill_headroom(
            platform, plan, ratios, period, m_opt,
            t_unit=t_unit, adaptive=adaptive,
        )

    # Final safety verification with the exact engine: the step-up fast
    # path's grid scan can under-resolve a wrap-continuation hump by a few
    # hundredths of a Kelvin.  If the refined peak tops T_max, run one more
    # TPT pass priced with the exact engine.
    exact = peak_temperature(platform.model, sched, grid_per_interval=96)
    if exact.value > platform.theta_max + 1e-6 and plan.oscillating.any():
        def exact_fn(s):
            return peak_temperature(platform.model, s, grid_per_interval=96)

        ratios, sched, exact, extra = enforce_threshold(
            platform, plan, ratios, period, m_opt,
            t_unit=t_unit, adaptive=adaptive, peak_fn=exact_fn,
        )
        tpt_iters += extra
    peak = exact

    throughput = effective_throughput(sched, platform)
    elapsed = time.perf_counter() - t0
    details.update(
        {
            "m_opt": m_opt,
            "final_high_ratio": ratios,
            "tpt_iterations": tpt_iters,
            "fill_iterations": fill_iters,
        }
    )
    return SchedulerResult(
        name="AO",
        schedule=sched,
        throughput=float(throughput),
        peak_theta=float(peak.value),
        feasible=bool(peak.value <= platform.theta_max + 1e-6),
        runtime_s=elapsed,
        details=details,
    )
