"""AO — aligned oscillation, the paper's Algorithm 2.

Steps (section V):

1. Ideal continuous voltages with the stable state pinned at ``T_max``
   (:mod:`repro.algorithms.continuous`).
2. Two neighboring discrete modes + throughput-preserving ratios per core
   (:func:`repro.algorithms.oscillation.plan_modes`, Theorems 3/4).
3. Linear scan for the oscillation count ``m`` under the transition-
   overhead bound ``M``, minimizing the Theorem-1 stable peak
   (:func:`repro.algorithms.oscillation.choose_m`).
4. TPT-guided ratio reduction until the peak respects ``T_max``
   (:func:`repro.algorithms.tpt.enforce_threshold`); when the chosen m
   leaves headroom instead, an optional symmetric fill consumes it.

Every intermediate schedule is step-up, so peaks are exact and cheap —
this is what buys the orders-of-magnitude speedup over EXS at scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import (
    DEFAULT_M_CAP,
    ModePlan,
    adjusted_high_ratios,
    build_oscillating_schedule,
    choose_m,
    effective_throughput,
    plan_modes,
)
from repro.algorithms.tpt import enforce_threshold, fill_headroom
from repro.engine import ThermalEngine, as_platform, engine_entrypoint
from repro.platform import Platform
from repro.schedule.builders import constant_schedule
from repro.schedule.periodic import PeriodicSchedule

__all__ = ["ao", "best_constant_above", "constant_floor_guard"]


def best_constant_above(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    incumbent_sum: float,
) -> np.ndarray | None:
    """Best feasible constant assignment strictly beating ``incumbent_sum``.

    Monotonicity-pruned DFS (the :func:`repro.algorithms.exs.exs_pruned`
    structure) over the voltage ladder, seeded with two incumbents: the
    caller's throughput sum and the lower-neighbor floor ``plan.v_low``
    (feasible whenever the continuous assignment was, by monotonicity).
    With the incumbent at AO's own throughput the bound prune kills almost
    every subtree — AO usually dominates every constant assignment — so
    this guard costs a handful of cached steady-state solves unless a
    constant assignment genuinely wins.  Cores the plan power-gates
    (target voltage 0) stay gated.

    Returns the winning voltage vector, or ``None`` when nothing feasible
    beats the incumbent.
    """
    platform = as_platform(platform)
    model = platform.model
    theta_max = platform.theta_max
    levels = sorted(float(v) for v in platform.ladder.levels)
    v_min = levels[0]
    active = np.where(plan.target_voltages > 0.0)[0]
    n_active = active.size

    best_sum = float(incumbent_sum)
    best_volts: np.ndarray | None = None

    floor = plan.v_low.astype(float)
    if (
        float(model.steady_state_cores(floor).max()) <= theta_max + 1e-9
        and float(floor.sum()) > best_sum + 1e-12
    ):
        best_sum = float(floor.sum())
        best_volts = floor.copy()

    assignment = np.zeros(plan.n_cores)
    assignment[active] = v_min

    def feasible(volts: np.ndarray) -> bool:
        return float(model.steady_state_cores(volts).max()) <= theta_max + 1e-9

    def dfs(pos: int, partial_sum: float) -> None:
        nonlocal best_sum, best_volts
        remaining = n_active - pos
        if partial_sum + remaining * levels[-1] <= best_sum + 1e-12:
            return
        if pos == n_active:
            if feasible(assignment):
                best_sum = partial_sum
                best_volts = assignment.copy()
            return
        core = active[pos]
        for lvl in reversed(levels):
            assignment[core] = lvl
            # Optimistic completion: all remaining active cores at v_min.
            optimistic = assignment.copy()
            optimistic[active[pos + 1 :]] = v_min
            if not feasible(optimistic):
                assignment[core] = v_min
                continue
            dfs(pos + 1, partial_sum + lvl)
        assignment[core] = v_min

    if n_active:
        dfs(0, 0.0)
    elif best_volts is None and feasible(assignment) and 0.0 > best_sum + 1e-12:
        best_volts = assignment.copy()
    return best_volts


def constant_floor_guard(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    period: float,
    sched: PeriodicSchedule,
    peak_value: float,
    throughput: float,
) -> tuple[PeriodicSchedule, float, float, np.ndarray | None]:
    """Keep the better of the candidate schedule and the best constant one.

    Ratio adjustment can land an oscillating schedule marginally below the
    best feasible *constant* assignment (EXS's answer), breaking the
    paper's AO >= EXS ordering.  This guard searches the constant lattice
    above the schedule's own throughput (pruned hard by that incumbent)
    and swaps the winner in when one exists.

    Returns ``(schedule, peak_value, throughput, floor_voltages)`` with
    ``floor_voltages`` set only when the swap happened.
    """
    platform = as_platform(platform)
    floor_volts = best_constant_above(
        platform, plan, incumbent_sum=throughput * platform.n_cores
    )
    if floor_volts is None:
        return sched, peak_value, throughput, None
    floor_sched = constant_schedule(floor_volts, period=period)
    floor_throughput = float(effective_throughput(floor_sched, platform))
    floor_peak = float(platform.model.steady_state_cores(floor_volts).max())
    return floor_sched, floor_peak, floor_throughput, floor_volts


@engine_entrypoint("AO")
def ao(
    engine: ThermalEngine,
    period: float = 0.02,
    m_cap: int = DEFAULT_M_CAP,
    m_step: int = 1,
    t_unit: float | None = None,
    fill: bool = True,
    adaptive: bool = True,
    active_mask=None,
) -> SchedulerResult:
    """Run Algorithm 2 (AO) on the platform.

    Parameters
    ----------
    period:
        The base schedule period ``t_p`` before oscillation (the paper's
        motivation example uses 20 ms).
    m_cap, m_step:
        Bounds/stride of the linear m scan.
    t_unit:
        TPT time quantum (default: cycle/200).
    fill:
        Consume leftover headroom by growing ratios after the TPT loop.
    adaptive:
        Batch TPT quanta via local linearity (same fixed point, far fewer
        iterations); disable for the paper-literal loop.
    active_mask:
        Optional boolean mask of cores allowed to run; the rest are
        power-gated (dark silicon — see
        :func:`repro.algorithms.dark.dark_silicon_ao`).
    """
    platform = engine.platform
    mark = engine.checkpoint()
    t0 = time.perf_counter()
    with engine.phase("ao/continuous"):
        cont = continuous_assignment(platform, active_mask=active_mask)
        plan = plan_modes(platform, cont.voltages)

    details: dict = {
        "continuous_voltages": cont.voltages,
        "v_low": plan.v_low,
        "v_high": plan.v_high,
        "base_high_ratio": plan.high_ratio,
    }

    if not plan.oscillating.any():
        # Every core hit a ladder level exactly: a constant schedule.
        sched = build_oscillating_schedule(plan, plan.high_ratio, period, 1)
        peak = engine.stepup_peak(sched)
        ratios = plan.high_ratio.copy()
        m_opt = 1
        tpt_iters = 0
        details["m_history"] = [(1, peak.value)]
    else:
        with engine.phase("ao/choose_m"):
            # Grid-batched dispatch precomputes the m scan for a whole
            # (platform × schedule) grid and plants it as a hint; consume
            # it when present (one-shot), otherwise scan normally.  The
            # hint key pins every parameter the scan depends on.
            hinted = engine.take_hint("choose_m", (period, m_cap, m_step))
            if hinted is not None:
                m_opt, sched, history = hinted
            else:
                m_opt, sched, history = choose_m(
                    engine, plan, period, m_cap=m_cap, m_step=m_step
                )
        details["m_history"] = history
        ratios = adjusted_high_ratios(platform, plan, m_opt, period)
        with engine.phase("ao/tpt"):
            ratios, sched, peak, tpt_iters = enforce_threshold(
                engine, plan, ratios, period, m_opt,
                t_unit=t_unit, adaptive=adaptive,
            )

    fill_iters = 0
    if fill and peak.value < platform.theta_max - 1e-6 and plan.oscillating.any():
        with engine.phase("ao/fill"):
            ratios, sched, peak, fill_iters = fill_headroom(
                engine, plan, ratios, period, m_opt,
                t_unit=t_unit, adaptive=adaptive,
            )

    # Final safety verification with the exact engine: the step-up fast
    # path's grid scan can under-resolve a wrap-continuation hump by a few
    # hundredths of a Kelvin.  If the refined peak tops T_max, run one more
    # TPT pass priced with the exact engine.
    with engine.phase("ao/verify"):
        exact = engine.general_peak(sched, grid_per_interval=96)
        if exact.value > platform.theta_max + 1e-6 and plan.oscillating.any():
            exact_fn, exact_batch_fn = engine.peak_fns(
                general=True, grid_per_interval=96
            )
            ratios, sched, exact, extra = enforce_threshold(
                engine, plan, ratios, period, m_opt,
                t_unit=t_unit, adaptive=adaptive,
                peak_fn=exact_fn, peak_batch_fn=exact_batch_fn,
            )
            tpt_iters += extra
    peak_value = float(exact.value)

    # Restore the paper's AO >= EXS ordering: ratio adjustment can end
    # marginally below the best feasible constant assignment, in which
    # case the lower-neighbor floor wins and we emit it instead.
    throughput = float(effective_throughput(sched, platform))
    with engine.phase("ao/floor_guard"):
        sched, peak_value, throughput, floor_volts = constant_floor_guard(
            platform, plan, period, sched, peak_value, throughput
        )
    elapsed = time.perf_counter() - t0
    details.update(
        {
            "m_opt": m_opt,
            "final_high_ratio": ratios,
            "tpt_iterations": tpt_iters,
            "fill_iterations": fill_iters,
        }
    )
    if floor_volts is not None:
        details["constant_floor"] = floor_volts
    return SchedulerResult(
        name="AO",
        schedule=sched,
        throughput=throughput,
        peak_theta=peak_value,
        feasible=bool(peak_value <= platform.theta_max + 1e-6),
        runtime_s=elapsed,
        details=details,
        stats=engine.stats_since(mark),
    )
