"""TPT-guided ratio adjustment (Algorithm 2, lines 14-21) and headroom fill.

When the chosen m-oscillating schedule still tops ``T_max``, Algorithm 2
repeatedly converts high-mode time into low-mode time on the core with the
best *temperature-performance tradeoff*:

``TPT_i(j) = dT_i / (|v_{j,H} - v_{j,L}| * t_unit)``

— the reduction of the hottest core i's peak per unit of throughput
sacrificed on core j.  Linearity of the thermal system makes any core's
ratio a valid knob for any other core's temperature.

:func:`fill_headroom` runs the inverse move: when the peak sits *below*
``T_max`` (e.g. after PCO's phase interleaving), grow the high ratios,
always picking the core with the most throughput gained per degree of
headroom consumed.

Both loops support an adaptive step: the thermal response is locally
linear in the ratio perturbation, so we extrapolate how many ``t_unit``
quanta are needed and apply them in one batch, then re-verify — the
fixed-point answer matches the paper's one-unit-at-a-time loop while
cutting iterations by orders of magnitude (``adaptive=False`` restores
the literal loop).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.oscillation import ModePlan, build_oscillating_schedule
from repro.engine import PeakBatchFn, PeakFn, ThermalEngine
from repro.errors import ConvergenceError
from repro.platform import Platform
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.peak import PeakResult

__all__ = ["enforce_threshold", "fill_headroom"]


def enforce_threshold(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    ratios: np.ndarray,
    period: float,
    m: int,
    t_unit: float | None = None,
    peak_fn: PeakFn | None = None,
    peak_batch_fn: PeakBatchFn | None = None,
    adaptive: bool = True,
    max_iter: int = 100_000,
) -> tuple[np.ndarray, PeriodicSchedule, PeakResult, int]:
    """Shrink high ratios until the stable peak respects ``T_max``.

    Parameters
    ----------
    ratios:
        Starting per-core high ratios (overhead-adjusted); not mutated.
    period, m:
        The oscillation parameters — the emitted cycle lasts ``period/m``.
    t_unit:
        Ratio quantum expressed in seconds of the *cycle* (default:
        cycle/200).
    peak_fn:
        Peak engine (default: the Theorem-1 step-up fast path).
    peak_batch_fn:
        Batched peak engine pricing a whole candidate set per call
        (default: the batched Theorem-1 engine when ``peak_fn`` is unset,
        else a per-candidate loop over ``peak_fn``).  Every iteration
        submits all single-quantum trials as one batch.
    adaptive:
        Batch multiple quanta per move using local linearity.

    Returns
    -------
    (ratios, schedule, peak, iterations)

    Raises
    ------
    ConvergenceError
        If the loop cannot reach feasibility (every ratio exhausted) or
        runs out of iterations.
    """
    engine = ThermalEngine.ensure(platform)
    peak_fn, peak_batch_fn = engine.resolve_peak_fns(peak_fn, peak_batch_fn)
    cycle = period / m
    if t_unit is None:
        t_unit = cycle / 200.0
    unit_ratio = t_unit / cycle
    theta_max = engine.theta_max

    ratios = np.asarray(ratios, dtype=float).copy()
    movable = plan.v_high > plan.v_low + 1e-12

    sched = build_oscillating_schedule(plan, ratios, period, m)
    peak = peak_fn(sched)
    iterations = 0

    while peak.value > theta_max + 1e-9:
        if iterations >= max_iter:
            raise ConvergenceError(
                f"TPT loop exceeded {max_iter} iterations "
                f"(peak {peak.value:.3f} > {theta_max:.3f} K)"
            )
        hottest = peak.core
        best_j, best_tpt, best_drop = -1, -np.inf, 0.0
        movers = np.where(movable & (ratios > 1e-12))[0]
        trials = []
        for j in movers:
            trial = ratios.copy()
            trial[j] = max(0.0, trial[j] - unit_ratio)
            trials.append(build_oscillating_schedule(plan, trial, period, m))
        for j, trial_peak in zip(movers, peak_batch_fn(trials)):
            drop = peak.core_peaks[hottest] - trial_peak.core_peaks[hottest]
            tpt = drop / ((plan.v_high[j] - plan.v_low[j]) * t_unit)
            if tpt > best_tpt:
                best_j, best_tpt, best_drop = int(j), tpt, drop
        if best_j < 0:
            raise ConvergenceError(
                "no adjustable core left but the peak still exceeds T_max; "
                "the platform is infeasible even at the low modes"
            )

        steps = 1
        if adaptive and best_drop > 1e-12:
            needed = peak.value - theta_max
            # Undershoot the linear extrapolation slightly; the outer loop
            # re-verifies and tops up.  Cap each batch so the greedy
            # direction is re-evaluated at least every eighth of the
            # ratio range — otherwise one giant step can commit to a core
            # past the point where another became the better choice.
            steps = max(1, int(0.9 * needed / best_drop))
            steps = min(
                steps,
                int(ratios[best_j] / unit_ratio) + 1,
                max(1, int(0.125 / unit_ratio)),
            )
        ratios[best_j] = max(0.0, ratios[best_j] - steps * unit_ratio)
        sched = build_oscillating_schedule(plan, ratios, period, m)
        peak = peak_fn(sched)
        iterations += 1

    return ratios, sched, peak, iterations


def fill_headroom(
    platform: Platform | ThermalEngine,
    plan: ModePlan,
    ratios: np.ndarray,
    period: float,
    m: int,
    t_unit: float | None = None,
    peak_fn: PeakFn | None = None,
    peak_batch_fn: PeakBatchFn | None = None,
    adaptive: bool = True,
    max_iter: int = 100_000,
    shifts: list[float] | None = None,
) -> tuple[np.ndarray, PeriodicSchedule, PeakResult, int]:
    """Grow high ratios while the stable peak stays under ``T_max``.

    The symmetric move to :func:`enforce_threshold`: consumes thermal
    headroom for throughput, picking the core with the largest throughput
    gain per degree.  ``shifts`` (per-core phase offsets, used by PCO) are
    applied after rebuilding each candidate schedule; shifted schedules
    are no longer step-up, so supplying shifts without a ``peak_fn``
    falls back to the general peak engine (scalar and batched)
    automatically.  Candidate moves of one iteration are priced as a
    single batch through ``peak_batch_fn``.
    """
    engine = ThermalEngine.ensure(platform)
    # Shifted schedules are no longer step-up, so shifts without an
    # explicit peak engine select the general MatEx-style pair.
    needs_general = shifts is not None and any(off > 0 for off in shifts)
    peak_fn, peak_batch_fn = engine.resolve_peak_fns(
        peak_fn, peak_batch_fn, general=needs_general
    )
    cycle = period / m
    if t_unit is None:
        t_unit = cycle / 200.0
    unit_ratio = t_unit / cycle
    theta_max = engine.theta_max

    ratios = np.asarray(ratios, dtype=float).copy()
    movable = plan.v_high > plan.v_low + 1e-12

    def rebuild(r: np.ndarray) -> PeriodicSchedule:
        sched = build_oscillating_schedule(plan, r, period, m)
        if shifts is not None:
            from repro.schedule.transforms import shift_core

            for core, off in enumerate(shifts):
                if off > 0:
                    sched = shift_core(sched, core, off)
        return sched

    sched = rebuild(ratios)
    peak = peak_fn(sched)
    iterations = 0

    while peak.value <= theta_max - 1e-9 and iterations < max_iter:
        best_j, best_gain_rate, best_rise, best_trial = -1, -np.inf, 0.0, None
        movers = np.where(movable & (ratios < 1 - 1e-12))[0]
        trial_ratios, trial_scheds = [], []
        for j in movers:
            trial = ratios.copy()
            trial[j] = min(1.0, trial[j] + unit_ratio)
            trial_ratios.append(trial)
            trial_scheds.append(rebuild(trial))
        for j, trial, trial_sched, trial_peak in zip(
            movers, trial_ratios, trial_scheds, peak_batch_fn(trial_scheds)
        ):
            if trial_peak.value > theta_max + 1e-9:
                continue
            rise = max(trial_peak.value - peak.value, 1e-15)
            gain_rate = (plan.v_high[j] - plan.v_low[j]) / rise
            if gain_rate > best_gain_rate:
                best_j, best_gain_rate = int(j), gain_rate
                best_rise, best_trial = rise, (trial, trial_sched, trial_peak)
        if best_j < 0:
            break  # no single-quantum move stays feasible

        steps = 1
        if adaptive and best_rise > 1e-12:
            headroom = theta_max - peak.value
            steps = max(1, int(0.9 * headroom / best_rise))
            steps = min(
                steps,
                int((1.0 - ratios[best_j]) / unit_ratio),
                max(1, int(0.125 / unit_ratio)),
            )
        if steps <= 1:
            ratios, sched, peak = best_trial[0], best_trial[1], best_trial[2]
        else:
            trial = ratios.copy()
            trial[best_j] = min(1.0, trial[best_j] + steps * unit_ratio)
            trial_sched = rebuild(trial)
            trial_peak = peak_fn(trial_sched)
            if trial_peak.value <= theta_max + 1e-9:
                ratios, sched, peak = trial, trial_sched, trial_peak
            else:
                ratios, sched, peak = best_trial[0], best_trial[1], best_trial[2]
        iterations += 1

    return ratios, sched, peak, iterations
