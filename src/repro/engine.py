"""The shared thermal evaluation engine every solver drives.

Before this module, each scheduling algorithm took a bare
:class:`~repro.platform.Platform`, privately picked between the scalar
and batched peak kernels, and threaded them through ad-hoc
``peak_fn`` / ``peak_batch_fn`` keyword plumbing.  :class:`ThermalEngine`
centralizes that choice: it owns the bound
:class:`~repro.thermal.model.ThermalModel` (and with it the
steady-state and expm LRU caches), exposes the scalar *and* batched peak
engines behind one interface, and instruments everything — steady-state
solves, cache hit rates, expm applications, batch sizes, and per-phase
wall time — so every :class:`~repro.algorithms.base.SchedulerResult` can
report how much thermal work it cost (its ``stats`` field).

Solver bodies take a ``ThermalEngine`` directly; the
:func:`engine_entrypoint` decorator is the single coercion point that
still lets callers pass a bare ``Platform``
(:meth:`ThermalEngine.ensure` normalizes).  Passing one engine across
several solver runs (as :func:`repro.experiments.comparison.run_cell`
does) shares the model's caches between them, and
:meth:`ThermalEngine.checkpoint` / :meth:`ThermalEngine.stats_since`
attribute the counters to each run separately.

Instrumentation is layered on :mod:`repro.obs`: :meth:`ThermalEngine.phase`
opens a tracing span per named solver phase (and keeps feeding the
``phase_seconds`` counters of :class:`EngineStats` for backward
compatibility), and :func:`engine_entrypoint` wraps every solver run in
a ``solve/<name>`` root span carrying the run's thermal-work attributes.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs import METRICS, TRACER, span as obs_span
from repro.platform import Platform
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.batch import (
    peak_temperature_batch,
    periodic_steady_state_batch,
    stepup_peak_temperature_batch,
)
from repro.thermal.model import ThermalModel
from repro.thermal.peak import PeakResult, peak_temperature, stepup_peak_temperature

__all__ = [
    "EngineStats",
    "PeakBatchFn",
    "PeakFn",
    "ThermalEngine",
    "as_platform",
    "engine_entrypoint",
]

PeakFn = Callable[[PeriodicSchedule], PeakResult]
PeakBatchFn = Callable[[Sequence[PeriodicSchedule]], "list[PeakResult]"]


def as_platform(platform_or_engine: "Platform | ThermalEngine") -> Platform:
    """The underlying :class:`Platform` of either a platform or an engine."""
    if isinstance(platform_or_engine, ThermalEngine):
        return platform_or_engine.platform
    return platform_or_engine


def engine_entrypoint(name: str | None = None):
    """Decorate a solver so its body receives a :class:`ThermalEngine`.

    The decorated function keeps the public ``Platform | ThermalEngine``
    first argument — this is the one place the coercion happens, so
    solver bodies no longer repeat ``ThermalEngine.ensure`` (or
    isinstance checks) themselves.

    With a ``name``, the run is additionally wrapped in a
    ``solve/<name>`` tracing span whose attributes carry the run's
    thermal-work counters (steady-state solves, cache hit rate, expm
    applications, batch shape).  While tracing is disabled the wrapper
    costs one attribute check beyond the coercion.
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(platform: "Platform | ThermalEngine", *args, **kwargs):
            engine = ThermalEngine.ensure(platform)
            if name is None or not TRACER.enabled:
                return func(engine, *args, **kwargs)
            mark = engine.checkpoint()
            with obs_span(f"solve/{name}") as sp:
                try:
                    return func(engine, *args, **kwargs)
                finally:
                    st = engine.stats_since(mark)
                    sp.set_attrs(
                        solver=name,
                        ss_solves=st.steady_state_solves,
                        ss_cache_hits=st.steady_state_cache_hits,
                        ss_batch_rows=st.steady_state_batch_rows,
                        cache_hit_rate=round(st.cache_hit_rate, 4),
                        expm_applications=st.expm_applications,
                        peak_evals=st.peak_evals,
                        batch_calls=st.batch_calls,
                        batch_candidates=st.batch_candidates,
                        max_batch=st.max_batch,
                    )

        return wrapper

    return decorate


@dataclass(frozen=True)
class EngineStats:
    """Thermal-work counters accumulated over a span of engine use.

    Attributes
    ----------
    steady_state_solves:
        Cholesky back-substitutions for single steady states (cache misses).
    steady_state_cache_hits:
        Steady-state requests served from the model's LRU.
    steady_state_batch_rows:
        Voltage vectors resolved through ``steady_state_batch`` (EXS path).
    expm_applications:
        Vector propagations through ``expm(A t)`` (scalar and batched).
    expm_cache_hits:
        Dense propagator requests served from the interval-keyed LRU.
    peak_evals:
        Scalar peak evaluations (step-up or general engine).
    batch_calls / batch_candidates / max_batch:
        Batched peak/stable-status calls, total candidates priced through
        them, and the largest single batch.
    eigen_cache_hits / eigen_cache_misses:
        Eigendecompositions served by the process-shared eigenbasis cache
        vs. computed from scratch (:mod:`repro.util.eigcache`).
    phase_seconds:
        Wall time per named solver phase (``choose_m``, ``tpt``, ...).
    """

    steady_state_solves: int = 0
    steady_state_cache_hits: int = 0
    steady_state_batch_rows: int = 0
    expm_applications: int = 0
    expm_cache_hits: int = 0
    peak_evals: int = 0
    batch_calls: int = 0
    batch_candidates: int = 0
    max_batch: int = 0
    eigen_cache_hits: int = 0
    eigen_cache_misses: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of steady-state requests served from the LRU."""
        total = self.steady_state_solves + self.steady_state_cache_hits
        return self.steady_state_cache_hits / total if total else 0.0

    @property
    def eigen_cache_hit_rate(self) -> float:
        """Fraction of eigendecompositions served by the shared cache."""
        total = self.eigen_cache_hits + self.eigen_cache_misses
        return self.eigen_cache_hits / total if total else 0.0

    @property
    def mean_batch(self) -> float:
        """Average candidates per batched call."""
        return self.batch_candidates / self.batch_calls if self.batch_calls else 0.0

    def summary_line(self) -> str:
        """One-line digest for :meth:`SchedulerResult.summary`."""
        return (
            f"ss_solves={self.steady_state_solves} "
            f"(hit rate {self.cache_hit_rate:.0%}), "
            f"expm={self.expm_applications}, "
            f"peak_evals={self.peak_evals}, "
            f"batches={self.batch_calls}x~{self.mean_batch:.0f} "
            f"(max {self.max_batch})"
        )

    def format(self) -> str:
        """Multi-line report including the per-phase wall-time breakdown."""
        lines = [
            "engine stats:",
            f"  steady-state solves : {self.steady_state_solves} "
            f"(+{self.steady_state_cache_hits} cached, "
            f"hit rate {self.cache_hit_rate:.0%}, "
            f"batch rows {self.steady_state_batch_rows})",
            f"  expm applications   : {self.expm_applications} "
            f"(+{self.expm_cache_hits} cached propagators)",
            f"  peak evaluations    : {self.peak_evals} scalar, "
            f"{self.batch_calls} batched "
            f"({self.batch_candidates} candidates, max batch {self.max_batch})",
        ]
        if self.eigen_cache_hits or self.eigen_cache_misses:
            lines.append(
                f"  eigenbasis cache    : {self.eigen_cache_hits} hits, "
                f"{self.eigen_cache_misses} misses "
                f"(hit rate {self.eigen_cache_hit_rate:.0%})"
            )
        if self.phase_seconds:
            total = sum(self.phase_seconds.values())
            lines.append(f"  phases ({total * 1e3:.1f} ms total):")
            for name, secs in self.phase_seconds.items():
                lines.append(f"    {name:<18s} {secs * 1e3:8.1f} ms")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump of every counter."""
        return {
            "steady_state_solves": self.steady_state_solves,
            "steady_state_cache_hits": self.steady_state_cache_hits,
            "steady_state_batch_rows": self.steady_state_batch_rows,
            "expm_applications": self.expm_applications,
            "expm_cache_hits": self.expm_cache_hits,
            "peak_evals": self.peak_evals,
            "batch_calls": self.batch_calls,
            "batch_candidates": self.batch_candidates,
            "max_batch": self.max_batch,
            "eigen_cache_hits": self.eigen_cache_hits,
            "eigen_cache_misses": self.eigen_cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "phase_seconds": dict(self.phase_seconds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineStats":
        """Rebuild stats from :meth:`as_dict` output (derived keys ignored)."""
        return cls(
            steady_state_solves=int(data.get("steady_state_solves", 0)),
            steady_state_cache_hits=int(data.get("steady_state_cache_hits", 0)),
            steady_state_batch_rows=int(data.get("steady_state_batch_rows", 0)),
            expm_applications=int(data.get("expm_applications", 0)),
            expm_cache_hits=int(data.get("expm_cache_hits", 0)),
            peak_evals=int(data.get("peak_evals", 0)),
            batch_calls=int(data.get("batch_calls", 0)),
            batch_candidates=int(data.get("batch_candidates", 0)),
            max_batch=int(data.get("max_batch", 0)),
            eigen_cache_hits=int(data.get("eigen_cache_hits", 0)),
            eigen_cache_misses=int(data.get("eigen_cache_misses", 0)),
            phase_seconds={
                str(k): float(v)
                for k, v in (data.get("phase_seconds") or {}).items()
            },
        )

    def combine(self, other: "EngineStats") -> "EngineStats":
        """Counter-wise sum of two stat spans (``max_batch`` takes the max)."""
        phases = dict(self.phase_seconds)
        for name, secs in other.phase_seconds.items():
            phases[name] = phases.get(name, 0.0) + secs
        return EngineStats(
            steady_state_solves=self.steady_state_solves + other.steady_state_solves,
            steady_state_cache_hits=(
                self.steady_state_cache_hits + other.steady_state_cache_hits
            ),
            steady_state_batch_rows=(
                self.steady_state_batch_rows + other.steady_state_batch_rows
            ),
            expm_applications=self.expm_applications + other.expm_applications,
            expm_cache_hits=self.expm_cache_hits + other.expm_cache_hits,
            peak_evals=self.peak_evals + other.peak_evals,
            batch_calls=self.batch_calls + other.batch_calls,
            batch_candidates=self.batch_candidates + other.batch_candidates,
            max_batch=max(self.max_batch, other.max_batch),
            eigen_cache_hits=self.eigen_cache_hits + other.eigen_cache_hits,
            eigen_cache_misses=self.eigen_cache_misses + other.eigen_cache_misses,
            phase_seconds=phases,
        )

    @classmethod
    def sum(cls, items: "Iterable[EngineStats]") -> "EngineStats":
        """Aggregate many per-unit stat spans into one run-level total."""
        total = cls()
        for item in items:
            total = total.combine(item)
        return total


class ThermalEngine:
    """Instrumented facade over one platform's thermal machinery.

    Parameters
    ----------
    platform:
        The platform whose model, ladder, overhead and threshold the
        engine serves.  The engine adds no state of its own beyond
        counters — two engines over the same platform share the model's
        caches (and attribute work to themselves via checkpoints).
    """

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._peak_evals = 0
        self._batch_calls = 0
        self._batch_candidates = 0
        self._max_batch = 0
        self._phase_seconds: dict[str, float] = {}
        self._batch_histogram = METRICS.histogram("engine.batch_size")
        self._condition_number: float | None = None
        self._hints: dict[tuple[str, Any], list[Any]] = {}
        self._baseline = self.checkpoint()

    @classmethod
    def ensure(cls, platform_or_engine: "Platform | ThermalEngine") -> "ThermalEngine":
        """Normalize a ``Platform | ThermalEngine`` argument to an engine."""
        if isinstance(platform_or_engine, ThermalEngine):
            return platform_or_engine
        return cls(platform_or_engine)

    # ------------------------------------------------------------------
    # platform delegation
    # ------------------------------------------------------------------

    @property
    def model(self) -> ThermalModel:
        """The bound thermal model."""
        return self.platform.model

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.platform.n_cores

    @property
    def theta_max(self) -> float:
        """Peak threshold in normalized units (K above ambient)."""
        return self.platform.theta_max

    @property
    def ladder(self):
        """The platform's discrete voltage ladder."""
        return self.platform.ladder

    @property
    def overhead(self):
        """The platform's DVFS transition overhead."""
        return self.platform.overhead

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------

    def steady_state(self, voltages) -> np.ndarray:
        """Node steady state for one voltage vector (LRU-cached)."""
        return self.model.steady_state(voltages)

    def steady_state_cores(self, voltages) -> np.ndarray:
        """Core steady state for one voltage vector (LRU-cached)."""
        return self.model.steady_state_cores(voltages)

    def steady_state_batch(self, voltage_matrix) -> np.ndarray:
        """Core steady states for a ``(batch, n_cores)`` voltage matrix."""
        return self.model.steady_state_batch(voltage_matrix)

    def feasible_constant(self, voltages) -> bool:
        """Whether a constant assignment keeps ``T_inf`` under the threshold."""
        return self.platform.feasible_constant(voltages)

    def condition_number(self) -> float:
        """2-norm condition number of ``G - E_beta`` (cached per engine).

        The effective conductance matrix is what every steady-state and
        stable-status solve factors; its conditioning bounds how much
        the closed-form temperatures can be trusted.  Safety
        certificates record it as a diagnostic
        (:mod:`repro.safety.certificate`).
        """
        if self._condition_number is None:
            self._condition_number = float(np.linalg.cond(self.model.g_eff))
        return self._condition_number

    # ------------------------------------------------------------------
    # peak evaluation — scalar
    # ------------------------------------------------------------------

    def stepup_peak(self, schedule: PeriodicSchedule, check: bool = False,
                    **kwargs) -> PeakResult:
        """Theorem-1 stable peak of a step-up schedule."""
        self._peak_evals += 1
        return stepup_peak_temperature(self.model, schedule, check=check, **kwargs)

    def general_peak(self, schedule: PeriodicSchedule, **kwargs) -> PeakResult:
        """MatEx-style stable peak of an arbitrary schedule."""
        self._peak_evals += 1
        return peak_temperature(self.model, schedule, **kwargs)

    # ------------------------------------------------------------------
    # peak evaluation — batched (PR 1 kernels)
    # ------------------------------------------------------------------

    def _count_batch(self, k: int) -> None:
        self._batch_calls += 1
        self._batch_candidates += k
        if k > self._max_batch:
            self._max_batch = k
        self._batch_histogram.observe(k)

    def stepup_peak_batch(self, schedules, check: bool = False,
                          **kwargs) -> list[PeakResult]:
        """Theorem-1 stable peaks of K step-up candidates in one pass."""
        schedules = tuple(schedules)
        self._count_batch(len(schedules))
        return stepup_peak_temperature_batch(
            self.model, schedules, check=check, **kwargs
        )

    def general_peak_batch(self, schedules, **kwargs) -> list[PeakResult]:
        """General stable peaks of K arbitrary candidates in one pass."""
        schedules = tuple(schedules)
        self._count_batch(len(schedules))
        return peak_temperature_batch(self.model, schedules, **kwargs)

    def periodic_steady_state_batch(self, schedules) -> list:
        """Eq.-(4) stable statuses of K candidates in one pass."""
        schedules = tuple(schedules)
        self._count_batch(len(schedules))
        return periodic_steady_state_batch(self.model, schedules)

    # ------------------------------------------------------------------
    # precomputation hints
    # ------------------------------------------------------------------

    def set_hint(self, key: str, params_key: Any, value: Any) -> None:
        """Stash a precomputed result for a solver phase to pick up.

        Grid-batched dispatch (:mod:`repro.experiments.comparison`)
        evaluates expensive phases — ``choose_m`` across a whole
        (platform × schedule) grid — *before* the per-unit solver runs,
        then injects the results here.  The solver body consumes them via
        :meth:`take_hint` with the same ``(key, params_key)`` pair, so
        the registry path (parameter validation, certificates, fallback
        chains) stays byte-for-byte identical whether or not a hint was
        planted.  Hints are one-shot: ``take_hint`` removes them, so a
        retry after a failure recomputes honestly.  Each ``(key,
        params_key)`` pair holds a FIFO stack, so session-shared engines
        can carry hints for several queued units with identical
        parameters without one unit consuming another's precompute.
        """
        self._hints.setdefault((key, params_key), []).append(value)

    def take_hint(self, key: str, params_key: Any) -> Any:
        """Pop the oldest hint planted by :meth:`set_hint` (``None`` when absent)."""
        stack = self._hints.get((key, params_key))
        if not stack:
            return None
        value = stack.pop(0)
        if not stack:
            del self._hints[(key, params_key)]
        return value

    # ------------------------------------------------------------------
    # peak-engine selection
    # ------------------------------------------------------------------

    def peak_fns(self, general: bool = False,
                 grid_per_interval: int | None = None) -> tuple[PeakFn, PeakBatchFn]:
        """The (scalar, batched) peak engine pair of the requested kind.

        ``general=False`` returns the Theorem-1 step-up fast path;
        ``general=True`` the MatEx-style search valid for arbitrary
        schedules (optionally at a custom ``grid_per_interval``).
        """
        if general:
            kwargs = {}
            if grid_per_interval is not None:
                kwargs["grid_per_interval"] = grid_per_interval

            def scalar(sched: PeriodicSchedule) -> PeakResult:
                return self.general_peak(sched, **kwargs)

            def batch(scheds) -> list[PeakResult]:
                return self.general_peak_batch(scheds, **kwargs)

            return scalar, batch

        def scalar_stepup(sched: PeriodicSchedule) -> PeakResult:
            return self.stepup_peak(sched, check=False)

        def batch_stepup(scheds) -> list[PeakResult]:
            return self.stepup_peak_batch(scheds, check=False)

        return scalar_stepup, batch_stepup

    def resolve_peak_fns(
        self,
        peak_fn: PeakFn | None = None,
        peak_batch_fn: PeakBatchFn | None = None,
        general: bool = False,
        grid_per_interval: int | None = None,
    ) -> tuple[PeakFn, PeakBatchFn]:
        """Fill in whichever of the scalar / batched peak engines is missing.

        With neither given, returns :meth:`peak_fns` of the requested
        kind.  A custom scalar ``peak_fn`` without a batched counterpart
        falls back to a per-candidate loop, so callers that only know how
        to price one schedule keep working unchanged.
        """
        if peak_fn is None and peak_batch_fn is None:
            return self.peak_fns(general=general, grid_per_interval=grid_per_interval)
        if peak_fn is None:
            assert peak_batch_fn is not None
            return (lambda sched: peak_batch_fn([sched])[0]), peak_batch_fn
        if peak_batch_fn is None:
            scalar = peak_fn
            return scalar, (lambda scheds: [scalar(s) for s in scheds])
        return peak_fn, peak_batch_fn

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Trace one named solver phase (``"ao/choose_m"``, ...).

        Opens an :func:`repro.obs.span` of the same name (a no-op while
        tracing is disabled) and accumulates the wall time into the
        ``phase_seconds`` counter of :class:`EngineStats`, so existing
        ``stats_since`` consumers see exactly what they always did.
        """
        with obs_span(name):
            t0 = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - t0
                self._phase_seconds[name] = (
                    self._phase_seconds.get(name, 0.0) + elapsed
                )

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot of the raw counter totals (pass to :meth:`stats_since`)."""
        model = self.model
        # Reading the eigendecomposition's counters must not force the
        # O(n^3) decomposition; absent means zero applications so far.
        eigen = model.__dict__.get("eigen")
        return {
            "ss_solves": model.ss_solves,
            "ss_cache_hits": model.ss_cache_hits,
            "ss_batch_rows": model.ss_batch_rows,
            "expm_applications": eigen.expm_applications if eigen else 0,
            "expm_cache_hits": eigen.expm_cache_hits if eigen else 0,
            "peak_evals": self._peak_evals,
            "batch_calls": self._batch_calls,
            "batch_candidates": self._batch_candidates,
            "max_batch": self._max_batch,
            "eig_cache_hits": model.eig_cache_hits,
            "eig_cache_misses": model.eig_cache_misses,
            "phase_seconds": dict(self._phase_seconds),
        }

    def stats_since(self, checkpoint: dict[str, Any]) -> EngineStats:
        """Counter deltas accumulated since ``checkpoint``."""
        now = self.checkpoint()
        phases = {
            name: secs - checkpoint["phase_seconds"].get(name, 0.0)
            for name, secs in now["phase_seconds"].items()
            if secs - checkpoint["phase_seconds"].get(name, 0.0) > 0.0
        }
        return EngineStats(
            steady_state_solves=now["ss_solves"] - checkpoint["ss_solves"],
            steady_state_cache_hits=now["ss_cache_hits"] - checkpoint["ss_cache_hits"],
            steady_state_batch_rows=now["ss_batch_rows"] - checkpoint["ss_batch_rows"],
            expm_applications=(
                now["expm_applications"] - checkpoint["expm_applications"]
            ),
            expm_cache_hits=now["expm_cache_hits"] - checkpoint["expm_cache_hits"],
            peak_evals=now["peak_evals"] - checkpoint["peak_evals"],
            batch_calls=now["batch_calls"] - checkpoint["batch_calls"],
            batch_candidates=now["batch_candidates"] - checkpoint["batch_candidates"],
            max_batch=now["max_batch"],
            eigen_cache_hits=(
                now["eig_cache_hits"] - checkpoint.get("eig_cache_hits", 0)
            ),
            eigen_cache_misses=(
                now["eig_cache_misses"] - checkpoint.get("eig_cache_misses", 0)
            ),
            phase_seconds=phases,
        )

    def stats(self) -> EngineStats:
        """Counters accumulated since engine creation (or :meth:`reset_stats`)."""
        return self.stats_since(self._baseline)

    def reset_stats(self) -> None:
        """Re-zero :meth:`stats` (checkpoints taken earlier stay valid)."""
        self._phase_seconds = {}
        self._baseline = self.checkpoint()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThermalEngine({self.n_cores} cores, "
            f"{len(self.platform.ladder)} levels, "
            f"T_max={self.platform.t_max_c} C)"
        )
