"""Real-time workload layer: periodic tasks, partitioning, thermal checks."""

from repro.workload.tasks import PeriodicTask, TaskSet
from repro.workload.mapping import (
    Mapping,
    first_fit_decreasing,
    worst_fit_decreasing,
    thermal_aware_mapping,
)
from repro.workload.scheduler import WorkloadResult, schedule_taskset
from repro.workload.edf import EDFReport, simulate_edf, supply_in_window

__all__ = [
    "PeriodicTask",
    "TaskSet",
    "Mapping",
    "first_fit_decreasing",
    "worst_fit_decreasing",
    "thermal_aware_mapping",
    "WorkloadResult",
    "schedule_taskset",
    "EDFReport",
    "simulate_edf",
    "supply_in_window",
]
