"""Periodic real-time tasks and task sets.

The paper's schedules "complete the same workload" per period; this module
gives that workload a concrete shape: implicit-deadline periodic tasks in
the Liu & Layland model.  A task's *utilization* is expressed at the
platform's reference speed (speed 1.0 == 1.0 V in the normalized f = v
convention): a core running at average speed ``s`` sustains any assigned
utilization up to ``s`` under EDF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PeriodicTask", "TaskSet"]


@dataclass(frozen=True)
class PeriodicTask:
    """An implicit-deadline periodic task.

    Attributes
    ----------
    name:
        Identifier (unique within a task set).
    wcec:
        Worst-case execution *cycles* per job, in units where a core at
        speed 1.0 retires one cycle per second — i.e. ``wcec / period_s``
        is the task's utilization at reference speed.
    period_s:
        Activation period (= deadline) in seconds.
    """

    name: str
    wcec: float
    period_s: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("task name must be non-empty")
        if self.wcec <= 0:
            raise ConfigurationError(f"wcec must be > 0, got {self.wcec}")
        if self.period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {self.period_s}")

    @property
    def utilization(self) -> float:
        """Utilization at reference speed 1.0."""
        return self.wcec / self.period_s

    def demand_at_speed(self, speed: float) -> float:
        """Fraction of a core this task occupies when the core runs at ``speed``."""
        if speed <= 0:
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        return self.utilization / speed


@dataclass(frozen=True)
class TaskSet:
    """An immutable collection of periodic tasks."""

    tasks: tuple[PeriodicTask, ...]

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate task names in {names}")
        object.__setattr__(self, "tasks", tuple(self.tasks))

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def total_utilization(self) -> float:
        """Sum of task utilizations at reference speed."""
        return float(sum(t.utilization for t in self.tasks))

    def utilizations(self) -> np.ndarray:
        """Per-task utilizations, in task order."""
        return np.array([t.utilization for t in self.tasks])

    def sorted_by_utilization(self, descending: bool = True) -> list[PeriodicTask]:
        """Tasks ordered by utilization (for the *-fit-decreasing packers)."""
        return sorted(self.tasks, key=lambda t: t.utilization, reverse=descending)

    @classmethod
    def random(
        cls,
        n_tasks: int,
        total_utilization: float,
        rng: np.random.Generator,
        period_range: tuple[float, float] = (0.01, 0.2),
        max_task_utilization: float = 1.0,
        max_attempts: int = 64,
    ) -> "TaskSet":
        """UUniFast-style random task set with the given total utilization.

        Individual task utilizations are capped at ``max_task_utilization``
        (no single task may exceed one reference core) by rejection
        sampling over the UUniFast split; if the cap is statistically hard
        to satisfy the final attempt is clamped and renormalized.
        """
        if n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {n_tasks}")
        if total_utilization <= 0:
            raise ConfigurationError(
                f"total_utilization must be > 0, got {total_utilization}"
            )
        if total_utilization > n_tasks * max_task_utilization:
            raise ConfigurationError(
                f"total utilization {total_utilization} cannot be split into "
                f"{n_tasks} tasks of at most {max_task_utilization} each"
            )

        def uunifast() -> np.ndarray:
            # UUniFast (Bini & Buttazzo): unbiased utilization split.
            utils = []
            remaining = total_utilization
            for i in range(n_tasks - 1):
                nxt = remaining * rng.random() ** (1.0 / (n_tasks - 1 - i))
                utils.append(remaining - nxt)
                remaining = nxt
            utils.append(remaining)
            return np.asarray(utils)

        utils = uunifast()
        for _ in range(max_attempts):
            if utils.max() <= max_task_utilization:
                break
            utils = uunifast()
        else:
            # Clamp and push the excess onto the unclamped tasks.
            utils = np.minimum(utils, max_task_utilization)
            deficit = total_utilization - utils.sum()
            room = max_task_utilization - utils
            utils += room * (deficit / room.sum())

        tasks = []
        lo, hi = period_range
        for k, u in enumerate(utils):
            period = float(rng.uniform(lo, hi))
            tasks.append(
                PeriodicTask(name=f"task{k}", wcec=float(u) * period, period_s=period)
            )
        return cls(tasks=tuple(tasks))
