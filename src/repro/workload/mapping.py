"""Partitioned task-to-core mapping heuristics.

Three packers over the same capacity model (a core at maximum speed
``v_max`` sustains utilization up to ``v_max``):

* :func:`first_fit_decreasing` — classic FFD bin packing; concentrates
  load on low-index cores.
* :func:`worst_fit_decreasing` — balances utilization across cores; the
  usual choice for thermal friendliness.
* :func:`thermal_aware_mapping` — worst-fit weighted by each core's
  thermal quality (steady-state temperature per watt), so the center core
  of a 3x3 chip receives less work than the corners.  This is the
  floorplan-awareness the paper's asymmetric ideal voltages call for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.platform import Platform
from repro.workload.tasks import PeriodicTask, TaskSet

__all__ = [
    "Mapping",
    "first_fit_decreasing",
    "worst_fit_decreasing",
    "thermal_aware_mapping",
]


@dataclass(frozen=True)
class Mapping:
    """A partitioned assignment of tasks to cores.

    Attributes
    ----------
    assignment:
        task name -> core index.
    taskset:
        The mapped task set.
    n_cores:
        Number of cores on the platform.
    """

    assignment: dict[str, int]
    taskset: TaskSet
    n_cores: int

    def core_tasks(self, core: int) -> list[PeriodicTask]:
        """Tasks assigned to one core."""
        return [t for t in self.taskset if self.assignment[t.name] == core]

    def core_utilizations(self) -> np.ndarray:
        """Per-core total utilization at reference speed."""
        utils = np.zeros(self.n_cores)
        for task in self.taskset:
            utils[self.assignment[task.name]] += task.utilization
        return utils

    def required_speeds(self) -> np.ndarray:
        """Per-core average speed sustaining the assigned load under EDF.

        A core at average speed ``s`` completes utilization ``s`` per unit
        time, so the required speed equals the assigned utilization
        (idle cores require 0).
        """
        return self.core_utilizations()


def _pack(
    taskset: TaskSet,
    n_cores: int,
    capacity: float,
    choose_core,
) -> Mapping:
    load = np.zeros(n_cores)
    assignment: dict[str, int] = {}
    for task in taskset.sorted_by_utilization():
        core = choose_core(load, task)
        if core is None:
            raise SolverError(
                f"task {task.name!r} (u={task.utilization:.3f}) does not fit: "
                f"per-core capacity {capacity:.3f}, loads {np.round(load, 3)}"
            )
        assignment[task.name] = core
        load[core] += task.utilization
    return Mapping(assignment=assignment, taskset=taskset, n_cores=n_cores)


def first_fit_decreasing(taskset: TaskSet, platform: Platform) -> Mapping:
    """FFD: place each task on the first core with room."""
    capacity = platform.ladder.v_max

    def choose(load, task):
        for core in range(platform.n_cores):
            if load[core] + task.utilization <= capacity + 1e-12:
                return core
        return None

    return _pack(taskset, platform.n_cores, capacity, choose)


def worst_fit_decreasing(taskset: TaskSet, platform: Platform) -> Mapping:
    """WFD: place each task on the least-loaded core with room."""
    capacity = platform.ladder.v_max

    def choose(load, task):
        order = np.argsort(load)
        core = int(order[0])
        if load[core] + task.utilization <= capacity + 1e-12:
            return core
        return None

    return _pack(taskset, platform.n_cores, capacity, choose)


def thermal_aware_mapping(taskset: TaskSet, platform: Platform) -> Mapping:
    """WFD weighted by thermal quality: cool-running cores get more load.

    Each core's *thermal weight* is the steady-state temperature it reaches
    per watt injected on it alone (the diagonal of the thermal response);
    loads are balanced in weighted terms ``load * weight`` so thermally
    disadvantaged cores (chip center) carry less utilization.
    """
    capacity = platform.ladder.v_max
    model = platform.model
    cores = model.network.core_nodes
    response = np.linalg.solve(model.g_eff, np.eye(model.n_nodes))
    weights = np.diag(response[np.ix_(cores, cores)])
    weights = weights / weights.min()

    def choose(load, task):
        order = np.argsort(load * weights)
        for core in order:
            if load[int(core)] + task.utilization <= capacity + 1e-12:
                return int(core)
        return None

    return _pack(taskset, platform.n_cores, capacity, choose)
