"""EDF simulation under a time-varying (oscillating) speed profile.

The workload layer sizes each core's *average* speed to its assigned
utilization, but an oscillating core does not supply that speed uniformly:
a job whose deadline falls inside a low-voltage stretch sees less service
than the average promises.  The classical sufficient condition is
supply-bound: EDF meets all deadlines iff the work supplied in every
window of length ``D`` covers the demand of deadlines within ``D``.  With
m-oscillation the cycle is pushed far below task periods, so in practice
the fluid approximation holds — this module lets you *check* instead of
assume.

:func:`simulate_edf` runs an event-driven preemptive-EDF simulation of one
core executing its assigned tasks on top of a
:class:`~repro.schedule.periodic.PeriodicSchedule`'s speed profile and
reports deadline misses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.schedule.periodic import PeriodicSchedule
from repro.workload.tasks import PeriodicTask

__all__ = ["EDFReport", "simulate_edf", "supply_in_window"]


@dataclass(frozen=True)
class EDFReport:
    """Outcome of an EDF simulation on one core.

    Attributes
    ----------
    horizon_s:
        Simulated time span.
    jobs_released, jobs_completed:
        Job counts over the horizon.
    deadline_misses:
        ``(task_name, release_time, deadline)`` of every missed deadline.
    max_lateness_s:
        Worst completion lateness observed (0 when all deadlines met).
    idle_windows:
        ``(start, end)`` stretches with no pending work — the core could
        power-gate there (race-to-idle); consumed by the co-simulator.
    """

    horizon_s: float
    jobs_released: int
    jobs_completed: int
    deadline_misses: tuple[tuple[str, float, float], ...]
    max_lateness_s: float
    idle_windows: tuple[tuple[float, float], ...] = ()

    @property
    def idle_fraction(self) -> float:
        """Fraction of the horizon spent with no pending work."""
        if self.horizon_s <= 0:
            return 0.0
        idle = sum(e - s for s, e in self.idle_windows)
        return idle / self.horizon_s

    @property
    def all_deadlines_met(self) -> bool:
        """True when no job missed its deadline."""
        return len(self.deadline_misses) == 0


def supply_in_window(
    schedule: PeriodicSchedule,
    core: int,
    start: float,
    length: float,
) -> float:
    """Work (speed x time) core ``core`` supplies over ``[start, start+length)``.

    Closed form: with ``F(t)`` the cumulative supply from 0 to ``t``
    (full periods plus an interpolated partial period), the window supply
    is ``F(start + length) - F(start)`` — no time-stepping, no
    floating-point boundary hazards.
    """
    if length < 0:
        raise ConfigurationError(f"window length must be >= 0, got {length}")
    period = schedule.period
    bounds = schedule.boundaries
    volts = schedule.voltage_matrix[:, core]
    lengths = schedule.lengths
    cum = np.concatenate([[0.0], np.cumsum(volts * lengths)])
    per_period = float(cum[-1])

    def cumulative(t: float) -> float:
        full, local = divmod(t, period)
        q = int(np.searchsorted(bounds, local, side="right") - 1)
        q = min(max(q, 0), schedule.n_intervals - 1)
        partial = cum[q] + volts[q] * (local - bounds[q])
        return full * per_period + partial

    return cumulative(start + length) - cumulative(start)


@dataclass(order=True)
class _Job:
    deadline: float
    seq: int
    name: str = field(compare=False)
    release: float = field(compare=False)
    remaining_work: float = field(compare=False)


def simulate_edf(
    schedule: PeriodicSchedule,
    core: int,
    tasks: list[PeriodicTask],
    horizon_s: float | None = None,
) -> EDFReport:
    """Simulate preemptive EDF on one core with the schedule's speed profile.

    Parameters
    ----------
    schedule:
        The periodic DVFS schedule; core ``core``'s voltage is its speed.
    tasks:
        The tasks assigned to this core (releases aligned at t = 0).
    horizon_s:
        Simulated span (default: 4x the longest task period, at least
        20 schedule periods).
    """
    if not (0 <= core < schedule.n_cores):
        raise ConfigurationError(f"core {core} out of range")
    if not tasks:
        return EDFReport(
            horizon_s=0.0, jobs_released=0, jobs_completed=0,
            deadline_misses=(), max_lateness_s=0.0, idle_windows=(),
        )
    if horizon_s is None:
        horizon_s = max(
            4.0 * max(t.period_s for t in tasks), 20.0 * schedule.period
        )

    seq = itertools.count()
    releases: list[tuple[float, PeriodicTask]] = []
    for task in tasks:
        # Index-based release times avoid cumulative float drift.
        n_jobs = int(np.ceil(horizon_s / task.period_s - 1e-9))
        for i in range(n_jobs):
            releases.append((i * task.period_s, task))
    releases.sort(key=lambda item: item[0])

    ready: list[_Job] = []
    misses: list[tuple[str, float, float]] = []
    idle_windows: list[tuple[float, float]] = []
    max_lateness = 0.0
    completed = 0
    now = 0.0
    k = 0  # next release index
    period = schedule.period
    bounds = schedule.boundaries
    volts_of = schedule.voltage_matrix[:, core]

    def current_segment(t: float) -> tuple[float, float]:
        """(speed, time until the segment ends) at absolute time t."""
        local = t % period
        q = int(np.searchsorted(bounds, local, side="right") - 1)
        q = min(q, schedule.n_intervals - 1)
        return float(volts_of[q]), float(bounds[q + 1] - local)

    while now < horizon_s:
        while k < len(releases) and releases[k][0] <= now + 1e-12:
            r_time, task = releases[k]
            heapq.heappush(
                ready,
                _Job(
                    deadline=r_time + task.period_s,
                    seq=next(seq),
                    name=task.name,
                    release=r_time,
                    remaining_work=task.wcec,
                ),
            )
            k += 1

        if not ready:
            resume = releases[k][0] if k < len(releases) else horizon_s
            if resume > now + 1e-12:
                idle_windows.append((now, min(resume, horizon_s)))
            now = resume
            continue

        job = ready[0]
        speed, seg_left = current_segment(now)
        # Floating-point residue at an interval boundary: snap across it
        # instead of spinning on a zero-width window.
        boundary_eps = period * 1e-9
        if seg_left <= boundary_eps:
            now += max(seg_left, boundary_eps)
            continue
        next_release = releases[k][0] if k < len(releases) else horizon_s
        window = min(seg_left, next_release - now, horizon_s - now)
        if window <= 0:
            now += boundary_eps
            continue

        if speed > 0 and job.remaining_work <= speed * window + 1e-15:
            # Job finishes inside this window.
            dt = job.remaining_work / speed
            now += dt
            heapq.heappop(ready)
            completed += 1
            lateness = now - job.deadline
            if lateness > 1e-9:
                misses.append((job.name, job.release, job.deadline))
                max_lateness = max(max_lateness, lateness)
        else:
            job.remaining_work -= speed * window
            now += window

    # Jobs still pending past their deadlines at the horizon.
    for job in ready:
        if job.deadline < horizon_s and job.remaining_work > 1e-9:
            misses.append((job.name, job.release, job.deadline))
            max_lateness = max(max_lateness, horizon_s - job.deadline)

    return EDFReport(
        horizon_s=float(horizon_s),
        jobs_released=k,
        jobs_completed=completed,
        deadline_misses=tuple(misses),
        max_lateness_s=float(max_lateness),
        idle_windows=tuple(idle_windows),
    )
