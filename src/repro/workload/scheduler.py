"""Thermally-qualified workload scheduling: tasks -> mapping -> DVFS schedule.

Glues the workload layer to the paper's machinery: partition the task set,
derive each core's required average speed, build the peak-minimizing
m-oscillating schedule for those speeds (:mod:`repro.algorithms.minpeak`),
and report whether the platform's temperature limit holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.minpeak import MinPeakResult, minimize_peak
from repro.errors import SolverError
from repro.platform import Platform
from repro.workload.mapping import Mapping, thermal_aware_mapping
from repro.workload.tasks import TaskSet

__all__ = ["WorkloadResult", "schedule_taskset"]


@dataclass(frozen=True)
class WorkloadResult:
    """A thermally-qualified workload schedule.

    Attributes
    ----------
    mapping:
        The task-to-core partition used.
    minpeak:
        The peak-minimizing DVFS schedule realizing the per-core speeds.
    thermally_feasible:
        Whether the schedule's stable peak respects the platform's T_max.
    slack_theta:
        ``theta_max - peak`` in K (negative when infeasible).
    """

    mapping: Mapping
    minpeak: MinPeakResult
    thermally_feasible: bool
    slack_theta: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        state = "OK" if self.thermally_feasible else "VIOLATION"
        return (
            f"workload: {len(self.mapping.taskset)} tasks on "
            f"{self.mapping.n_cores} cores, peak "
            f"{self.minpeak.peak.value:.2f} K above ambient, "
            f"slack {self.slack_theta:+.2f} K [{state}]"
        )


def schedule_taskset(
    platform: Platform,
    taskset: TaskSet,
    mapper=thermal_aware_mapping,
    period: float = 0.02,
    m_cap: int = 128,
) -> WorkloadResult:
    """Partition, speed-assign and thermally qualify a periodic task set.

    Parameters
    ----------
    platform:
        Target platform (its ``t_max_c`` defines feasibility).
    taskset:
        The periodic tasks to place.
    mapper:
        Partitioning heuristic (default: thermal-aware worst-fit).
    period, m_cap:
        Oscillation parameters forwarded to
        :func:`repro.algorithms.minpeak.minimize_peak`.

    Raises
    ------
    SolverError
        If the task set cannot be partitioned (capacity) or a core's
        required speed falls outside the platform's range.
    """
    mapping = mapper(taskset, platform)
    speeds = mapping.required_speeds()

    # A busy core cannot run slower than the lowest mode: round tiny demands
    # up to v_min (EDF idles through the slack).
    v_min = platform.ladder.v_min
    speeds = np.where((speeds > 0) & (speeds < v_min), v_min, speeds)
    if np.any(speeds > platform.ladder.v_max + 1e-12):
        raise SolverError(
            f"required speeds {np.round(speeds, 3)} exceed the platform "
            f"maximum {platform.ladder.v_max}"
        )

    minpeak = minimize_peak(platform, speeds, period=period, m_cap=m_cap)
    slack = platform.theta_max - minpeak.peak.value
    return WorkloadResult(
        mapping=mapping,
        minpeak=minpeak,
        thermally_feasible=bool(slack >= -1e-9),
        slack_theta=float(slack),
    )
