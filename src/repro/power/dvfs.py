"""Discrete DVFS machinery: voltage ladders and transition overhead.

A :class:`VoltageLadder` is the per-core set of discrete running modes
(each mode being a supply voltage; the paper uses ``v`` and ``f``
interchangeably as normalized speed).  :class:`TransitionOverhead` models
the clock-halt ``tau`` per DVFS switch and the derived quantities the AO
algorithm needs (section V):

* throughput compensation ``delta_i = (v_H + v_L) * tau / (v_H - v_L)``
  — the extra high-voltage time per oscillation cycle that restores the
  work lost to two transitions,
* the per-core oscillation bound ``M_i = floor(t_L / (delta_i + tau))``
  — the low-voltage interval must stay long enough to host the switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor

import numpy as np

from repro.errors import ModeError, PowerModelError

__all__ = [
    "VoltageLadder",
    "TransitionOverhead",
    "PAPER_LADDERS",
    "paper_ladder",
    "full_ladder",
]

#: Matching tolerance when looking a voltage up in a ladder.
_LEVEL_ATOL = 1e-9


@dataclass(frozen=True)
class VoltageLadder:
    """An ordered set of discrete supply-voltage levels.

    Attributes
    ----------
    levels:
        Strictly increasing tuple of available voltages in volts.
    """

    levels: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 1:
            raise ModeError("a voltage ladder needs at least one level")
        levels = tuple(float(v) for v in self.levels)
        if any(v <= 0 for v in levels):
            raise ModeError(f"voltage levels must be positive, got {levels}")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ModeError(f"voltage levels must be strictly increasing, got {levels}")
        object.__setattr__(self, "levels", levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    @property
    def v_min(self) -> float:
        """Lowest available voltage."""
        return self.levels[0]

    @property
    def v_max(self) -> float:
        """Highest available voltage."""
        return self.levels[-1]

    def contains(self, v: float) -> bool:
        """Whether ``v`` is one of the discrete levels (within tolerance)."""
        return any(abs(v - lvl) <= _LEVEL_ATOL for lvl in self.levels)

    def index_of(self, v: float) -> int:
        """Index of level ``v``; raises :class:`ModeError` if absent."""
        for i, lvl in enumerate(self.levels):
            if abs(v - lvl) <= _LEVEL_ATOL:
                return i
        raise ModeError(f"voltage {v} is not a ladder level {self.levels}")

    def lower_neighbor(self, v: float) -> float:
        """Largest level ``<= v`` (the LNS rounding).

        Raises
        ------
        ModeError
            If ``v`` is below the lowest level — no feasible rounding exists.
        """
        candidates = [lvl for lvl in self.levels if lvl <= v + _LEVEL_ATOL]
        if not candidates:
            raise ModeError(
                f"no ladder level at or below {v} (lowest is {self.v_min})"
            )
        return candidates[-1]

    def upper_neighbor(self, v: float) -> float:
        """Smallest level ``>= v``."""
        candidates = [lvl for lvl in self.levels if lvl >= v - _LEVEL_ATOL]
        if not candidates:
            raise ModeError(
                f"no ladder level at or above {v} (highest is {self.v_max})"
            )
        return candidates[0]

    def neighbors(self, v: float) -> tuple[float, float]:
        """The two neighboring levels bracketing ``v`` (Theorem 4's choice).

        Returns ``(v_L, v_H)`` with ``v_L <= v <= v_H``.  When ``v`` is
        itself a level, both equal ``v`` (a constant-mode schedule).
        Values outside the ladder range are clamped to the nearest end.
        """
        if v <= self.v_min:
            return self.v_min, self.v_min
        if v >= self.v_max:
            return self.v_max, self.v_max
        if self.contains(v):
            lvl = self.levels[self.index_of(v)]
            return lvl, lvl
        return self.lower_neighbor(v), self.upper_neighbor(v)

    def split_ratios(self, v: float) -> tuple[float, float, float, float]:
        """Two-neighboring-mode decomposition of a continuous speed ``v``.

        Solves eq. (11): find ``(v_L, v_H, r_L, r_H)`` with
        ``r_L * v_L + r_H * v_H = v`` and ``r_L + r_H = 1``.

        Returns
        -------
        (v_L, v_H, r_L, r_H)
            ``r_H = 0`` or ``1`` when ``v`` clamps to a ladder end or hits a
            level exactly.
        """
        v_lo, v_hi = self.neighbors(v)
        if v_hi == v_lo:
            return v_lo, v_hi, 0.0, 1.0
        r_h = (v - v_lo) / (v_hi - v_lo)
        r_h = float(np.clip(r_h, 0.0, 1.0))
        return v_lo, v_hi, 1.0 - r_h, r_h


@dataclass(frozen=True)
class TransitionOverhead:
    """DVFS transition model: the clock halts for ``tau`` per switch.

    Attributes
    ----------
    tau:
        Clock-halt duration per voltage transition in seconds
        (the paper's evaluation uses 5 microseconds).
    """

    tau: float = 5e-6

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise PowerModelError(f"tau must be >= 0, got {self.tau}")

    def delta(self, v_low: float, v_high: float) -> float:
        """Extra high-voltage time restoring the throughput lost per cycle.

        Each oscillation cycle performs two transitions, losing
        ``(v_H + v_L) * tau`` work; extending the high interval by
        ``delta = (v_H + v_L) * tau / (v_H - v_L)`` (and shrinking the low
        interval equally) restores it.
        """
        if v_high <= v_low:
            raise PowerModelError(
                f"delta needs v_high > v_low, got v_low={v_low}, v_high={v_high}"
            )
        return (v_high + v_low) * self.tau / (v_high - v_low)

    def max_m_for_core(self, t_low: float, v_low: float, v_high: float) -> int:
        """Per-core oscillation-count bound ``M_i`` (section V).

        ``t_low`` is the full-period low-voltage time.  Each of the ``m``
        cycles consumes ``delta + tau`` of it, so
        ``M_i = floor(t_low / (delta + tau))``.

        With ``tau == 0`` there is no bound; we return a large sentinel.
        """
        if t_low < 0:
            raise PowerModelError(f"t_low must be >= 0, got {t_low}")
        if self.tau == 0:
            return 10**9
        if t_low == 0:
            return 0
        return int(floor(t_low / (self.delta(v_low, v_high) + self.tau)))

    def max_m(self, cores: list[tuple[float, float, float]]) -> int:
        """Chip-wide bound ``M = min_i M_i`` over oscillating cores.

        Parameters
        ----------
        cores:
            One ``(t_low, v_low, v_high)`` tuple per core that actually uses
            two modes.  Cores running a single constant mode impose no bound
            and must be omitted.
        """
        if not cores:
            return 10**9
        return min(self.max_m_for_core(t, lo, hi) for t, lo, hi in cores)


#: The paper's Table IV: number of available levels -> voltage set.
PAPER_LADDERS: dict[int, tuple[float, ...]] = {
    2: (0.6, 1.3),
    3: (0.6, 0.8, 1.3),
    4: (0.6, 0.8, 1.0, 1.3),
    5: (0.6, 0.8, 1.0, 1.2, 1.3),
}


def paper_ladder(n_levels: int) -> VoltageLadder:
    """Table IV ladder for the given level count (2-5)."""
    try:
        levels = PAPER_LADDERS[n_levels]
    except KeyError:
        raise ModeError(
            f"Table IV defines 2-5 levels, got {n_levels}; "
            "use VoltageLadder(levels=...) for custom ladders"
        ) from None
    return VoltageLadder(levels)


def full_ladder(step: float = 0.05, v_min: float = 0.6, v_max: float = 1.3) -> VoltageLadder:
    """The platform's full ladder: ``[v_min, v_max]`` with the given step.

    The paper's platform exposes [0.6 V, 1.3 V] in 0.05 V steps (15 levels).
    """
    n = int(round((v_max - v_min) / step)) + 1
    levels = tuple(round(v_min + i * step, 10) for i in range(n))
    if abs(levels[-1] - v_max) > 1e-9:
        raise ModeError(
            f"step {step} does not evenly divide [{v_min}, {v_max}]"
        )
    return VoltageLadder(levels)
