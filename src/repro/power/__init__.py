"""Power models: voltage-cubic dynamic power + temperature-dependent leakage."""

from repro.power.model import PowerModel
from repro.power.mcpat import mcpat_like_power_model, TECHNOLOGY_TABLES
from repro.power.heterogeneous import HeterogeneousPowerModel, big_little_power_model
from repro.power.dvfs import (
    VoltageLadder,
    TransitionOverhead,
    PAPER_LADDERS,
    paper_ladder,
    full_ladder,
)

__all__ = [
    "PowerModel",
    "HeterogeneousPowerModel",
    "big_little_power_model",
    "mcpat_like_power_model",
    "TECHNOLOGY_TABLES",
    "VoltageLadder",
    "TransitionOverhead",
    "PAPER_LADDERS",
    "paper_ladder",
    "full_ladder",
]
