"""The paper's per-core power model (eq. (1)).

``P_i(t) = alpha(v_i) + beta * T_i(t) + gamma(v_i) * v_i^3``

We work in temperatures normalized to ambient (``theta = T - T_amb``) and
split the power into

* a temperature-independent injection ``psi(v) = alpha_lin * v + gamma * v^3``
  (``alpha(v) = alpha_lin * v`` models the voltage dependence of leakage;
  the constant ambient-leakage component is absorbed into ``alpha_lin`` at
  the operating point), and
* the leakage feedback ``beta * theta`` which is folded into the thermal
  system matrix (see :mod:`repro.thermal.model`), keeping ``A`` constant
  across running modes exactly as eq. (2) requires.

``psi`` is convex on ``v >= 0`` with ``psi(0) = 0`` (an idle, power-gated
core injects nothing) — convexity is the property Theorem 3's proof needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core power coefficients, uniform across cores.

    Attributes
    ----------
    alpha_lin:
        Leakage voltage-slope in W/V: ``alpha(v) = alpha_lin * v``.
    gamma:
        Dynamic-power coefficient in W/V^3: ``P_dyn = gamma * v^3``.
    beta:
        Leakage temperature-slope in W/K.  Folded into the thermal ``A``
        matrix; must stay below the network's heat-removal ability
        (checked at :class:`repro.thermal.model.ThermalModel` construction).
    v_min, v_max:
        Supported supply-voltage range in volts (0 means power-gated idle).
    """

    alpha_lin: float = 0.10
    gamma: float = 5.00
    beta: float = 0.10
    v_min: float = 0.6
    v_max: float = 1.3

    def __post_init__(self) -> None:
        if self.alpha_lin < 0:
            raise PowerModelError(f"alpha_lin must be >= 0, got {self.alpha_lin}")
        if self.gamma <= 0:
            raise PowerModelError(f"gamma must be > 0, got {self.gamma}")
        if self.beta < 0:
            raise PowerModelError(f"beta must be >= 0, got {self.beta}")
        if not (0 < self.v_min <= self.v_max):
            raise PowerModelError(
                f"need 0 < v_min <= v_max, got v_min={self.v_min}, v_max={self.v_max}"
            )

    def psi(self, v) -> np.ndarray | float:
        """Temperature-independent heat injection ``alpha(v) + gamma v^3`` in W.

        Accepts scalars or arrays; ``v = 0`` (idle) injects zero.
        Values outside ``[v_min, v_max]`` (other than 0) are rejected.
        """
        arr = np.asarray(v, dtype=float)
        self._check_voltages(arr)
        out = self.alpha_lin * arr + self.gamma * arr**3
        return out if arr.ndim else float(out)

    def dynamic_power(self, v) -> np.ndarray | float:
        """Dynamic component ``gamma * v^3`` in W."""
        arr = np.asarray(v, dtype=float)
        self._check_voltages(arr)
        out = self.gamma * arr**3
        return out if arr.ndim else float(out)

    def leakage_power(self, v, theta) -> np.ndarray | float:
        """Leakage component ``alpha(v) + beta * theta`` in W.

        ``theta`` is the core temperature above ambient in K.
        """
        arr = np.asarray(v, dtype=float)
        self._check_voltages(arr)
        theta_arr = np.asarray(theta, dtype=float)
        out = self.alpha_lin * arr + self.beta * theta_arr
        if arr.ndim or theta_arr.ndim:
            return out
        return float(out)

    def total_power(self, v, theta) -> np.ndarray | float:
        """Total power ``psi(v) + beta * theta`` in W (eq. (1), normalized)."""
        out = np.asarray(self.psi(v)) + self.beta * np.asarray(theta, dtype=float)
        return out if out.ndim else float(out)

    def psi_inverse(self, power: float) -> float:
        """Solve ``psi(v) = power`` for ``v >= 0`` (real cubic root).

        Used by the continuous relaxation: given the heat injection a core
        may sustain, find the voltage that produces it.  Returns the
        unclamped root; callers clamp to ``[v_min, v_max]``.
        """
        if power < 0:
            raise PowerModelError(f"power must be >= 0, got {power}")
        if power == 0:
            return 0.0
        # psi is strictly increasing on v >= 0, so the root is unique.
        roots = np.roots([self.gamma, 0.0, self.alpha_lin, -float(power)])
        real = roots[np.abs(roots.imag) < 1e-9].real
        positive = real[real >= 0]
        if positive.size == 0:  # pragma: no cover - cannot happen for valid coeffs
            raise PowerModelError(f"no non-negative root for psi(v) = {power}")
        return float(positive[0])

    def psi_inverse_array(self, powers) -> np.ndarray:
        """Per-core ``psi_inverse`` over a budget vector.

        Homogeneous cores share one cubic; heterogeneous models dispatch
        per core.
        """
        return np.array([self.psi_inverse(max(float(q), 0.0)) for q in powers])

    def psi_inverse_for(self, core: int, power: float) -> float:
        """``psi_inverse`` for a specific core (homogeneous: core-independent).

        Exists so solvers can stay agnostic between this model and
        :class:`repro.power.heterogeneous.HeterogeneousPowerModel`.
        """
        del core
        return self.psi_inverse(power)

    def _check_voltages(self, arr: np.ndarray) -> None:
        active = arr[arr != 0]
        if active.size == 0:
            return
        lo, hi = float(active.min()), float(active.max())
        # Allow tiny numerical spill from continuous solvers.
        if lo < self.v_min - 1e-9 or hi > self.v_max + 1e-9:
            raise PowerModelError(
                f"voltage outside supported range [{self.v_min}, {self.v_max}]: "
                f"min={lo}, max={hi}"
            )
