"""Synthetic McPAT-like power coefficient tables.

The paper abstracts its power parameters from the McPAT simulator [36] at a
65 nm technology node but does not publish the raw values.  McPAT itself is
a closed C++ tool; as a substitution we ship per-technology coefficient
tables with the magnitudes McPAT reports for high-performance OoO cores
(total per-core power ~10-20 W at nominal voltage, ~30 % leakage at 65 nm),
scaled across nodes by standard Dennard-breakdown trends:

* dynamic power per core shrinks with the square of feature size times
  frequency gains (we fold both into ``gamma``),
* the leakage fraction grows as technology shrinks,
* the leakage temperature sensitivity ``beta`` grows with leakage share.

Only the 65 nm entry is used to reproduce the paper; the rest exist so the
library is usable as a general tool and to exercise the scaling path.
"""

from __future__ import annotations

from repro.errors import PowerModelError
from repro.power.model import PowerModel

__all__ = ["TECHNOLOGY_TABLES", "mcpat_like_power_model"]

#: technology node (nm) -> PowerModel coefficient kwargs.
#: The 65 nm row is further refined by thermal calibration
#: (see :mod:`repro.thermal.calibration`); these are the raw McPAT-like
#: magnitudes before calibration.
TECHNOLOGY_TABLES: dict[int, dict[str, float]] = {
    90: {"alpha_lin": 0.07, "gamma": 5.75, "beta": 0.06, "v_min": 0.7, "v_max": 1.4},
    65: {"alpha_lin": 0.10, "gamma": 5.00, "beta": 0.10, "v_min": 0.6, "v_max": 1.3},
    45: {"alpha_lin": 0.14, "gamma": 4.25, "beta": 0.14, "v_min": 0.55, "v_max": 1.2},
    32: {"alpha_lin": 0.18, "gamma": 3.55, "beta": 0.18, "v_min": 0.5, "v_max": 1.1},
    22: {"alpha_lin": 0.22, "gamma": 2.90, "beta": 0.22, "v_min": 0.45, "v_max": 1.0},
}


def mcpat_like_power_model(technology_nm: int = 65) -> PowerModel:
    """Build a :class:`PowerModel` from the synthetic McPAT-like tables.

    Parameters
    ----------
    technology_nm:
        One of the tabulated nodes (90, 65, 45, 32, 22).  The paper's
        evaluation uses 65 nm.
    """
    try:
        kwargs = TECHNOLOGY_TABLES[technology_nm]
    except KeyError:
        known = sorted(TECHNOLOGY_TABLES)
        raise PowerModelError(
            f"no coefficient table for {technology_nm} nm; available: {known}"
        ) from None
    return PowerModel(**kwargs)
