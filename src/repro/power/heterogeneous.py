"""Heterogeneous per-core power models.

The paper's reference [26] ("Heterogeneity exploration for peak temperature
reduction") motivates chips whose cores differ in power efficiency — e.g.
big.LITTLE pairings or process-variation binning.  This module provides a
drop-in :class:`PowerModel` variant with *per-core* ``alpha_lin`` and
``gamma`` arrays.  The leakage slope ``beta`` may also vary per core; the
thermal model folds it node-wise, so ``A`` stays constant exactly as
before.

All of the paper's machinery works unchanged on top: ``psi`` stays convex
per core, which is all Theorems 3/4 need, and the continuous relaxation /
AO pipeline only interacts with power through ``psi`` / ``psi_inverse``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError
from repro.power.model import PowerModel

__all__ = ["HeterogeneousPowerModel", "big_little_power_model"]


@dataclass(frozen=True)
class HeterogeneousPowerModel:
    """Per-core power coefficients (same interface as :class:`PowerModel`).

    Attributes
    ----------
    alpha_lin, gamma, beta:
        ``(n_cores,)`` arrays of per-core coefficients.
    v_min, v_max:
        Shared supply-voltage range.
    """

    alpha_lin: np.ndarray
    gamma: np.ndarray
    beta: np.ndarray
    v_min: float = 0.6
    v_max: float = 1.3

    def __post_init__(self) -> None:
        alpha = np.atleast_1d(np.asarray(self.alpha_lin, dtype=float))
        gamma = np.atleast_1d(np.asarray(self.gamma, dtype=float))
        beta = np.atleast_1d(np.asarray(self.beta, dtype=float))
        n = max(alpha.size, gamma.size, beta.size)
        alpha, gamma, beta = (
            np.broadcast_to(alpha, n).astype(float),
            np.broadcast_to(gamma, n).astype(float),
            np.broadcast_to(beta, n).astype(float),
        )
        if np.any(alpha < 0):
            raise PowerModelError(f"alpha_lin must be >= 0, got {alpha}")
        if np.any(gamma <= 0):
            raise PowerModelError(f"gamma must be > 0, got {gamma}")
        if np.any(beta < 0):
            raise PowerModelError(f"beta must be >= 0, got {beta}")
        if not (0 < self.v_min <= self.v_max):
            raise PowerModelError(
                f"need 0 < v_min <= v_max, got {self.v_min}, {self.v_max}"
            )
        object.__setattr__(self, "alpha_lin", alpha)
        object.__setattr__(self, "gamma", gamma)
        object.__setattr__(self, "beta", beta)

    @property
    def n_cores(self) -> int:
        """Number of cores the coefficients describe."""
        return self.alpha_lin.shape[0]

    # ------------------------------------------------------------------
    # PowerModel-compatible interface
    # ------------------------------------------------------------------

    def psi(self, v) -> np.ndarray:
        """Per-core heat injection ``alpha_i*v_i + gamma_i*v_i^3`` in W.

        Accepts a ``(n_cores,)`` vector or a ``(batch, n_cores)`` matrix.
        """
        arr = np.asarray(v, dtype=float)
        self._check_voltages(arr)
        return self.alpha_lin * arr + self.gamma * arr**3

    def dynamic_power(self, v) -> np.ndarray:
        """Per-core dynamic component ``gamma_i * v_i^3``."""
        arr = np.asarray(v, dtype=float)
        self._check_voltages(arr)
        return self.gamma * arr**3

    def total_power(self, v, theta) -> np.ndarray:
        """Total per-core power ``psi_i(v_i) + beta_i * theta_i``."""
        return self.psi(v) + self.beta * np.asarray(theta, dtype=float)

    def psi_inverse(self, power: float, core: int = 0) -> float:
        """Solve ``psi_core(v) = power`` for ``v >= 0`` on one core."""
        if power < 0:
            raise PowerModelError(f"power must be >= 0, got {power}")
        if power == 0:
            return 0.0
        roots = np.roots(
            [float(self.gamma[core]), 0.0, float(self.alpha_lin[core]), -float(power)]
        )
        real = roots[np.abs(roots.imag) < 1e-9].real
        positive = real[real >= 0]
        if positive.size == 0:  # pragma: no cover - impossible for valid coeffs
            raise PowerModelError(f"no root for psi(v) = {power} on core {core}")
        return float(positive[0])

    def psi_inverse_array(self, powers) -> np.ndarray:
        """Per-core ``psi_inverse`` over a budget vector (core-wise cubics)."""
        return np.array(
            [
                self.psi_inverse(max(float(q), 0.0), core=i)
                for i, q in enumerate(powers)
            ]
        )

    def psi_inverse_for(self, core: int, power: float) -> float:
        """``psi_inverse`` on a specific core's cubic."""
        return self.psi_inverse(power, core=core)

    def core_model(self, core: int) -> PowerModel:
        """A homogeneous :class:`PowerModel` view of one core."""
        return PowerModel(
            alpha_lin=float(self.alpha_lin[core]),
            gamma=float(self.gamma[core]),
            beta=float(self.beta[core]),
            v_min=self.v_min,
            v_max=self.v_max,
        )

    def _check_voltages(self, arr: np.ndarray) -> None:
        active = arr[arr != 0]
        if active.size == 0:
            return
        lo, hi = float(active.min()), float(active.max())
        if lo < self.v_min - 1e-9 or hi > self.v_max + 1e-9:
            raise PowerModelError(
                f"voltage outside supported range [{self.v_min}, {self.v_max}]: "
                f"min={lo}, max={hi}"
            )


def big_little_power_model(
    big_cores,
    n_cores: int,
    base: PowerModel | None = None,
    little_gamma_scale: float = 0.45,
    little_alpha_scale: float = 0.55,
) -> HeterogeneousPowerModel:
    """A big.LITTLE-style heterogeneous model.

    Parameters
    ----------
    big_cores:
        Indices of the "big" cores (keep the base coefficients); the rest
        become efficiency cores with scaled-down dynamic/leakage power.
    n_cores:
        Total core count.
    base:
        Coefficients of the big cores (default: the calibrated 65 nm set).
    little_gamma_scale, little_alpha_scale:
        Power scaling of the little cores (they also do proportionally
        less work per volt in reality; in the normalized f = v convention
        that is modeled by assigning them less utilization).
    """
    if base is None:
        base = PowerModel()
    big = np.zeros(n_cores, dtype=bool)
    big[np.asarray(big_cores, dtype=int)] = True
    gamma = np.where(big, base.gamma, base.gamma * little_gamma_scale)
    alpha = np.where(big, base.alpha_lin, base.alpha_lin * little_alpha_scale)
    beta = np.full(n_cores, base.beta)
    return HeterogeneousPowerModel(
        alpha_lin=alpha, gamma=gamma, beta=beta,
        v_min=base.v_min, v_max=base.v_max,
    )
