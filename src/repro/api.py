"""Top-level convenience entry points of the frozen public surface.

Three verbs cover the common workflow without touching any submodule:

* :func:`load_platform` — build a platform from a
  :class:`~repro.platforms.PlatformSpec`, a preset name
  (``"paper"``, ``"tech-16-io"``, ...) or a spec document, with keyword
  overrides layered on top (legacy flat kwargs still work behind a
  ``DeprecationWarning``);
* :func:`repro.algorithms.registry.solve` — run a registered scheduler
  (re-exported at the package root);
* :func:`evaluate` — independently price an arbitrary schedule on a
  platform: stable-status peak, feasibility, throughput, as a typed
  :class:`EvaluationResult`.

These, together with ``repro.__all__``, form the supported API; the
snapshot test in ``tests/test_public_api.py`` pins both so the surface
cannot drift silently.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError
from repro.platform import Platform, paper_platform
from repro.platforms import PlatformSpec
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import throughput as schedule_throughput

__all__ = ["load_platform", "EvaluationResult", "evaluate"]


def load_platform(
    spec: PlatformSpec | str | Mapping[str, Any] | None = None,
    **overrides: Any,
) -> Platform:
    """Build a platform from a spec, preset name or spec document.

    The supported forms all resolve through the
    :class:`~repro.platforms.PlatformSpec` registry:

    * a preset or family name — ``load_platform("paper")``,
      ``load_platform("tech-16-io", n_cores=4)``;
    * a :class:`~repro.platforms.PlatformSpec` instance;
    * a spec document ``{"family": ..., "overrides": {...}}`` (the JSON
      wire form journals and manifests carry) or ``{"name": ...,
      <overrides>}``;
    * ``None`` — the default ``paper`` preset.

    Keyword ``overrides`` are layered on top of the spec and win.  The
    built platform carries its spec as provenance (``platform.spec``),
    so content-addressed caches and sweep-derived copies stay in sync.

    .. deprecated:: 1.0
        Flat legacy forms — bare :func:`~repro.platform.paper_platform`
        kwargs like ``load_platform(n_cores=3)`` or a flat dict without
        a ``family``/``name`` key — still build the paper platform but
        emit a ``DeprecationWarning``.  Spell them
        ``load_platform("paper", n_cores=3)`` instead.
    """
    named = isinstance(spec, (PlatformSpec, str)) or (
        isinstance(spec, Mapping) and ("family" in spec or "name" in spec)
    )
    if named:
        return PlatformSpec.coerce(spec).with_overrides(**overrides).build()
    if spec is None and not overrides:
        return PlatformSpec("paper").build()
    if spec is not None and not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"load_platform() takes a PlatformSpec, a preset name, or a "
            f"spec document; got {type(spec).__name__}"
        )
    warnings.warn(
        "passing flat paper_platform kwargs to load_platform() is "
        "deprecated; use load_platform('paper', **overrides) or a "
        "PlatformSpec (see repro.platforms)",
        DeprecationWarning,
        stacklevel=2,
    )
    kwargs: dict[str, Any] = dict(spec or {})
    kwargs.update(overrides)
    try:
        return PlatformSpec("paper", kwargs).build()
    except ConfigurationError:
        # Non-scalar legacy overrides (explicit PowerModel / ladder /
        # rc_params objects) cannot ride in a spec; keep the old direct
        # path for them, without provenance.
        kwargs.setdefault("n_cores", 3)
        return paper_platform(**kwargs)


@dataclass(frozen=True)
class EvaluationResult:
    """Independent pricing of one schedule on one platform.

    Attributes
    ----------
    peak_theta:
        Stable-status peak core temperature, in K above ambient.
    theta_max:
        The platform's threshold in the same units.
    feasible:
        ``peak_theta <= theta_max`` (small tolerance).
    throughput:
        Chip-wide mean speed per core over the period (eq. 5).
    t_ambient_c:
        Ambient in Celsius — the offset :meth:`peak_celsius` adds back.
    """

    peak_theta: float
    theta_max: float
    feasible: bool
    throughput: float
    t_ambient_c: float

    def peak_celsius(self) -> float:
        """The peak as an absolute temperature in Celsius."""
        return self.peak_theta + self.t_ambient_c

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"peak {self.peak_theta:.2f} K above ambient "
            f"({self.peak_celsius():.1f} C) vs limit {self.theta_max:.2f} K "
            f"— {verdict}; throughput {self.throughput:.4f}"
        )


def evaluate(
    platform: Platform | ThermalEngine,
    schedule: PeriodicSchedule,
    general: bool = True,
    grid_per_interval: int | None = None,
) -> EvaluationResult:
    """Price a schedule: stable peak, feasibility, throughput.

    This is the independent check a solver's claimed ``peak_theta`` can
    be audited against.  ``general=True`` (default) uses the MatEx-style
    search valid for arbitrary schedules (with the Theorem-1 fast path
    when the schedule happens to be step-up); ``general=False`` insists
    on the Theorem-1 step-up engine and raises for non-step-up
    schedules.  ``grid_per_interval`` tunes the general search's
    within-interval sampling density.

    Platforms (as opposed to pre-built engines) resolve through the
    process-wide :class:`~repro.service.session.SchedulerSession`, so
    repeated evaluations of the same physics share one engine's
    steady-state and eigenbasis caches.
    """
    if isinstance(platform, ThermalEngine):
        engine = platform
    else:
        from repro.service.session import default_session

        engine = default_session().engine_for(platform)
    if general:
        kwargs: dict[str, Any] = {}
        if grid_per_interval is not None:
            kwargs["grid_per_interval"] = int(grid_per_interval)
        peak = engine.general_peak(schedule, **kwargs)
    else:
        peak = engine.stepup_peak(schedule, check=True)
    theta_max = engine.theta_max
    return EvaluationResult(
        peak_theta=float(peak.value),
        theta_max=float(theta_max),
        feasible=bool(peak.value <= theta_max + 1e-9),
        throughput=float(schedule_throughput(schedule)),
        t_ambient_c=float(engine.model.t_ambient_c),
    )
