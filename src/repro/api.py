"""Top-level convenience entry points of the frozen public surface.

Three verbs cover the common workflow without touching any submodule:

* :func:`load_platform` — build the calibrated paper platform
  (a thin veneer over :func:`repro.platform.paper_platform` that also
  accepts a spec dict, the shape journal rows and manifests use);
* :func:`repro.algorithms.registry.solve` — run a registered scheduler
  (re-exported at the package root);
* :func:`evaluate` — independently price an arbitrary schedule on a
  platform: stable-status peak, feasibility, throughput, as a typed
  :class:`EvaluationResult`.

These, together with ``repro.__all__``, form the supported API; the
snapshot test in ``tests/test_public_api.py`` pins both so the surface
cannot drift silently.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.engine import ThermalEngine
from repro.platform import Platform, paper_platform
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import throughput as schedule_throughput

__all__ = ["load_platform", "EvaluationResult", "evaluate"]


def load_platform(
    spec: Mapping[str, Any] | None = None, **overrides: Any
) -> Platform:
    """Build the calibrated paper platform from a spec dict and/or kwargs.

    ``spec`` takes the same keys as
    :func:`repro.platform.paper_platform` (``n_cores``, ``n_levels``,
    ``t_max_c``, ``t_ambient_c``, ``tau``, ``topology``, ...); explicit
    keyword ``overrides`` win over ``spec`` entries.  ``n_cores``
    defaults to 3 — the paper's reference configuration — so
    ``load_platform()`` alone yields a usable platform.

    Unknown keys are rejected by ``paper_platform`` itself, so a journal
    row's ``payload`` can be splatted in directly only after filtering —
    use ``{k: row[k] for k in ("n_cores", "n_levels", "t_max_c", "tau")}``.
    """
    kwargs: dict[str, Any] = dict(spec or {})
    kwargs.update(overrides)
    kwargs.setdefault("n_cores", 3)
    return paper_platform(**kwargs)


@dataclass(frozen=True)
class EvaluationResult:
    """Independent pricing of one schedule on one platform.

    Attributes
    ----------
    peak_theta:
        Stable-status peak core temperature, in K above ambient.
    theta_max:
        The platform's threshold in the same units.
    feasible:
        ``peak_theta <= theta_max`` (small tolerance).
    throughput:
        Chip-wide mean speed per core over the period (eq. 5).
    t_ambient_c:
        Ambient in Celsius — the offset :meth:`peak_celsius` adds back.
    """

    peak_theta: float
    theta_max: float
    feasible: bool
    throughput: float
    t_ambient_c: float

    def peak_celsius(self) -> float:
        """The peak as an absolute temperature in Celsius."""
        return self.peak_theta + self.t_ambient_c

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"peak {self.peak_theta:.2f} K above ambient "
            f"({self.peak_celsius():.1f} C) vs limit {self.theta_max:.2f} K "
            f"— {verdict}; throughput {self.throughput:.4f}"
        )


def evaluate(
    platform: Platform | ThermalEngine,
    schedule: PeriodicSchedule,
    general: bool = True,
    grid_per_interval: int | None = None,
) -> EvaluationResult:
    """Price a schedule: stable peak, feasibility, throughput.

    This is the independent check a solver's claimed ``peak_theta`` can
    be audited against.  ``general=True`` (default) uses the MatEx-style
    search valid for arbitrary schedules (with the Theorem-1 fast path
    when the schedule happens to be step-up); ``general=False`` insists
    on the Theorem-1 step-up engine and raises for non-step-up
    schedules.  ``grid_per_interval`` tunes the general search's
    within-interval sampling density.

    Platforms (as opposed to pre-built engines) resolve through the
    process-wide :class:`~repro.service.session.SchedulerSession`, so
    repeated evaluations of the same physics share one engine's
    steady-state and eigenbasis caches.
    """
    if isinstance(platform, ThermalEngine):
        engine = platform
    else:
        from repro.service.session import default_session

        engine = default_session().engine_for(platform)
    if general:
        kwargs: dict[str, Any] = {}
        if grid_per_interval is not None:
            kwargs["grid_per_interval"] = int(grid_per_interval)
        peak = engine.general_peak(schedule, **kwargs)
    else:
        peak = engine.stepup_peak(schedule, check=True)
    theta_max = engine.theta_max
    return EvaluationResult(
        peak_theta=float(peak.value),
        theta_max=float(theta_max),
        feasible=bool(peak.value <= theta_max + 1e-9),
        throughput=float(schedule_throughput(schedule)),
        t_ambient_c=float(engine.model.t_ambient_c),
    )
