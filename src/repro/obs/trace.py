"""Hierarchical tracing spans — the zero-dependency core of :mod:`repro.obs`.

A span is one timed region of work (``span("ao/choose_m")``) with a wall
clock, a parent link, and arbitrary key/value attributes (batch size,
cache hit rate, ...).  Spans nest lexically through the process-local
:class:`Tracer`: the span opened innermost is the parent of whatever
opens next, so a traced AO run comes out as a tree —
``solve/AO`` > ``ao/choose_m`` > ... — without any caller threading
context objects around.

The subsystem is **off by default** and the off path is engineered to be
nearly free: with no sink attached, :func:`span` returns one shared
do-nothing context manager (no ``Span`` allocation, no clock read), so
instrumentation can stay compiled into every hot path in production.
Attaching a sink (:class:`~repro.obs.sinks.MemorySink`,
:class:`~repro.obs.sinks.JsonlSink`) turns recording on; see
:func:`capture_spans` for scoped capture.

The tracer is process-local and not thread-safe by design — the repo's
parallelism is process-based (the sharded runner), and each worker
process records its own spans which travel back to the parent inside the
unit's journal row.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "current_span",
    "record_span",
    "capture_spans",
]


@dataclass
class Span:
    """One finished (or in-flight) timed region.

    Attributes
    ----------
    name:
        Hierarchical slash-separated name (``"solve/AO"``,
        ``"ao/choose_m"``, ``"unit/solve_cell"``).
    span_id / parent_id:
        Identifiers scoped to the emitting process (the tracer numbers
        spans 1, 2, ...).  Cross-process consumers (the trace file, the
        journal) must treat them as local to their unit/process.
    start_unix_s:
        Wall-clock start (``time.time()``).
    duration_s:
        Elapsed seconds (monotonic clock), 0.0 while in flight.
    attrs:
        Arbitrary JSON-able key/value attributes.
    """

    name: str
    span_id: int
    parent_id: int | None = None
    start_unix_s: float = 0.0
    duration_s: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def set_attrs(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (the journal / trace-file row shape)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`as_dict` output."""
        parent = doc.get("parent_id")
        return cls(
            name=str(doc.get("name", "")),
            span_id=int(doc.get("span_id", 0)),
            parent_id=int(parent) if parent is not None else None,
            start_unix_s=float(doc.get("start_unix_s", 0.0)),
            duration_s=float(doc.get("duration_s", 0.0)),
            attrs=dict(doc.get("attrs") or {}),
        )


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set_attrs(self, **attrs: Any) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Shared do-nothing context manager — the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context manager: open on enter, emit to sinks on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        self._tracer._close(self._span)
        return False


class Tracer:
    """Process-local span emitter: a stack, an id counter, and sinks.

    ``enabled`` is True exactly while at least one sink is attached;
    every :func:`span` call checks it first, so the disabled cost is one
    attribute load.
    """

    def __init__(self) -> None:
        self._sinks: list[Any] = []
        self._stack: list[Span] = []
        self._next_id: int = 1
        self.enabled: bool = False

    # -- sink management ------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        """Attach a sink (enables tracing while any sink is attached)."""
        self._sinks.append(sink)
        self.enabled = True

    def remove_sink(self, sink: Any) -> None:
        """Detach a sink previously added with :meth:`add_sink`."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    # -- span lifecycle -------------------------------------------------

    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_unix_s=time.time(),
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(sp)
        return sp

    def _close(self, sp: Span) -> None:
        # Tolerate a mismatched close (a caller kept the context object
        # around); only pop if it is actually on top.
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()
        for sink in self._sinks:
            sink.write_span(sp)

    def span(self, name: str, attrs: dict[str, Any]) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def record(
        self,
        name: str,
        duration_s: float,
        attrs: dict[str, Any] | None = None,
        start_unix_s: float | None = None,
    ) -> None:
        """Emit an already-measured span (no context manager involved).

        No-op while disabled.  Used for work timed elsewhere — e.g. the
        runner records one ``runner/unit`` span per settled unit from the
        elapsed time the worker reported.
        """
        if not self.enabled:
            return
        parent = self._stack[-1].span_id if self._stack else None
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_unix_s=(
                start_unix_s if start_unix_s is not None
                else time.time() - duration_s
            ),
            duration_s=float(duration_s),
            attrs=dict(attrs or {}),
        )
        self._next_id += 1
        for sink in self._sinks:
            sink.write_span(sp)

    def current(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None


#: The process-local tracer every :func:`span` call goes through.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """Open a traced region: ``with span("ao/choose_m", m_cap=64) as sp:``.

    Returns a context manager yielding the live :class:`Span` (call
    ``sp.set_attrs(...)`` to attach results discovered mid-region).
    While no sink is attached this returns one shared no-op context
    manager — no allocation, no clock read.
    """
    if not TRACER.enabled:
        return _NULL_CONTEXT
    return TRACER.span(name, attrs)


def current_span() -> Span | _NullSpan:
    """The innermost open span (a no-op span while disabled/idle)."""
    if not TRACER.enabled:
        return _NULL_SPAN
    return TRACER.current() or _NULL_SPAN


def record_span(
    name: str,
    duration_s: float,
    attrs: dict[str, Any] | None = None,
    start_unix_s: float | None = None,
) -> None:
    """Emit an already-measured span through the process tracer."""
    TRACER.record(name, duration_s, attrs=attrs, start_unix_s=start_unix_s)


@contextmanager
def capture_spans(isolate: bool = False) -> Iterator[list[Span]]:
    """Collect every span finished inside the block into a list.

    With ``isolate=True`` the tracer's existing sinks and open-span stack
    are suspended for the duration: captured spans go *only* to the
    returned list and form their own tree.  This is how the runner's
    worker path keeps per-unit spans out of any live trace sink — the
    unit's spans travel in its journal row instead, so they are written
    exactly once whether the unit ran in-process or in a worker.
    """
    from repro.obs.sinks import MemorySink

    sink = MemorySink()
    if isolate:
        saved_sinks, saved_stack = TRACER._sinks, TRACER._stack
        TRACER._sinks, TRACER._stack = [sink], []
        TRACER.enabled = True
        try:
            yield sink.spans
        finally:
            TRACER._sinks, TRACER._stack = saved_sinks, saved_stack
            TRACER.enabled = bool(TRACER._sinks)
    else:
        TRACER.add_sink(sink)
        try:
            yield sink.spans
        finally:
            TRACER.remove_sink(sink)
