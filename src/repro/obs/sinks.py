"""Span sinks: where finished spans go.

A sink is anything with ``write_span(span)`` (and optionally
``close()``).  The tracer is enabled exactly while at least one sink is
attached, so the choice of sink is also the on/off switch:

* :class:`MemorySink` — collect spans in a list (tests, per-unit capture
  in the sharded runner's workers);
* :class:`JsonlSink` — stream spans as JSON Lines to a file (the CLI's
  ``--trace PATH``);
* :class:`NullSink` — swallow spans (keeps the tracer exercised without
  output; mostly useful for overhead measurements).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.obs.trace import Span

__all__ = ["NullSink", "MemorySink", "JsonlSink"]


class NullSink:
    """Accept and discard every span."""

    def write_span(self, span: Span) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collect finished spans in order of completion."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def write_span(self, span: Span) -> None:
        self.spans.append(span)

    def close(self) -> None:
        pass


class JsonlSink:
    """Stream spans (and arbitrary extra documents) as JSON Lines.

    One JSON object per line, written eagerly so a crashed process still
    leaves a readable prefix.  :meth:`write_doc` lets callers append
    non-span rows — the CLI uses it to splice per-unit spans recovered
    from journal rows (tagged with their ``unit_id``) and a final
    metrics snapshot into the same trace file.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write_span(self, span: Span) -> None:
        self.write_doc(span.as_dict())

    def write_doc(self, doc: dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def load(path: str | os.PathLike) -> list[dict[str, Any]]:
        """Read a trace file back into its row dicts (bad lines skipped)."""
        rows: list[dict[str, Any]] = []
        p = Path(path)
        if not p.exists():
            return rows
        with open(p, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return rows
