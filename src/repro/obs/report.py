"""Aggregation and human-readable reporting over recorded spans.

Two consumers:

* ``repro stats <run-dir>`` — summarize a (possibly resumed) sharded run
  from its journal: unit statuses, run-level
  :class:`~repro.engine.EngineStats`, and a per-span-name wall-time
  table aggregated over every unit's serialized spans
  (:func:`run_dir_summary`).
* trace-file post-processing — :func:`aggregate_spans` works on any
  iterable of span dicts (e.g. :meth:`repro.obs.sinks.JsonlSink.load`).

Imports of the heavier layers (:mod:`repro.engine`,
:mod:`repro.runner.journal`) are deferred into the functions that need
them so importing :mod:`repro.obs` stays dependency-free — the package
is banned from importing :mod:`repro.algorithms` / :mod:`repro.experiments`
entirely (enforced by ruff's TID rules and a layering test).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["SpanAggregate", "aggregate_spans", "format_span_table", "run_dir_summary"]


@dataclass
class SpanAggregate:
    """Per-name rollup of many spans."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)


def aggregate_spans(
    span_docs: Iterable[Mapping[str, Any]],
) -> dict[str, SpanAggregate]:
    """Roll span dicts up by name (count, total/mean/min/max seconds)."""
    agg: dict[str, SpanAggregate] = {}
    for doc in span_docs:
        name = str(doc.get("name", ""))
        if not name:
            continue
        entry = agg.get(name)
        if entry is None:
            entry = agg[name] = SpanAggregate(name=name)
        entry.add(float(doc.get("duration_s", 0.0)))
    return agg


def format_span_table(agg: Mapping[str, SpanAggregate], title: str = "spans") -> str:
    """Fixed-width table of span rollups, widest total first."""
    if not agg:
        return f"{title}: none recorded"
    entries = sorted(agg.values(), key=lambda e: -e.total_s)
    width = max(len(e.name) for e in entries)
    width = max(width, 4)
    lines = [
        f"{title}:",
        f"  {'name':<{width}s} {'count':>7s} {'total ms':>10s} "
        f"{'mean ms':>9s} {'max ms':>9s}",
    ]
    for e in entries:
        lines.append(
            f"  {e.name:<{width}s} {e.count:>7d} {e.total_s * 1e3:>10.1f} "
            f"{e.mean_s * 1e3:>9.2f} {e.max_s * 1e3:>9.2f}"
        )
    return "\n".join(lines)


@dataclass
class RunDirSummary:
    """Everything ``repro stats`` prints about one run directory."""

    run_dir: str
    manifest: dict[str, Any]
    n_rows: int
    status_counts: dict[str, int]
    stats: Any  # repro.engine.EngineStats (typed loosely to keep obs light)
    span_agg: dict[str, SpanAggregate] = field(default_factory=dict)
    certificates_accepted: int = 0
    certificates_rejected: int = 0
    fallback_units: int = 0
    min_certified_margin: float | None = None
    #: The ``service_metrics`` row a ``repro serve --run-dir`` journal
    #: closes with (session/cache/coalescer counters); ``None`` for
    #: ordinary sweeps.
    service: dict[str, Any] | None = None

    @property
    def ratio_skipped_cells(self) -> int:
        """Units whose rows ratio summaries will drop as non-finite.

        Mirrors the ``comparison.ratio_cells_skipped`` obs counter the
        experiment layer increments in-process: any journaled unit that
        did not settle ``ok`` leaves a NaN in the comparison ratios.
        """
        return sum(
            n for s, n in self.status_counts.items() if s != "ok"
        )

    @staticmethod
    def _grid_chunk_line() -> str:
        """The dense-scan chunk budget in effect (env override surfaced)."""
        from repro.errors import ConfigurationError
        from repro.thermal.batch import GRID_CHUNK_ELEMENTS, grid_chunk_elements

        try:
            budget = grid_chunk_elements()
        except ConfigurationError as exc:
            return f"  grid chunk budget: INVALID ({exc})"
        line = f"  grid chunk budget: {budget} elements"
        if budget != GRID_CHUNK_ELEMENTS:
            line += " (REPRO_GRID_CHUNK_ELEMENTS override)"
        return line

    def format(self) -> str:
        created = self.manifest.get("created_at", "?")
        declared = self.manifest.get("n_units", "?")
        statuses = ", ".join(
            f"{n} {s}" for s, n in sorted(self.status_counts.items())
        ) or "none settled"
        lines = [
            f"run {self.run_dir}",
            f"  created {created}, {declared} unit(s) declared, "
            f"{self.n_rows} journaled ({statuses})",
        ]
        if self.certificates_accepted or self.certificates_rejected:
            cert_line = (
                f"  certificates: {self.certificates_accepted} accepted, "
                f"{self.certificates_rejected} rejected, "
                f"{self.fallback_units} unit(s) via fallback chain"
            )
            if self.min_certified_margin is not None:
                cert_line += (
                    f" (tightest margin {self.min_certified_margin:+.3f} K)"
                )
            lines.append(cert_line)
        if self.ratio_skipped_cells:
            lines.append(
                f"  ratio summaries skip {self.ratio_skipped_cells} "
                "non-ok unit(s) (counted, not silent)"
            )
        if self.service is not None:
            session = self.service.get("session") or {}
            cache = session.get("cache") or {}
            coalescer = self.service.get("coalescer") or {}
            hits = int(cache.get("memory_hits", 0)) + int(
                cache.get("disk_hits", 0)
            )
            lines.append(
                f"  service: {self.service.get('served', 0)} request(s) "
                f"served, {self.service.get('failed', 0)} failed, "
                f"{session.get('engines_built', 0)} engine(s) built; "
                f"schedule cache {hits} hit(s), "
                f"{cache.get('misses', 0)} miss(es)"
            )
            lines.append(
                f"  coalescing: "
                f"{coalescer.get('coalesced_batches', 0)} batched grid "
                f"call(s) covering "
                f"{coalescer.get('coalesced_requests', 0)} request(s), "
                f"largest batch {coalescer.get('largest_batch', 0)}"
            )
        lines.append(self._grid_chunk_line())
        lines += [
            self.stats.format(),
            format_span_table(self.span_agg, title="unit spans"),
        ]
        return "\n".join(lines)


def run_dir_summary(run_dir: str | os.PathLike) -> RunDirSummary:
    """Summarize a run directory from its manifest and journal.

    Aggregates correctly across resumed runs: the journal is the source
    of truth (last row per unit wins), so spans and stats from units
    finished before an interruption count exactly once.
    """
    from pathlib import Path

    from repro.engine import EngineStats
    from repro.runner.journal import JOURNAL_NAME, Journal, read_manifest

    run_dir = Path(run_dir)
    manifest = read_manifest(run_dir)
    rows = Journal.load(run_dir / JOURNAL_NAME)

    status_counts: dict[str, int] = {}
    span_docs: list[Mapping[str, Any]] = []
    stats = EngineStats()
    accepted = rejected = fallbacks = 0
    min_margin: float | None = None
    service: dict[str, Any] | None = None
    for row in rows.values():
        if row.get("kind") == "service_metrics":
            # The closing counters row of a serve journal — metadata,
            # not a served unit; keep it out of the status tallies.
            service = dict(row.get("service") or {})
            continue
        status = str(row.get("status", "?"))
        status_counts[status] = status_counts.get(status, 0) + 1
        if row.get("fallback"):
            # Serve journals flag fallback outcomes directly (their rows
            # carry no result document).
            fallbacks += 1
        if row.get("stats"):
            stats = stats.combine(EngineStats.from_dict(row["stats"]))
        cert = row.get("certificate")
        if cert:
            if cert.get("accepted", False):
                accepted += 1
            else:
                rejected += 1
            margin = cert.get("margin")
            if margin is not None:
                margin = float(margin)
                min_margin = (
                    margin if min_margin is None else min(min_margin, margin)
                )
        result_doc = row.get("result")
        if result_doc and (result_doc.get("details") or {}).get("fallback"):
            fallbacks += 1
        for doc in row.get("spans") or ():
            span_docs.append(doc)

    return RunDirSummary(
        run_dir=str(run_dir),
        manifest=manifest,
        n_rows=len(rows),
        status_counts=status_counts,
        stats=stats,
        span_agg=aggregate_spans(span_docs),
        certificates_accepted=accepted,
        certificates_rejected=rejected,
        fallback_units=fallbacks,
        min_certified_margin=min_margin,
        service=service,
    )
