"""repro.obs — zero-dependency observability: tracing spans and metrics.

The production-facing telemetry layer the engine, solvers, experiment
grid and sharded runner are instrumented with:

* **spans** (:func:`span`, :func:`capture_spans`) — hierarchical timed
  regions with attributes, off by default and nearly free while off;
* **metrics** (:data:`METRICS`) — process-local counters, gauges and
  fixed-bucket histograms, always on;
* **sinks** (:class:`MemorySink`, :class:`JsonlSink`) — attach one to
  turn span recording on; the CLI's ``--trace PATH`` attaches a
  :class:`JsonlSink`;
* **reports** (:func:`run_dir_summary`, :func:`aggregate_spans`) — the
  machinery behind ``repro stats <run-dir>``.

Layering rule: this package must stay importable without pulling in any
solver or experiment code — it may not import
:mod:`repro.algorithms` or :mod:`repro.experiments` (ruff TID + a
layering test enforce this), so it can sit underneath every other layer.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    SpanAggregate,
    aggregate_spans,
    format_span_table,
    run_dir_summary,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    capture_spans,
    current_span,
    record_span,
    span,
)

__all__ = [
    "span",
    "current_span",
    "record_span",
    "capture_spans",
    "Span",
    "Tracer",
    "TRACER",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SpanAggregate",
    "aggregate_spans",
    "format_span_table",
    "run_dir_summary",
]
