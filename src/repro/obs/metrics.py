"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Unlike spans (off unless a sink is attached), metrics are always-on:
an increment is one integer add and a histogram observation is one short
linear scan, cheap enough to leave in any hot path.  The registry is a
plain process-local dict — :meth:`MetricsRegistry.snapshot` dumps it as
JSON-able data for the trace file or a stats report, and
:meth:`MetricsRegistry.reset` re-zeroes it between runs.

Instruments are get-or-create by name, so call sites need no setup::

    from repro.obs import METRICS

    METRICS.counter("runner.units_ok").inc()
    METRICS.histogram("engine.batch_size").observe(len(batch))
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (values above the last bound
#: land in the implicit overflow bucket).  Geometric, covering the
#: repo's natural ranges: batch sizes, iteration counts, milliseconds.
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution: counts per bucket plus sum and count.

    ``bounds`` are inclusive upper edges; an observation greater than the
    last bound lands in the overflow bucket, so ``len(counts) ==
    len(bounds) + 1`` and ``sum(counts) == count`` always.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(float(b) for b in bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind: type, *args: Any) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        doc: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                doc["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                doc["gauges"][name] = inst.value
            else:
                doc["histograms"][name] = inst.as_dict()
        return doc

    def reset(self) -> None:
        """Drop every instrument (tests, or between CLI commands)."""
        self._instruments.clear()


#: The process-local default registry.
METRICS = MetricsRegistry()
