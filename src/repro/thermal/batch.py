"""Batched stable-status and peak evaluation for candidate schedules.

Every optimizer in this reproduction (the TPT ratio adjustment, the
m-oscillation sweep, PCO's phase search) prices *sets* of candidate
schedules that share one thermal model.  Because the system matrix ``A``
is constant across intervals, the whole stable-status machinery lives in
the eigenbasis of ``A``:

* each interval's propagator ``expm(A l)`` is the diagonal map
  ``y -> exp(lam * l) * y``,
* the monodromy of a period is ``exp(lam * t_p)`` — no dense product
  chain,
* the fixed point ``(I - K)^{-1} d`` of eq. (4) is the elementwise divide
  ``y_d / (1 - exp(lam * t_p))`` — no linear solve.

So K candidates that differ only in their interval lengths and ``t_inf``
vectors reduce to stacked elementwise recurrences over a ``(K, Z, n)``
tensor plus two dense basis changes for the whole batch.  This module
stacks candidate schedules (padding to the longest interval count — a
zero-length interval is the identity), resolves all stable states at
once, and mirrors the scalar peak searches of :mod:`repro.thermal.peak`
grid-for-grid so results match the scalar path to solver precision.

Entry points:

* :func:`periodic_steady_state_batch` — eq. (4) fixed points for K
  schedules, one vectorized pass.
* :func:`stepup_peak_temperature_batch` — Theorem-1 peaks (plus the
  wrap-refine grid) for K step-up schedules.
* :func:`peak_temperature_batch` — the general MatEx-style extrema
  search for arbitrary schedules, with the step-up fast path applied per
  candidate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError, ScheduleError
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up
from repro.thermal.model import ThermalModel
from repro.thermal.peak import PeakResult
from repro.thermal.periodic import PeriodicSolution

__all__ = [
    "periodic_steady_state_batch",
    "stepup_peak_temperature_batch",
    "peak_temperature_batch",
    "grid_chunk_elements",
]

#: Upper bound on the elements of one dense grid tensor ``(K, Z, G, n)``;
#: larger batches are scanned in K-chunks to bound peak memory (~64 MB).
#: Override per run with ``REPRO_GRID_CHUNK_ELEMENTS`` (see
#: :func:`grid_chunk_elements`).
GRID_CHUNK_ELEMENTS = 8_000_000


def grid_chunk_elements() -> int:
    """The effective chunk budget, honoring ``REPRO_GRID_CHUNK_ELEMENTS``.

    The env override lets memory-constrained runs (or stress tests
    forcing many tiny chunks) tune peak memory without editing code.
    ``repro stats`` surfaces the effective value per run.

    Raises
    ------
    ConfigurationError
        If the override is set but not a positive integer.
    """
    raw = os.environ.get("REPRO_GRID_CHUNK_ELEMENTS", "").strip()
    if not raw:
        return GRID_CHUNK_ELEMENTS
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"REPRO_GRID_CHUNK_ELEMENTS must be an integer, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ConfigurationError(
            f"REPRO_GRID_CHUNK_ELEMENTS must be positive, got {value}"
        )
    return value


@dataclass(frozen=True)
class _Stack:
    """Stacked stable-status solution of K candidate schedules.

    All arrays are padded along the interval axis to ``Z = max(z_k)``;
    padding intervals have zero length (identity propagators) so the
    recurrences pass through them unchanged.
    """

    schedules: tuple[PeriodicSchedule, ...]
    z: np.ndarray  # (K,) true interval counts
    lengths: np.ndarray  # (K, Z) interval lengths, 0-padded
    starts: np.ndarray  # (K, Z) interval start offsets within the period
    mask: np.ndarray  # (K, Z) True on real intervals
    t_inf: np.ndarray  # (K, Z, n) theta-space steady states, 0-padded
    g: np.ndarray  # (K, Z, n) eigenbasis steady states
    decay: np.ndarray  # (K, Z, n) exp(lam * length), 1 on padding
    y_bound: np.ndarray  # (K, Z + 1, n) eigenbasis boundary states
    theta_bound: np.ndarray  # (K, Z + 1, n) theta-space boundary states

    @property
    def k(self) -> int:
        return len(self.schedules)

    @property
    def n_pad(self) -> int:
        return self.lengths.shape[1]

    def modal(self) -> np.ndarray:
        """``(K, Z, n)`` eigenbasis modal coefficients per interval.

        Within interval ``q`` of candidate k,
        ``theta(t) = t_inf + W @ (modal * exp(lam t))``.
        """
        return self.y_bound[:, :-1, :] - self.g


def _solve_stack(model: ThermalModel, schedules) -> _Stack:
    """Stack K schedules and resolve every stable status in one pass."""
    schedules = tuple(schedules)
    k = len(schedules)
    n = model.n_nodes
    lam = model.eigen.eigenvalues
    z = np.array([s.n_intervals for s in schedules], dtype=int)
    z_max = int(z.max()) if k else 0

    lengths = np.zeros((k, z_max))
    t_inf = np.zeros((k, z_max, n))
    # Candidate sets re-use a handful of mode vectors; dedup by the exact
    # voltage tuple before touching the model's (rounding-keyed) LRU.
    local: dict[tuple, np.ndarray] = {}
    for i, sched in enumerate(schedules):
        for q, iv in enumerate(sched.intervals):
            lengths[i, q] = iv.length
            theta = local.get(iv.voltages)
            if theta is None:
                theta = model.steady_state(iv.voltages)
                local[iv.voltages] = theta
            t_inf[i, q] = theta
    mask = np.arange(z_max)[None, :] < z[:, None]
    starts = np.concatenate(
        [np.zeros((k, 1)), np.cumsum(lengths, axis=1)[:, :-1]], axis=1
    ) if z_max else np.zeros((k, 0))

    # Eigenbasis steady states and per-interval diagonal propagators.
    g = t_inf @ model.eigen.w_inv.T
    decay = np.exp(lengths[:, :, None] * lam[None, None, :])

    # Affine part of one period from theta(0) = 0, then the eq.-(4) fixed
    # point: the monodromy is diagonal, so (I - K)^{-1} is a divide.
    y = np.zeros((k, n))
    for q in range(z_max):
        y = g[:, q] + decay[:, q] * (y - g[:, q])
    t_p = lengths.sum(axis=1)
    y0 = y / (1.0 - np.exp(t_p[:, None] * lam[None, :])) if k else y

    y_bound = np.empty((k, z_max + 1, n))
    y_bound[:, 0] = y0
    for q in range(z_max):
        y_bound[:, q + 1] = g[:, q] + decay[:, q] * (y_bound[:, q] - g[:, q])
    theta_bound = y_bound @ model.eigen.w.T

    return _Stack(
        schedules=schedules,
        z=z,
        lengths=lengths,
        starts=starts,
        mask=mask,
        t_inf=t_inf,
        g=g,
        decay=decay,
        y_bound=y_bound,
        theta_bound=theta_bound,
    )


def periodic_steady_state_batch(
    model: ThermalModel,
    schedules,
) -> list[PeriodicSolution]:
    """Solve the eq.-(4) stable status of K candidate schedules at once.

    Parameters
    ----------
    model:
        The shared thermal model (supplies the eigendecomposition).
    schedules:
        Iterable of :class:`~repro.schedule.periodic.PeriodicSchedule`
        candidates; interval counts may differ per candidate.

    Returns
    -------
    One :class:`~repro.thermal.periodic.PeriodicSolution` per input, in
    input order, matching :func:`repro.thermal.periodic.periodic_steady_state`
    to solver precision.  The cost is a handful of vectorized passes over
    a ``(K, max_z, n)`` tensor instead of K dense monodromy chains and K
    linear solves.
    """
    stack = _solve_stack(model, schedules)
    out = []
    for i, sched in enumerate(stack.schedules):
        out.append(
            PeriodicSolution(
                schedule=sched,
                boundary_temperatures=stack.theta_bound[i, : stack.z[i] + 1].copy(),
            )
        )
    return out


def _grid_scan(
    stack: _Stack,
    model: ThermalModel,
    grid: int,
    chunk: slice,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense core-temperature grid over every interval of a K-chunk.

    Returns ``(times, temps)`` with shapes ``(k, Z, G)`` and
    ``(k, Z, G, C)`` — local sample instants per interval and the core
    temperatures there.  Padded intervals produce constant rows equal to
    the period-end state (harmless for maxima; callers mask them).
    """
    cores = model.network.core_nodes
    lam = model.eigen.eigenvalues
    w_cores = model.eigen.w[cores, :]
    n_grid = max(int(grid), 2)

    frac = np.linspace(0.0, 1.0, n_grid)
    times = stack.lengths[chunk][:, :, None] * frac[None, None, :]
    modal = stack.modal()[chunk]
    # (k, Z, G, n_modes) -> contract modes against the core rows of W.
    phase = np.exp(times[:, :, :, None] * lam[None, None, None, :])
    temps = (phase * modal[:, :, None, :]) @ w_cores.T
    temps += stack.t_inf[chunk][:, :, None, cores]
    return times, temps


def _grid_chunks(stack: _Stack, model: ThermalModel, grid: int):
    """Yield ``(chunk_slice, times, temps)`` bounding peak memory."""
    per_k = max(stack.n_pad * max(int(grid), 2) * model.n_nodes, 1)
    step = max(1, grid_chunk_elements() // per_k)
    for lo in range(0, stack.k, step):
        chunk = slice(lo, min(lo + step, stack.k))
        times, temps = _grid_scan(stack, model, grid, chunk)
        yield chunk, times, temps


def stepup_peak_temperature_batch(
    model: ThermalModel,
    schedules,
    check: bool = True,
    wrap_refine: bool = True,
    grid: int = 24,
) -> list[PeakResult]:
    """Theorem-1 stable peaks of K step-up schedules in one pass.

    Mirrors :func:`repro.thermal.peak.stepup_peak_temperature` candidate
    by candidate — period-end boundary temperatures plus the vectorized
    wrap-continuation grid — with the grid evaluated for the whole batch
    at once.
    """
    schedules = tuple(schedules)
    if check:
        for sched in schedules:
            if not is_step_up(sched):
                raise ScheduleError(
                    "stepup_peak_temperature requires a step-up schedule; "
                    "use peak_temperature for arbitrary schedules"
                )
    if not schedules:
        return []
    stack = _solve_stack(model, schedules)
    cores = model.network.core_nodes
    k = stack.k

    end = stack.theta_bound[np.arange(k), stack.z, :][:, cores]
    core_peaks = end.copy()
    best_core = np.argmax(end, axis=1)
    best_val = end[np.arange(k), best_core]
    best_time = np.array([s.period for s in schedules])

    if wrap_refine:
        for chunk, times, temps in _grid_chunks(stack, model, grid):
            masked = np.where(
                stack.mask[chunk][:, :, None, None], temps, -np.inf
            )
            np.maximum(
                core_peaks[chunk],
                masked.max(axis=(1, 2)),
                out=core_peaks[chunk],
            )
            kc, zc, gc, cc = masked.shape
            flat = masked.reshape(kc, -1)
            arg = np.argmax(flat, axis=1)
            vals = flat[np.arange(kc), arg]
            better = vals > best_val[chunk]
            if better.any():
                qi, gi, ci = np.unravel_index(arg, (zc, gc, cc))
                rows = np.arange(kc)
                when = stack.starts[chunk][rows, qi] + times[rows, qi, gi]
                sub = np.where(better)[0]
                base = chunk.start if chunk.start else 0
                for j in sub:
                    best_val[base + j] = vals[j]
                    best_core[base + j] = ci[j]
                    best_time[base + j] = when[j]

    return [
        PeakResult(
            value=float(best_val[i]),
            core=int(best_core[i]),
            time=float(best_time[i]),
            core_peaks=core_peaks[i].copy(),
        )
        for i in range(k)
    ]


def _refine_interval_best(
    stack: _Stack,
    model: ThermalModel,
    times: np.ndarray,
    temps: np.ndarray,
    chunk: slice,
) -> list[list[tuple[float, int, float] | None]]:
    """Per-interval best (value, core, local time), Brent-refined.

    Mirrors :meth:`repro.thermal.matex.IntervalSolution.peak`: start from
    the interval's dense-grid maximum, then polish every core whose
    derivative changes sign around its own grid argmax, keeping strict
    improvements in core order.  Padded intervals yield ``None``.
    """
    cores = model.network.core_nodes
    lam = model.eigen.eigenvalues
    w_cores = model.eigen.w[cores, :]
    modal = stack.modal()[chunk]
    kc, zc, gc, cc = temps.shape

    # Bracket candidates: each core's own grid argmax and its neighbours.
    j_star = np.argmax(temps, axis=2)  # (k, Z, C)
    j_lo = np.maximum(j_star - 1, 0)
    j_hi = np.minimum(j_star + 1, gc - 1)
    t_lo = np.take_along_axis(times, j_lo.reshape(kc, zc, -1), axis=2).reshape(
        kc, zc, cc
    )
    t_hi = np.take_along_axis(times, j_hi.reshape(kc, zc, -1), axis=2).reshape(
        kc, zc, cc
    )
    # Derivative of core c at time t: sum_m (W[c, m] * modal_m) * lam_m * e^{lam_m t}.
    modal_c = w_cores[None, None, :, :] * modal[:, :, None, :]  # (k, Z, C, n)
    d_lo = np.sum(modal_c * lam * np.exp(lam * t_lo[..., None]), axis=3)
    d_hi = np.sum(modal_c * lam * np.exp(lam * t_hi[..., None]), axis=3)
    needs_brent = (d_lo > 0) & (d_hi < 0) & (t_hi > t_lo) & stack.mask[chunk][:, :, None]

    # Grid winner of every (candidate, interval) cell in one shot.
    flat_iq = temps.reshape(kc, zc, -1).argmax(axis=2)  # (k, Z)
    gi_all, ci_all = np.unravel_index(flat_iq, (gc, cc))
    val_all = np.take_along_axis(
        temps.reshape(kc, zc, -1), flat_iq[:, :, None], axis=2
    )[:, :, 0]
    t_all = np.take_along_axis(times, gi_all[:, :, None], axis=2)[:, :, 0]

    out: list[list[tuple[float, int, float] | None]] = []
    for i in range(kc):
        per_interval: list[tuple[float, int, float] | None] = []
        for q in range(zc):
            if not stack.mask[chunk][i, q]:
                per_interval.append(None)
                continue
            best = (float(val_all[i, q]), int(ci_all[i, q]), float(t_all[i, q]))
            for c in np.where(needs_brent[i, q])[0]:
                coeffs = modal_c[i, q, c]
                t_star = brentq(
                    lambda t: float(np.sum(coeffs * lam * np.exp(lam * t))),
                    t_lo[i, q, c],
                    t_hi[i, q, c],
                )
                val = float(
                    stack.t_inf[chunk][i, q, cores[c]]
                    + np.sum(coeffs * np.exp(lam * t_star))
                )
                if val > best[0]:
                    best = (val, int(c), float(t_star))
            per_interval.append(best)
        out.append(per_interval)
    return out


def peak_temperature_batch(
    model: ThermalModel,
    schedules,
    grid_per_interval: int = 64,
    refine: bool = True,
    stepup_fast_path: bool = True,
) -> list[PeakResult]:
    """Stable-status peaks of K arbitrary schedules in one vectorized pass.

    The batched counterpart of :func:`repro.thermal.peak.peak_temperature`:
    candidates that are step-up take the Theorem-1 fast path (batched),
    the rest get the dense-grid + Brent extrema search with the grids for
    the whole batch evaluated at once.  Results land in input order.
    """
    schedules = tuple(schedules)
    if not schedules:
        return []

    results: list[PeakResult | None] = [None] * len(schedules)
    general_idx = list(range(len(schedules)))
    if stepup_fast_path:
        stepup_idx = [i for i in general_idx if is_step_up(schedules[i])]
        general_idx = [i for i in general_idx if i not in set(stepup_idx)]
        if stepup_idx:
            fast = stepup_peak_temperature_batch(
                model, [schedules[i] for i in stepup_idx], check=False
            )
            for i, res in zip(stepup_idx, fast):
                results[i] = res
    if not general_idx:
        return results  # type: ignore[return-value]

    subset = tuple(schedules[i] for i in general_idx)
    stack = _solve_stack(model, subset)
    n_cores = model.network.core_nodes.shape[0]

    for chunk, times, temps in _grid_chunks(stack, model, grid_per_interval):
        masked = np.where(stack.mask[chunk][:, :, None, None], temps, -np.inf)
        grid_core_peaks = masked.max(axis=2)  # (k, Z, C)
        if refine:
            interval_best = _refine_interval_best(stack, model, times, temps, chunk)
        else:
            interval_best = None
        base = chunk.start if chunk.start else 0
        for i in range(masked.shape[0]):
            core_peaks = np.full(n_cores, -np.inf)
            best = (-np.inf, 0, 0.0)
            for q in range(stack.z[base + i]):
                core_peaks = np.maximum(core_peaks, grid_core_peaks[i, q])
                if interval_best is not None:
                    cand = interval_best[i][q]
                else:
                    flat = int(np.argmax(temps[i, q]))
                    gi, ci = np.unravel_index(flat, temps.shape[2:])
                    cand = (
                        float(temps[i, q, gi, ci]),
                        int(ci),
                        float(times[i, q, gi]),
                    )
                if cand is not None and cand[0] > best[0]:
                    best = (
                        cand[0],
                        cand[1],
                        stack.starts[base + i, q] + cand[2],
                    )
            core_peaks = np.maximum(
                core_peaks, best[0] * (np.arange(n_cores) == best[1])
            )
            results[general_idx[base + i]] = PeakResult(
                value=float(best[0]),
                core=int(best[1]),
                time=float(best[2]),
                core_peaks=core_peaks,
            )
    return results  # type: ignore[return-value]
