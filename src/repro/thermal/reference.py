"""Independent numerical oracle for the analytic thermal engine.

The paper validates its schedules against HotSpot-5.02 traces.  HotSpot is
a closed C tool; its role here is played by a general-purpose stiff ODE
integrator (`scipy.integrate.solve_ivp`, LSODA) driven by the *same*
``(C, G, P)`` data but none of the eigendecomposition machinery.  Tests
cross-check the closed-form engine against this oracle on random
schedules; algorithm outputs are re-verified with it in the integration
suite.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp

from repro.errors import ThermalModelError
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.model import ThermalModel
from repro.thermal.transient import TraceResult
from repro.util.validation import as_1d_float

__all__ = ["reference_simulate", "reference_peak"]


def reference_simulate(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    theta0: np.ndarray | None = None,
    periods: int = 1,
    samples_per_interval: int = 16,
    rtol: float = 1e-9,
    atol: float = 1e-11,
) -> TraceResult:
    """Integrate ``C dtheta/dt = -G_eff theta + Psi(v(t))`` numerically.

    Interval boundaries are respected exactly (one `solve_ivp` call per
    state interval) so the piecewise-constant forcing never confuses the
    step controller.
    """
    if periods < 1:
        raise ThermalModelError(f"periods must be >= 1, got {periods}")
    if theta0 is None:
        theta0 = np.zeros(model.n_nodes)
    theta = as_1d_float(theta0, "theta0", model.n_nodes).copy()

    inv_c = 1.0 / model.c_diag
    g_eff = model.g_eff

    all_times: list[np.ndarray] = []
    all_temps: list[np.ndarray] = []
    t_base = 0.0
    for _ in range(periods):
        for iv in schedule.intervals:
            psi = model.injection(iv.voltages)

            def rhs(_t, y, _psi=psi):
                return inv_c * (_psi - g_eff @ y)

            local = np.linspace(0.0, iv.length, max(samples_per_interval, 2))
            sol = solve_ivp(
                rhs,
                (0.0, iv.length),
                theta,
                method="LSODA",
                t_eval=local,
                rtol=rtol,
                atol=atol,
            )
            if not sol.success:  # pragma: no cover - defensive
                raise ThermalModelError(f"reference integrator failed: {sol.message}")
            all_times.append(t_base + sol.t)
            all_temps.append(sol.y.T)
            theta = sol.y[:, -1].copy()
            t_base += iv.length

    return TraceResult(
        times=np.concatenate(all_times),
        temperatures=np.vstack(all_temps),
        end_temperature=theta,
    )


def reference_peak(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    settle_periods: int | None = None,
    samples_per_interval: int = 64,
) -> float:
    """Stable-status peak core temperature, by brute-force settling.

    Repeats the schedule until transients die out (several dominant time
    constants), then samples one more period densely and returns the
    maximum core temperature.  Slow by design — this is the oracle.
    """
    if settle_periods is None:
        settle = 8.0 * model.slowest_time_constant
        settle_periods = max(3, int(np.ceil(settle / schedule.period)))
    # Settle cheaply with the analytic engine start... no: stay independent.
    theta = np.zeros(model.n_nodes)
    for _ in range(settle_periods):
        trace = reference_simulate(
            model, schedule, theta0=theta, periods=1, samples_per_interval=2
        )
        theta = trace.end_temperature
    final = reference_simulate(
        model,
        schedule,
        theta0=theta,
        periods=1,
        samples_per_interval=samples_per_interval,
    )
    cores = model.network.core_nodes
    return float(final.temperatures[:, cores].max())
