"""Thermal substrate: RC networks, transient/periodic solvers, peak search."""

from repro.thermal.params import RCParams
from repro.thermal.rc import RCNetwork, build_rc_network, build_single_layer_network
from repro.thermal.stack3d import build_3d_network
from repro.thermal.model import ThermalModel
from repro.thermal.matex import IntervalSolution, interval_solution, interval_peak
from repro.thermal.transient import simulate_piecewise, TraceResult
from repro.thermal.periodic import (
    PeriodicSolution,
    periodic_steady_state,
    stable_trace,
)
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.batch import (
    peak_temperature_batch,
    periodic_steady_state_batch,
    stepup_peak_temperature_batch,
)
from repro.thermal.reference import reference_simulate

__all__ = [
    "RCParams",
    "RCNetwork",
    "build_rc_network",
    "build_single_layer_network",
    "build_3d_network",
    "ThermalModel",
    "IntervalSolution",
    "interval_solution",
    "interval_peak",
    "simulate_piecewise",
    "TraceResult",
    "PeriodicSolution",
    "periodic_steady_state",
    "stable_trace",
    "peak_temperature",
    "stepup_peak_temperature",
    "peak_temperature_batch",
    "periodic_steady_state_batch",
    "stepup_peak_temperature_batch",
    "reference_simulate",
]
