"""Thermal stable status of periodic schedules (eq. (4)).

Running a periodic schedule long enough drives the temperature into the
*thermal stable status*: the state at the period start equals the state at
the period end.  Over one period,

``theta(t_p) = K theta(0) + d``,  ``K = Phi_z ... Phi_1``, ``Phi_q = expm(A l_q)``

and since all eigenvalues of ``A`` are negative, ``rho(K) < 1`` and the
fixed point ``theta_ss(0) = (I - K)^{-1} d`` exists and is unique.  We
compute ``d`` by propagating from zero (linearity: the affine part of one
period) and solve rather than invert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.matex import IntervalSolution, interval_solution
from repro.thermal.model import ThermalModel
from repro.thermal.transient import TraceResult, simulate_schedule_period
from repro.util.linalg import solve_linear

__all__ = ["PeriodicSolution", "periodic_steady_state", "stable_trace"]


@dataclass(frozen=True)
class PeriodicSolution:
    """Stable-status description of a periodic schedule.

    Attributes
    ----------
    schedule:
        The analyzed schedule.
    boundary_temperatures:
        ``(z + 1, n_nodes)`` stable-status temperatures at every scheduling
        point ``t_0 = 0 .. t_z = t_p`` (first and last rows are equal by
        construction).
    """

    schedule: PeriodicSchedule
    boundary_temperatures: np.ndarray

    @property
    def start_temperature(self) -> np.ndarray:
        """``theta_ss(0)`` — the stable state at the period start."""
        return self.boundary_temperatures[0]

    @property
    def end_temperature(self) -> np.ndarray:
        """``theta_ss(t_p)`` (equals the start by periodicity)."""
        return self.boundary_temperatures[-1]

    def interval_solutions(self, model: ThermalModel) -> list[IntervalSolution]:
        """Closed-form solutions for each interval in the stable status."""
        sols = []
        for q, iv in enumerate(self.schedule.intervals):
            sols.append(
                interval_solution(
                    model, self.boundary_temperatures[q], iv.voltages, iv.length
                )
            )
        return sols

    def boundary_peak(self, model: ThermalModel) -> float:
        """Highest *core* temperature among scheduling points."""
        cores = model.network.core_nodes
        return float(self.boundary_temperatures[:, cores].max())


def periodic_steady_state(
    model: ThermalModel,
    schedule: PeriodicSchedule,
) -> PeriodicSolution:
    """Solve the stable status fixed point of eq. (4).

    Cost: one closed-form propagation per interval to get the affine part,
    one dense ``expm`` product chain for ``K``, and one linear solve.
    """
    n = model.n_nodes
    # Affine part d: one period from theta(0) = 0.
    d = simulate_schedule_period(model, schedule, np.zeros(n))

    # Monodromy matrix K = Phi_z ... Phi_1 (dense; n is small: 2N+1 nodes).
    # The per-interval factors are LRU-cached by length: optimizer loops
    # rebuild schedules over the same handful of interval durations.
    k = np.eye(n)
    for iv in schedule.intervals:
        k = model.eigen.expm_cached(iv.length) @ k

    theta0 = solve_linear(np.eye(n) - k, d)

    boundaries = np.empty((schedule.n_intervals + 1, n))
    boundaries[0] = theta0
    theta = theta0
    for q, iv in enumerate(schedule.intervals, start=1):
        theta = model.propagate(theta, iv.length, iv.voltages)
        boundaries[q] = theta
    return PeriodicSolution(schedule=schedule, boundary_temperatures=boundaries)


def stable_trace(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    samples_per_interval: int = 16,
) -> TraceResult:
    """Dense one-period temperature trace in the stable status.

    This is the Fig. 4(b) artifact: the periodic steady-state waveform.
    """
    solution = periodic_steady_state(model, schedule)
    all_times: list[np.ndarray] = []
    all_temps: list[np.ndarray] = []
    t_base = 0.0
    for q, iv in enumerate(schedule.intervals):
        sol = interval_solution(
            model, solution.boundary_temperatures[q], iv.voltages, iv.length
        )
        local = np.linspace(0.0, iv.length, max(samples_per_interval, 2))
        all_times.append(t_base + local)
        all_temps.append(sol.temperatures(local))
        t_base += iv.length
    return TraceResult(
        times=np.concatenate(all_times),
        temperatures=np.vstack(all_temps),
        end_temperature=solution.end_temperature.copy(),
    )
