"""MatEx-style analytic transient solution within one state interval.

Pagani et al. [28] ("MatEx", DATE'15) observed that for the compact model
the transient inside an interval of constant power has the closed form

``theta_i(t) = Tinf_i + sum_k R_ik * exp(lambda_k t)``

with real negative ``lambda_k`` — so temperatures (and their extrema) can
be computed analytically instead of by numerical integration.  This module
implements that method on top of the cached eigendecomposition:

* :func:`interval_solution` builds the modal coefficients once per interval,
* :meth:`IntervalSolution.peak` finds each node's maximum over the interval
  via a vectorized dense grid plus optional Brent refinement of the
  bracketed stationary points.

This is the engine behind peak identification for *arbitrary* schedules
(the expensive case the step-up concept avoids; see
:mod:`repro.thermal.peak`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ThermalModelError
from repro.thermal.model import ThermalModel
from repro.util.validation import as_1d_float

__all__ = ["IntervalSolution", "interval_solution", "interval_peak"]

#: Default number of dense samples per interval when hunting extrema.
DEFAULT_GRID = 64


@dataclass(frozen=True)
class IntervalSolution:
    """Closed-form temperatures over one constant-voltage interval.

    ``theta_i(t) = t_inf[i] + sum_k modal[i, k] * exp(lambdas[k] * t)``
    for ``t`` in ``[0, length]``.
    """

    t_inf: np.ndarray
    modal: np.ndarray
    lambdas: np.ndarray
    length: float

    def temperatures(self, times) -> np.ndarray:
        """Evaluate all node temperatures at the given times.

        Returns shape ``(len(times), n_nodes)``.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < -1e-12) or np.any(times > self.length + 1e-12):
            raise ThermalModelError(
                f"times outside interval [0, {self.length}]"
            )
        exp_matrix = np.exp(np.outer(times, self.lambdas))
        return self.t_inf[None, :] + exp_matrix @ self.modal.T

    def temperature_at(self, t: float) -> np.ndarray:
        """All node temperatures at a single time."""
        return self.temperatures([t])[0]

    def end_temperature(self) -> np.ndarray:
        """Temperatures at the interval end (the next interval's start)."""
        return self.temperature_at(self.length)

    def derivative_at(self, t: float, node: int) -> float:
        """``d theta_node / dt`` at time ``t``."""
        return float(np.sum(self.modal[node] * self.lambdas * np.exp(self.lambdas * t)))

    def peak(
        self,
        nodes: np.ndarray | None = None,
        grid: int = DEFAULT_GRID,
        refine: bool = True,
    ) -> tuple[float, int, float]:
        """Maximum temperature over the interval among ``nodes``.

        Parameters
        ----------
        nodes:
            Node indices to consider (default: all).
        grid:
            Number of dense samples used to bracket extrema.
        refine:
            When True, stationary points bracketed by a derivative sign
            change are polished with Brent's method.

        Returns
        -------
        (value, node, time)
            The peak temperature, which node attains it, and when.
        """
        if self.length <= 0:
            raise ThermalModelError(f"interval length must be > 0, got {self.length}")
        if nodes is None:
            nodes = np.arange(self.t_inf.shape[0])
        nodes = np.asarray(nodes, dtype=int)

        times = np.linspace(0.0, self.length, max(int(grid), 2))
        temps = self.temperatures(times)[:, nodes]  # (grid, len(nodes))

        flat = int(np.argmax(temps))
        ti, ni = np.unravel_index(flat, temps.shape)
        best_val = float(temps[ti, ni])
        best_node = int(nodes[ni])
        best_time = float(times[ti])

        if refine:
            # Refine every node near its own best grid point: a sign change of
            # the derivative between neighbouring samples brackets an extremum.
            for local, node in enumerate(nodes):
                col = temps[:, local]
                j = int(np.argmax(col))
                lo = times[max(j - 1, 0)]
                hi = times[min(j + 1, len(times) - 1)]
                if hi <= lo:
                    continue
                d_lo = self.derivative_at(lo, node)
                d_hi = self.derivative_at(hi, node)
                if d_lo > 0 and d_hi < 0:
                    t_star = brentq(lambda t: self.derivative_at(t, node), lo, hi)
                    val = float(self.temperature_at(t_star)[node])
                    if val > best_val:
                        best_val, best_node, best_time = val, int(node), float(t_star)
        return best_val, best_node, best_time


def interval_solution(
    model: ThermalModel,
    theta0: np.ndarray,
    voltages,
    length: float,
) -> IntervalSolution:
    """Build the closed-form solution for one state interval.

    Parameters
    ----------
    model:
        The thermal model (supplies the eigendecomposition).
    theta0:
        Node temperatures at the interval start (K above ambient).
    voltages:
        Per-core supply voltages held constant over the interval.
    length:
        Interval duration in seconds.
    """
    if length < 0:
        raise ThermalModelError(f"interval length must be >= 0, got {length}")
    theta0 = as_1d_float(theta0, "theta0", model.n_nodes)
    t_inf = model.steady_state(voltages)
    modal = model.eigen.modal_coefficients(theta0 - t_inf)
    return IntervalSolution(
        t_inf=t_inf,
        modal=modal,
        lambdas=model.eigen.eigenvalues,
        length=float(length),
    )


def interval_peak(
    model: ThermalModel,
    theta0: np.ndarray,
    voltages,
    length: float,
    cores_only: bool = True,
    grid: int = DEFAULT_GRID,
    refine: bool = True,
) -> tuple[float, int, float]:
    """Peak temperature within one interval (convenience wrapper).

    Returns ``(value, node, time)``; with ``cores_only`` the search is
    restricted to core nodes (the constraint in Problem 1 is on cores).
    """
    sol = interval_solution(model, theta0, voltages, length)
    nodes = model.network.core_nodes if cores_only else None
    return sol.peak(nodes=nodes, grid=grid, refine=refine)
