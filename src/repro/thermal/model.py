"""The linear thermal model of eq. (2): ``dT/dt = A T + B(v)``.

:class:`ThermalModel` binds an :class:`~repro.thermal.rc.RCNetwork` to a
:class:`~repro.power.model.PowerModel`:

* the leakage feedback ``beta * theta`` on core nodes is folded into the
  system matrix — ``A = -C^{-1} (G - E_beta)`` stays constant across
  running modes exactly as the paper assumes,
* ``B(v) = C^{-1} Psi(v)`` changes per state interval with the voltage
  vector.

Construction verifies that ``G - E_beta`` remains positive definite;
otherwise leakage self-heating has no bounded fixed point and
:class:`~repro.errors.ThermalRunawayError` is raised.

All temperatures are *normalized to ambient* (theta, in K above ambient).
Use :meth:`ThermalModel.to_celsius` for display.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import cached_property

import numpy as np
import scipy.linalg

from repro.errors import ThermalModelError, ThermalRunawayError
from repro.power.model import PowerModel
from repro.thermal.rc import RCNetwork
from repro.util.linalg import EigenExpm, is_positive_definite, solve_linear
from repro.util.validation import as_1d_float

__all__ = ["ThermalModel"]


class ThermalModel:
    """Constant-A linear thermal model of a multi-core platform.

    Parameters
    ----------
    network:
        The assembled RC network (cores + spreaders + sink).
    power:
        The per-core power model supplying ``psi(v)`` and ``beta``.
    t_ambient_c:
        Ambient temperature in Celsius, used only for unit conversion
        (the paper uses 35 C).
    """

    def __init__(
        self,
        network: RCNetwork,
        power: PowerModel,
        t_ambient_c: float = 35.0,
    ) -> None:
        self.network = network
        self.power = power
        self.t_ambient_c = float(t_ambient_c)

        g = network.conductance.copy()
        core = network.core_nodes
        g[core, core] -= power.beta
        if not is_positive_definite(g):
            raise ThermalRunawayError(
                f"leakage feedback beta={power.beta} destabilizes the network: "
                "G - E_beta is not positive definite"
            )
        #: Effective conductance with leakage folded in (symmetric, PD).
        self.g_eff = g
        self.c_diag = network.capacitance
        #: System matrix A of eq. (2).
        self.a = -g / self.c_diag[:, None]
        # Steady-state solves share one Cholesky factorization of G - E_beta,
        # and results are memoized per voltage vector (LRU): the algorithm
        # inner loops re-evaluate the same handful of mode vectors thousands
        # of times, and long optimizer runs must not lose the whole working
        # set when the cache fills.
        self._g_cho = scipy.linalg.cho_factor(self.g_eff)
        self._ss_cache: OrderedDict[tuple[float, ...], np.ndarray] = OrderedDict()
        #: Instrumentation: steady-state Cholesky solves (cache misses).
        self.ss_solves = 0
        #: Instrumentation: steady-state requests served from the LRU.
        self.ss_cache_hits = 0
        #: Instrumentation: voltage rows resolved via :meth:`steady_state_batch`.
        self.ss_batch_rows = 0
        #: Instrumentation: eigendecompositions served by the shared cache.
        self.eig_cache_hits = 0
        #: Instrumentation: eigendecompositions computed from scratch.
        self.eig_cache_misses = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.network.n_cores

    @property
    def n_nodes(self) -> int:
        """Number of thermal nodes."""
        return self.network.n_nodes

    @cached_property
    def eigen(self) -> EigenExpm:
        """Cached eigendecomposition of ``A`` (real negative spectrum).

        Resolved through the process-shared content-keyed eigenbasis cache
        (:mod:`repro.util.eigcache`): models built for bitwise-identical
        system matrices — e.g. sharded-runner units sweeping ``t_max`` or
        power levels on one floorplan — reuse the factors instead of
        re-running the O(n^3) decomposition.  Counters distinguish hits
        (memory or disk) from fresh decompositions.
        """
        from repro.util.eigcache import shared_eigen

        eigen, origin = shared_eigen(self.a, c_diag=self.c_diag)
        if origin == "miss":
            self.eig_cache_misses += 1
        else:
            self.eig_cache_hits += 1
        return eigen

    @cached_property
    def slowest_time_constant(self) -> float:
        """``1 / |lambda_max|`` — the dominant thermal time constant in s."""
        return float(1.0 / np.abs(self.eigen.eigenvalues).min())

    # ------------------------------------------------------------------
    # power / forcing terms
    # ------------------------------------------------------------------

    def injection(self, voltages) -> np.ndarray:
        """Node-level heat injection ``Psi(v)`` (W) for a core voltage vector."""
        v = as_1d_float(voltages, "voltages", self.n_cores)
        psi = np.zeros(self.n_nodes)
        psi[self.network.core_nodes] = np.asarray(self.power.psi(v))
        return psi

    def b_vector(self, voltages) -> np.ndarray:
        """``B(v) = C^{-1} Psi(v)`` of eq. (2)."""
        return self.injection(voltages) / self.c_diag

    # ------------------------------------------------------------------
    # steady state / propagation
    # ------------------------------------------------------------------

    #: Capacity of the per-voltage steady-state LRU cache.
    SS_CACHE_SIZE = 4096

    def steady_state(self, voltages) -> np.ndarray:
        """``T_inf(v) = -A^{-1} B(v)``: solve ``(G - E_beta) theta = Psi(v)``.

        Returns node temperatures above ambient (K).  Results are memoized
        in an LRU keyed by the rounded voltage vector: a hit moves the
        entry to the back, and at capacity the least recently used entry is
        evicted, so the handful of mode vectors an optimizer re-evaluates
        survives arbitrarily long runs.
        """
        key = tuple(np.round(np.atleast_1d(np.asarray(voltages, dtype=float)), 12))
        cached = self._ss_cache.get(key)
        if cached is not None:
            self.ss_cache_hits += 1
            self._ss_cache.move_to_end(key)
            return cached
        self.ss_solves += 1
        theta = scipy.linalg.cho_solve(self._g_cho, self.injection(voltages))
        if len(self._ss_cache) >= self.SS_CACHE_SIZE:
            self._ss_cache.popitem(last=False)
        self._ss_cache[key] = theta
        return theta

    def steady_state_cores(self, voltages) -> np.ndarray:
        """Steady-state temperatures of the core nodes only."""
        return self.steady_state(voltages)[self.network.core_nodes]

    def steady_state_batch(self, voltage_matrix: np.ndarray) -> np.ndarray:
        """Steady-state *core* temperatures for a batch of voltage vectors.

        Parameters
        ----------
        voltage_matrix:
            ``(batch, n_cores)`` supply voltages.

        Returns
        -------
        ``(batch, n_cores)`` core temperatures above ambient.  One shared
        Cholesky solve for the whole batch — this is the hot path of the
        exhaustive search (Algorithm 1).
        """
        volts = np.asarray(voltage_matrix, dtype=float)
        if volts.ndim != 2 or volts.shape[1] != self.n_cores:
            raise ThermalModelError(
                f"voltage_matrix must be (batch, {self.n_cores}), got {volts.shape}"
            )
        self.ss_batch_rows += volts.shape[0]
        psi = np.asarray(self.power.psi(volts))
        rhs = np.zeros((self.n_nodes, volts.shape[0]))
        rhs[self.network.core_nodes, :] = psi.T
        theta = scipy.linalg.cho_solve(self._g_cho, rhs)
        return theta[self.network.core_nodes, :].T

    def steady_state_many(self, voltage_list) -> list[np.ndarray]:
        """Full-node steady states for many voltage vectors at once.

        The LRU-aware batch form of :meth:`steady_state` (which returns
        all nodes, unlike :meth:`steady_state_batch`): memoized vectors
        are served from the cache, the misses share a single Cholesky
        solve, and every fresh result is memoized.  This is the
        steady-state path of the grid kernels
        (:mod:`repro.thermal.grid`), which dedup voltage vectors per
        platform before calling.
        """
        out: list[np.ndarray | None] = [None] * len(voltage_list)
        keys = []
        miss: list[int] = []
        for i, volts in enumerate(voltage_list):
            key = tuple(
                np.round(np.atleast_1d(np.asarray(volts, dtype=float)), 12)
            )
            keys.append(key)
            cached = self._ss_cache.get(key)
            if cached is not None:
                self.ss_cache_hits += 1
                self._ss_cache.move_to_end(key)
                out[i] = cached
            else:
                miss.append(i)
        if miss:
            self.ss_solves += len(miss)
            volts = np.asarray(
                [np.atleast_1d(np.asarray(voltage_list[i], dtype=float)) for i in miss]
            )
            psi = np.asarray(self.power.psi(volts))
            rhs = np.zeros((self.n_nodes, len(miss)))
            rhs[self.network.core_nodes, :] = psi.T
            theta = scipy.linalg.cho_solve(self._g_cho, rhs)
            for j, i in enumerate(miss):
                value = theta[:, j].copy()
                if len(self._ss_cache) >= self.SS_CACHE_SIZE:
                    self._ss_cache.popitem(last=False)
                self._ss_cache[keys[i]] = value
                out[i] = value
        return out  # type: ignore[return-value]

    def propagate(self, theta0: np.ndarray, dt: float, voltages) -> np.ndarray:
        """Advance eq. (3) by ``dt`` seconds under constant voltages.

        ``theta(t0+dt) = T_inf + expm(A dt) (theta0 - T_inf)``.
        """
        if dt < 0:
            raise ThermalModelError(f"dt must be >= 0, got {dt}")
        theta0 = as_1d_float(theta0, "theta0", self.n_nodes)
        t_inf = self.steady_state(voltages)
        return t_inf + self.eigen.apply_expm(dt, theta0 - t_inf)

    def required_injection_for(self, core_theta: np.ndarray) -> np.ndarray:
        """Inverse steady-state problem: pin core temperatures, get powers.

        Given target core temperatures ``core_theta`` (K above ambient),
        solve the steady network for the non-core node temperatures (which
        carry no injection) and return the per-core heat injection ``q``
        (W) each core must produce so the pinned state is an equilibrium:

        ``q = (G - E_beta)[cores, :] @ theta_full``.

        This is the starting point of the continuous relaxation in
        section V (stable state pinned at ``T_max``).
        """
        core_theta = as_1d_float(core_theta, "core_theta", self.n_cores)
        core = self.network.core_nodes
        other = np.setdiff1d(np.arange(self.n_nodes), core)

        g = self.g_eff
        # Non-core rows have zero injection:  G_oo theta_o + G_oc theta_c = 0
        theta_other = solve_linear(g[np.ix_(other, other)], -g[np.ix_(other, core)] @ core_theta)
        theta_full = np.empty(self.n_nodes)
        theta_full[core] = core_theta
        theta_full[other] = theta_other

        q = g[core, :] @ theta_full
        return q

    # ------------------------------------------------------------------
    # unit helpers
    # ------------------------------------------------------------------

    def to_celsius(self, theta) -> np.ndarray:
        """Convert normalized temperatures (K above ambient) to Celsius."""
        return np.asarray(theta, dtype=float) + self.t_ambient_c

    def from_celsius(self, temp_c) -> np.ndarray:
        """Convert Celsius to normalized temperatures."""
        return np.asarray(temp_c, dtype=float) - self.t_ambient_c

    def threshold_theta(self, t_max_c: float) -> float:
        """Peak-temperature threshold in normalized units."""
        theta = float(t_max_c) - self.t_ambient_c
        if theta <= 0:
            raise ThermalModelError(
                f"T_max={t_max_c} C is not above ambient {self.t_ambient_c} C"
            )
        return theta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThermalModel({self.network.floorplan.describe()}, "
            f"beta={self.power.beta}, t_amb={self.t_ambient_c} C)"
        )
