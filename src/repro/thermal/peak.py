"""Peak temperature identification for periodic schedules.

Two paths, mirroring the paper's central computational argument:

* :func:`stepup_peak_temperature` — for *step-up* schedules, Theorem 1
  puts the stable-status peak at the period end, so the peak is just the
  fixed point's final boundary temperature: **O(z) matrix operations, no
  search**.
* :func:`peak_temperature` — for arbitrary schedules the peak may fall
  strictly inside an interval, so we run the MatEx-style analytic extrema
  search in every interval of the stable status (the expensive general
  case; this is what PCO pays for its spatial interleaving).

Both report the peak over *core* nodes, since Problem 1 constrains core
temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up
from repro.thermal.model import ThermalModel
from repro.thermal.periodic import periodic_steady_state

__all__ = ["PeakResult", "peak_temperature", "stepup_peak_temperature"]


@dataclass(frozen=True)
class PeakResult:
    """Where/when the stable-status peak occurs.

    Attributes
    ----------
    value:
        Peak core temperature above ambient (K).
    core:
        Index of the hottest core.
    time:
        Time within the period (seconds from the period start).
    core_peaks:
        ``(n_cores,)`` per-core stable-status maxima — the AO ratio
        adjustment ranks cores by these.
    """

    value: float
    core: int
    time: float
    core_peaks: np.ndarray

    def celsius(self, model: ThermalModel) -> float:
        """The peak in Celsius."""
        return float(self.value + model.t_ambient_c)


def stepup_peak_temperature(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    check: bool = True,
    wrap_refine: bool = True,
    grid: int = 24,
) -> PeakResult:
    """Theorem-1 fast path: stable peak of a step-up schedule.

    Theorem 1 places the peak at the period end, which one stable-status
    solve yields in O(z) matrix operations.  Our reproduction found the
    statement holds only up to a *wrap-continuation epsilon*: a core whose
    voltage is constant across the period wrap keeps the sign of its
    temperature derivative through the wrap (its own power is unchanged
    and its neighbours are still hot), so it can continue rising for a
    short while into the next period and overshoot the period-end value —
    by up to ~0.7 K in randomized step-up schedules on the calibrated
    chip.  With ``wrap_refine`` (default) a vectorized dense grid over the
    stable-status period catches these humps; the cost stays linear in z
    and far below the general engine's refined search.  Pass
    ``wrap_refine=False`` for the literal Theorem-1 value (used by the
    ablation benchmarks).

    Parameters
    ----------
    check:
        Verify the schedule is actually step-up (raise otherwise).  Turn
        off only in hot loops that construct step-up schedules by design.
    wrap_refine:
        Also grid-scan the stable period for wrap-continuation humps.
    grid:
        Samples per interval for the wrap scan.
    """
    if check and not is_step_up(schedule):
        raise ScheduleError(
            "stepup_peak_temperature requires a step-up schedule; "
            "use peak_temperature for arbitrary schedules"
        )
    solution = periodic_steady_state(model, schedule)
    cores = model.network.core_nodes
    end = solution.end_temperature[cores]
    core_peaks = end.copy()
    core_idx = int(np.argmax(end))
    best_val = float(end[core_idx])
    best_time = schedule.period

    if wrap_refine:
        from repro.thermal.matex import interval_solution

        t_base = 0.0
        for q, iv in enumerate(schedule.intervals):
            sol_q = interval_solution(
                model, solution.boundary_temperatures[q], iv.voltages, iv.length
            )
            times = np.linspace(0.0, iv.length, max(grid, 2))
            temps = sol_q.temperatures(times)[:, cores]
            np.maximum(core_peaks, temps.max(axis=0), out=core_peaks)
            flat = int(np.argmax(temps))
            ti, ci = np.unravel_index(flat, temps.shape)
            if temps[ti, ci] > best_val:
                best_val = float(temps[ti, ci])
                core_idx = int(ci)
                best_time = float(t_base + times[ti])
            t_base += iv.length

    return PeakResult(
        value=best_val,
        core=core_idx,
        time=best_time,
        core_peaks=core_peaks,
    )


def peak_temperature(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    grid_per_interval: int = 64,
    refine: bool = True,
    stepup_fast_path: bool = True,
) -> PeakResult:
    """Stable-status peak core temperature of an arbitrary periodic schedule.

    Runs the analytic extrema search of :mod:`repro.thermal.matex` inside
    every state interval.  When the schedule happens to be step-up and
    ``stepup_fast_path`` is set, falls back to the O(z) Theorem-1 path.
    """
    if stepup_fast_path and is_step_up(schedule):
        return stepup_peak_temperature(model, schedule, check=False)

    solution = periodic_steady_state(model, schedule)
    cores = model.network.core_nodes
    n_cores = cores.shape[0]

    core_peaks = np.full(n_cores, -np.inf)
    best = (-np.inf, 0, 0.0)
    t_base = 0.0
    for q, iv in enumerate(schedule.intervals):
        sol_q = _interval(model, solution, q)
        # Track per-core maxima over the dense grid (vectorized), then the
        # refined global peak.
        times = np.linspace(0.0, iv.length, max(grid_per_interval, 2))
        temps = sol_q.temperatures(times)[:, cores]
        core_peaks = np.maximum(core_peaks, temps.max(axis=0))
        val, node, when = sol_q.peak(nodes=cores, grid=grid_per_interval, refine=refine)
        if val > best[0]:
            core_local = int(np.where(cores == node)[0][0])
            best = (val, core_local, t_base + when)
        t_base += iv.length

    core_peaks = np.maximum(core_peaks, best[0] * (np.arange(n_cores) == best[1]))
    return PeakResult(
        value=float(best[0]),
        core=int(best[1]),
        time=float(best[2]),
        core_peaks=core_peaks,
    )


def _interval(model: ThermalModel, solution, q: int):
    from repro.thermal.matex import interval_solution

    iv = solution.schedule.intervals[q]
    return interval_solution(
        model, solution.boundary_temperatures[q], iv.voltages, iv.length
    )
