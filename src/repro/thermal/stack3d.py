"""RC network generator for 3D-stacked chips.

Extends the calibrated single-layer network vertically: one thermal node
per core per layer, lateral conductances within each layer, inter-layer
vertical conductances between aligned cores, and ambient paths that only
the sink-adjacent layer enjoys in full — upper layers keep a small
sidewall leak.  This realizes the intro's 3D story quantitatively: the
same core runs strictly hotter the further it sits from the sink.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.stack3d import Stack3D
from repro.thermal.params import SingleLayerParams
from repro.thermal.rc import RCNetwork

__all__ = ["build_3d_network"]


def build_3d_network(
    stack: Stack3D,
    params: SingleLayerParams | None = None,
    g_interlayer: float = 1.0,
    sidewall_fraction: float = 0.05,
) -> RCNetwork:
    """Assemble the layered RC network for a 3D stack.

    Parameters
    ----------
    stack:
        The stacked floorplan (layer 0 is sink-adjacent).
    params:
        Per-layer parameters (default: the calibrated 65 nm set).  Layer 0
        receives the full ambient conductances; upper layers receive only
        ``sidewall_fraction`` of them.
    g_interlayer:
        Vertical conductance between aligned cores of adjacent layers,
        W/K.  Through-silicon-via arrays plus bonding layers are good
        conductors relative to the package path, so the default exceeds
        the lateral conductance.
    sidewall_fraction:
        Fraction of the direct/boundary ambient conductance upper layers
        keep through the package sidewalls (0 disables — the stack then
        cools exclusively through layer 0).
    """
    if params is None:
        params = SingleLayerParams()
    if g_interlayer <= 0:
        raise ThermalModelError(f"g_interlayer must be > 0, got {g_interlayer}")
    if not (0.0 <= sidewall_fraction <= 1.0):
        raise ThermalModelError(
            f"sidewall_fraction must be in [0, 1], got {sidewall_fraction}"
        )

    base = stack.base
    per_layer = base.n_cores
    n = stack.n_cores
    g = np.zeros((n, n))

    neighbor_counts = base.neighbor_counts()
    for layer in range(stack.n_layers):
        scale = 1.0 if layer == 0 else sidewall_fraction
        for i in range(per_layer):
            node = stack.core_index(layer, i)
            exposed = 4 - int(neighbor_counts[i])
            g[node, node] += scale * (
                params.g_direct + params.g_boundary * exposed
            )
        for i, j, _edge in base.adjacent_pairs():
            a, b = stack.core_index(layer, i), stack.core_index(layer, j)
            g[a, b] -= params.g_lateral
            g[b, a] -= params.g_lateral
            g[a, a] += params.g_lateral
            g[b, b] += params.g_lateral

    for layer in range(stack.n_layers - 1):
        for i in range(per_layer):
            a = stack.core_index(layer, i)
            b = stack.core_index(layer + 1, i)
            g[a, b] -= g_interlayer
            g[b, a] -= g_interlayer
            g[a, a] += g_interlayer
            g[b, b] += g_interlayer

    c = np.full(n, params.c_core)
    return RCNetwork(
        floorplan=base,
        conductance=g,
        capacitance=c,
        core_nodes=np.arange(n),
    )
