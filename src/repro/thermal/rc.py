"""RC network assembly: floorplan + parameters -> (C, G) matrices.

Node layout for an N-core chip (total ``2N + 1`` nodes):

* ``0 .. N-1``    — silicon core nodes (power is injected here),
* ``N .. 2N-1``   — spreader nodes, one under each core,
* ``2N``          — the shared heat-sink node, grounded to ambient.

``G`` is the conductance matrix of the grounded network: off-diagonals are
``-g_ij`` for each thermal link, diagonals hold the sum of incident
conductances including the ambient ground at the sink.  With temperatures
normalized to ambient, the heat equation is ``C dtheta/dt = -G theta + P``.

``G`` is symmetric and — thanks to the ambient ground — positive definite,
which gives the system matrix ``A = -C^{-1} G`` its real negative spectrum
(the property every theorem in the paper relies on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.layout import Floorplan
from repro.thermal.params import RCParams, SingleLayerParams
from repro.util.linalg import is_positive_definite, is_symmetric

__all__ = ["RCNetwork", "build_rc_network", "build_single_layer_network"]


@dataclass(frozen=True)
class RCNetwork:
    """An assembled grounded RC network.

    Attributes
    ----------
    floorplan:
        The originating floorplan (kept for introspection).
    conductance:
        ``(n_nodes, n_nodes)`` symmetric positive-definite G matrix, W/K.
    capacitance:
        ``(n_nodes,)`` diagonal of the C matrix, J/K.
    core_nodes:
        Indices of the nodes where core power is injected.
    """

    floorplan: Floorplan
    conductance: np.ndarray
    capacitance: np.ndarray
    core_nodes: np.ndarray

    def __post_init__(self) -> None:
        g = np.asarray(self.conductance, dtype=float)
        c = np.asarray(self.capacitance, dtype=float)
        if not is_symmetric(g):
            raise ThermalModelError("conductance matrix must be symmetric")
        if c.ndim != 1 or c.shape[0] != g.shape[0]:
            raise ThermalModelError(
                f"capacitance length {c.shape} does not match G {g.shape}"
            )
        if np.any(c <= 0):
            raise ThermalModelError("all node capacitances must be positive")
        if not is_positive_definite(g):
            raise ThermalModelError(
                "conductance matrix must be positive definite "
                "(is the network grounded to ambient?)"
            )
        object.__setattr__(self, "conductance", g)
        object.__setattr__(self, "capacitance", c)
        object.__setattr__(self, "core_nodes", np.asarray(self.core_nodes, dtype=int))

    @property
    def n_nodes(self) -> int:
        """Total node count (cores + spreaders + sink)."""
        return self.conductance.shape[0]

    @property
    def n_cores(self) -> int:
        """Number of power-injecting core nodes."""
        return self.core_nodes.shape[0]

    def injection_matrix(self) -> np.ndarray:
        """``(n_nodes, n_cores)`` selector mapping core powers to node powers."""
        sel = np.zeros((self.n_nodes, self.n_cores))
        sel[self.core_nodes, np.arange(self.n_cores)] = 1.0
        return sel


def build_rc_network(
    floorplan: Floorplan,
    params: RCParams | None = None,
) -> RCNetwork:
    """Assemble the three-layer RC network for a floorplan.

    Parameters
    ----------
    floorplan:
        Core placement; lateral links follow its edge adjacency.
    params:
        RC parameters; defaults to the calibrated 65 nm set.
    """
    if params is None:
        params = RCParams()
    n = floorplan.n_cores
    n_nodes = 2 * n + 1
    sink = 2 * n

    g = np.zeros((n_nodes, n_nodes))

    def link(i: int, j: int, conductance: float) -> None:
        if conductance == 0.0:
            return
        g[i, j] -= conductance
        g[j, i] -= conductance
        g[i, i] += conductance
        g[j, j] += conductance

    for i in range(n):
        link(i, n + i, params.g_vertical)          # core -> own spreader cell
        link(n + i, sink, params.g_spreader_sink)  # spreader cell -> sink

    for i, j, _edge in floorplan.adjacent_pairs():
        link(i, j, params.g_lateral_core)          # silicon lateral
        link(n + i, n + j, params.g_lateral_spreader)  # spreader lateral

    # Ground the sink to ambient: appears only on the diagonal.
    g[sink, sink] += params.g_sink_ambient

    c = np.empty(n_nodes)
    c[:n] = params.c_core
    c[n : 2 * n] = params.c_spreader
    c[sink] = params.c_sink

    return RCNetwork(
        floorplan=floorplan,
        conductance=g,
        capacitance=c,
        core_nodes=np.arange(n),
    )


def build_single_layer_network(
    floorplan: Floorplan,
    params: SingleLayerParams | None = None,
) -> RCNetwork:
    """Assemble the per-core single-node network (the paper's substrate).

    One thermal node per core: a direct ambient conductance
    (``g_direct`` plus ``g_boundary`` per exposed tile edge) and lateral
    conductances between adjacent cores.  See
    :class:`~repro.thermal.params.SingleLayerParams` for the physical
    story.
    """
    if params is None:
        params = SingleLayerParams()
    n = floorplan.n_cores
    g = np.zeros((n, n))

    neighbor_counts = floorplan.neighbor_counts()
    for i in range(n):
        # A tile has 4 edges; those not shared with a neighbour are exposed.
        exposed = 4 - int(neighbor_counts[i])
        g[i, i] += params.g_direct + params.g_boundary * exposed

    for i, j, _edge in floorplan.adjacent_pairs():
        g[i, j] -= params.g_lateral
        g[j, i] -= params.g_lateral
        g[i, i] += params.g_lateral
        g[j, j] += params.g_lateral

    c = np.full(n, params.c_core)
    return RCNetwork(
        floorplan=floorplan,
        conductance=g,
        capacitance=c,
        core_nodes=np.arange(n),
    )
