"""Sub-core grid refinement: how much does core-level lumping cost?

The paper simplifies the floorplan to one thermal node per core.  This
module quantifies that simplification: it subdivides every core tile into
``k x k`` sub-blocks, distributes the core's conductances and capacitance
over them (preserving the lumped totals), spreads the core's power
uniformly, and exposes the result as a normal
:class:`~repro.thermal.rc.RCNetwork` whose *core nodes* are the sub-blocks
of each core.

:func:`refined_peak_error` runs the same schedule through the coarse and
refined models and reports the peak discrepancy — the fidelity check
behind the paper's modeling choice (see
``benchmarks/bench_ablation_grid.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.layout import Floorplan
from repro.power.model import PowerModel
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.model import ThermalModel
from repro.thermal.params import SingleLayerParams
from repro.thermal.rc import RCNetwork

__all__ = ["RefinedModel", "build_refined_model", "refined_peak_error"]


@dataclass(frozen=True)
class RefinedModel:
    """A sub-block refinement of the single-layer core model.

    Attributes
    ----------
    model:
        The refined :class:`ThermalModel` (``k*k`` nodes per core).
    k:
        Subdivision factor per axis.
    n_cores:
        Number of *cores* (each owning ``k*k`` nodes).
    """

    model: ThermalModel
    k: int
    n_cores: int

    def blocks_of(self, core: int) -> np.ndarray:
        """Node indices of one core's sub-blocks."""
        kk = self.k * self.k
        return np.arange(core * kk, (core + 1) * kk)

    def expand_voltages(self, voltages) -> np.ndarray:
        """Per-core voltages -> per-block voltages (power spread uniformly).

        Each block runs at the core's voltage; the block power model's
        coefficients are pre-scaled by ``1/k^2`` so the summed injection
        matches the lumped core.
        """
        v = np.atleast_1d(np.asarray(voltages, dtype=float))
        return np.repeat(v, self.k * self.k)

    def expand_schedule(self, schedule: PeriodicSchedule) -> PeriodicSchedule:
        """Per-core schedule -> per-block schedule."""
        from repro.schedule.intervals import StateInterval

        intervals = tuple(
            StateInterval(
                length=iv.length,
                voltages=tuple(self.expand_voltages(iv.voltages)),
            )
            for iv in schedule.intervals
        )
        return PeriodicSchedule(intervals)

    def core_peak(self, theta_blocks: np.ndarray) -> np.ndarray:
        """Per-core maxima over each core's blocks."""
        kk = self.k * self.k
        return theta_blocks.reshape(self.n_cores, kk).max(axis=1)


def build_refined_model(
    floorplan: Floorplan,
    k: int = 2,
    params: SingleLayerParams | None = None,
    power: PowerModel | None = None,
    t_ambient_c: float = 35.0,
) -> RefinedModel:
    """Subdivide every core into ``k x k`` thermal blocks.

    Conductance accounting (totals preserved vs the lumped model):

    * ambient: each block gets ``1/k^2`` of its core's direct+boundary
      conductance;
    * core-to-core lateral: split evenly over the ``k`` facing block pairs
      of the shared edge;
    * intra-core block-to-block: plate conduction scaled so the
      end-to-end series conductance across the tile matches the silicon's
      lateral conductance at ``k`` times finer pitch (``g_lateral * k``
      per facing pair), which is the standard grid refinement rule;
    * capacitance: ``c_core / k^2`` per block.

    The block power model scales ``alpha_lin`` and ``gamma`` by ``1/k^2``
    so a core's total injection is unchanged.
    """
    if k < 1:
        raise ThermalModelError(f"k must be >= 1, got {k}")
    if params is None:
        params = SingleLayerParams()
    if power is None:
        power = PowerModel()

    n_cores = floorplan.n_cores
    kk = k * k
    n_nodes = n_cores * kk
    g = np.zeros((n_nodes, n_nodes))

    def node(core: int, r: int, c: int) -> int:
        return core * kk + r * k + c

    def link(a: int, b: int, cond: float) -> None:
        if cond == 0.0:
            return
        g[a, b] -= cond
        g[b, a] -= cond
        g[a, a] += cond
        g[b, b] += cond

    neighbor_counts = floorplan.neighbor_counts()
    g_intra = params.g_lateral * k  # finer pitch -> proportionally stiffer
    for core in range(n_cores):
        exposed = 4 - int(neighbor_counts[core])
        g_amb_block = (params.g_direct + params.g_boundary * exposed) / kk
        for r in range(k):
            for c in range(k):
                a = node(core, r, c)
                g[a, a] += g_amb_block
                if c + 1 < k:
                    link(a, node(core, r, c + 1), g_intra)
                if r + 1 < k:
                    link(a, node(core, r + 1, c), g_intra)

    # Core-to-core lateral links: distribute over the k facing block pairs.
    per_pair = params.g_lateral / k
    for i, j, _edge in floorplan.adjacent_pairs():
        ri, ci = floorplan.position(i)
        rj, cj = floorplan.position(j)
        if ri == rj:  # horizontal neighbours: i's right column to j's left
            left, right = (i, j) if ci < cj else (j, i)
            for r in range(k):
                link(node(left, r, k - 1), node(right, r, 0), per_pair)
        else:  # vertical neighbours: i's bottom row to j's top row
            top, bottom = (i, j) if ri < rj else (j, i)
            for c in range(k):
                link(node(top, k - 1, c), node(bottom, 0, c), per_pair)

    capacitance = np.full(n_nodes, params.c_core / kk)
    network = RCNetwork(
        floorplan=floorplan,
        conductance=g,
        capacitance=capacitance,
        core_nodes=np.arange(n_nodes),
    )
    block_power = PowerModel(
        alpha_lin=power.alpha_lin / kk,
        gamma=power.gamma / kk,
        beta=power.beta / kk,
        v_min=power.v_min,
        v_max=power.v_max,
    )
    model = ThermalModel(network, block_power, t_ambient_c=t_ambient_c)
    return RefinedModel(model=model, k=k, n_cores=n_cores)


def refined_peak_error(
    coarse: ThermalModel,
    refined: RefinedModel,
    schedule: PeriodicSchedule,
) -> tuple[float, float, float]:
    """Stable peaks of the same schedule under both models.

    Returns ``(coarse_peak, refined_peak, abs_error)``; the refined peak
    is the maximum over all sub-blocks.
    """
    from repro.thermal.peak import peak_temperature

    coarse_peak = peak_temperature(coarse, schedule).value
    refined_peak = peak_temperature(
        refined.model, refined.expand_schedule(schedule)
    ).value
    return coarse_peak, refined_peak, abs(refined_peak - coarse_peak)
