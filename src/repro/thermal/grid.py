"""Cross-platform batched thermal kernels: (platform × schedule) grids.

:mod:`repro.thermal.batch` vectorized K candidate schedules sharing *one*
thermal model.  The comparison/certify/faults sweeps, however, price
schedules across P platforms — and looped over platforms, re-entering the
batched kernels P times.  This module vectorizes that remaining axis: the
per-platform eigenbases ``(W, lam, W^{-1})`` are small dense matrices, so
they stack into padded 3-D tensors and the whole grid reduces to a few
batched ``matmul`` / elementwise-``exp`` passes.

Padding discipline (the whole trick):

* The **node axis** is padded to ``n_max = max_p(n_nodes)``.  Padded
  eigenvalues are set to ``-1.0`` — any negative value works, it only has
  to keep the eq.-(4) fixed-point divide ``y / (1 - exp(lam * t_p))``
  away from zero.  ``W`` and ``W^{-1}`` are zero-padded, so padded modal
  coordinates start at zero, stay exactly zero through the linear
  recurrences, and contribute exactly nothing to any temperature — grid
  results match the scalar path bit-for-bit in exact arithmetic and to
  1e-9 in floating point.
* The **core axis** is padded to ``c_max`` with index 0 (a valid node);
  padded core columns are masked to ``-inf`` before any maximum.
* The **interval axis** reuses the PR-1 discipline: zero-length padding
  intervals are identity propagators.

Rows of the grid are (platform, schedule) pairs; per-row eigenbases are
gathered by fancy-indexing the stacked tensors with the row's platform
index, so P platforms and R rows cost one tensor walk regardless of how
the rows distribute over platforms.  Dense scans are chunked along the
row axis like :data:`repro.thermal.batch.GRID_CHUNK_ELEMENTS` (same env
override) to bound peak memory.

Entry points mirror the single-platform batch API:

* :func:`periodic_steady_state_grid` — eq.-(4) stable statuses,
* :func:`stepup_peak_temperature_grid` — Theorem-1 peaks + wrap grid,
* :func:`peak_temperature_grid` — the general MatEx-style search with
  the step-up fast path applied per row.

Every entry takes ``items``: a sequence of ``(model, schedule)`` pairs
(models may repeat in any order; each distinct model contributes one
stacked eigenbasis slot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.obs import METRICS
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up
from repro.thermal.batch import grid_chunk_elements
from repro.thermal.model import ThermalModel
from repro.thermal.peak import PeakResult
from repro.thermal.periodic import PeriodicSolution

__all__ = [
    "periodic_steady_state_grid",
    "stepup_peak_temperature_grid",
    "peak_temperature_grid",
]

GridItem = "tuple[ThermalModel, PeriodicSchedule]"

#: Padding eigenvalue for node slots beyond a platform's true dimension.
#: Negative so ``1 - exp(lam * t_p)`` never vanishes; the associated
#: modal coordinates are identically zero so the value is inert.
_PAD_EIGENVALUE = -1.0


@dataclass(frozen=True)
class _GridStack:
    """Stacked stable-status solution of R (platform, schedule) rows.

    Platform tensors are padded along the node/core axes to the largest
    platform; row tensors are additionally padded along the interval axis
    to ``Z = max_r(z_r)`` exactly like :class:`repro.thermal.batch._Stack`.
    """

    models: tuple[ThermalModel, ...]  # distinct platforms, first-seen order
    schedules: tuple[PeriodicSchedule, ...]  # R rows
    pidx: np.ndarray  # (R,) row -> platform slot
    # --- platform axis (P, ...) ---
    lam: np.ndarray  # (P, n_max) eigenvalues, padded with _PAD_EIGENVALUE
    w: np.ndarray  # (P, n_max, n_max) eigenvectors, zero-padded
    w_inv: np.ndarray  # (P, n_max, n_max) inverse bases, zero-padded
    cores: np.ndarray  # (P, c_max) core node indices, padded with 0
    core_mask: np.ndarray  # (P, c_max) True on real cores
    n_cores: np.ndarray  # (P,) true core counts
    n_nodes: np.ndarray  # (P,) true node counts
    # --- row axis (R, ...) ---
    z: np.ndarray  # (R,) true interval counts
    lengths: np.ndarray  # (R, Z) interval lengths, 0-padded
    starts: np.ndarray  # (R, Z) interval start offsets within the period
    mask: np.ndarray  # (R, Z) True on real intervals
    t_inf: np.ndarray  # (R, Z, n_max) theta-space steady states
    y_bound: np.ndarray  # (R, Z + 1, n_max) eigenbasis boundary states
    theta_bound: np.ndarray  # (R, Z + 1, n_max) theta-space boundary states
    g: np.ndarray  # (R, Z, n_max) eigenbasis steady states

    @property
    def r(self) -> int:
        return len(self.schedules)

    @property
    def n_pad(self) -> int:
        return self.lengths.shape[1]

    @property
    def n_max(self) -> int:
        return self.lam.shape[1]

    @property
    def c_max(self) -> int:
        return self.cores.shape[1]

    def modal(self) -> np.ndarray:
        """``(R, Z, n_max)`` eigenbasis modal coefficients per interval."""
        return self.y_bound[:, :-1, :] - self.g

    def row_lam(self) -> np.ndarray:
        """``(R, n_max)`` per-row eigenvalues (gathered platform slots)."""
        return self.lam[self.pidx]


def _stack_platforms(models: "list[ThermalModel]"):
    """Pad the eigenbases of distinct models into (P, ...) tensors."""
    n_max = max(m.n_nodes for m in models)
    c_max = max(m.n_cores for m in models)
    p = len(models)
    lam = np.full((p, n_max), _PAD_EIGENVALUE)
    w = np.zeros((p, n_max, n_max))
    w_inv = np.zeros((p, n_max, n_max))
    cores = np.zeros((p, c_max), dtype=int)
    core_mask = np.zeros((p, c_max), dtype=bool)
    n_cores = np.zeros(p, dtype=int)
    n_nodes = np.zeros(p, dtype=int)
    for j, model in enumerate(models):
        n = model.n_nodes
        eig = model.eigen
        lam[j, :n] = eig.eigenvalues
        w[j, :n, :n] = eig.w
        w_inv[j, :n, :n] = eig.w_inv
        c = model.network.core_nodes
        cores[j, : c.shape[0]] = c
        core_mask[j, : c.shape[0]] = True
        n_cores[j] = c.shape[0]
        n_nodes[j] = n
    return lam, w, w_inv, cores, core_mask, n_cores, n_nodes


def _solve_grid(items) -> _GridStack:
    """Stack R (model, schedule) rows and resolve every stable status."""
    items = tuple(items)
    models: list[ThermalModel] = []
    slots: dict[int, int] = {}
    pidx = np.empty(len(items), dtype=int)
    for i, (model, _) in enumerate(items):
        slot = slots.get(id(model))
        if slot is None:
            slot = len(models)
            slots[id(model)] = slot
            models.append(model)
        pidx[i] = slot
    schedules = tuple(sched for _, sched in items)

    METRICS.counter("grid.calls").inc()
    METRICS.counter("grid.rows").inc(len(items))
    METRICS.counter("grid.platforms").inc(len(models))

    lam, w, w_inv, cores, core_mask, n_cores, n_nodes = _stack_platforms(models)
    n_max = lam.shape[1]
    r = len(items)
    z = np.array([s.n_intervals for s in schedules], dtype=int)
    z_max = int(z.max()) if r else 0

    lengths = np.zeros((r, z_max))
    t_inf = np.zeros((r, z_max, n_max))
    # Dedup steady states per (platform, exact voltage tuple), then solve
    # each platform's unique vectors in one shared-Cholesky batch.
    local: dict[tuple[int, tuple], np.ndarray] = {}
    per_slot: dict[int, list[tuple]] = {}
    for i, (model, sched) in enumerate(items):
        for iv in sched.intervals:
            key = (int(pidx[i]), iv.voltages)
            if key not in local:
                local[key] = None  # type: ignore[assignment]
                per_slot.setdefault(key[0], []).append(iv.voltages)
    for slot, volt_list in per_slot.items():
        for volts, theta in zip(
            volt_list, models[slot].steady_state_many(volt_list)
        ):
            local[(slot, volts)] = theta
    for i, (model, sched) in enumerate(items):
        n = model.n_nodes
        for q, iv in enumerate(sched.intervals):
            lengths[i, q] = iv.length
            t_inf[i, q, :n] = local[(int(pidx[i]), iv.voltages)]
    mask = np.arange(z_max)[None, :] < z[:, None]
    starts = np.concatenate(
        [np.zeros((r, 1)), np.cumsum(lengths, axis=1)[:, :-1]], axis=1
    ) if z_max else np.zeros((r, 0))

    # Eigenbasis steady states via per-row gathered bases:
    # (R, Z, n) @ (R, n, n)^T -> (R, Z, n).  Zero-padded basis rows keep
    # every padded coordinate exactly zero.
    w_inv_rows = w_inv[pidx]
    g = np.matmul(t_inf, w_inv_rows.transpose(0, 2, 1))
    lam_rows = lam[pidx]
    decay = np.exp(lengths[:, :, None] * lam_rows[:, None, :])

    # Affine part of one period from theta(0) = 0, then the eq.-(4) fixed
    # point — diagonal monodromy, so (I - K)^{-1} is an elementwise divide
    # (nonzero on padded slots thanks to the negative padding eigenvalue).
    y = np.zeros((r, n_max))
    for q in range(z_max):
        y = g[:, q] + decay[:, q] * (y - g[:, q])
    t_p = lengths.sum(axis=1)
    y0 = y / (1.0 - np.exp(t_p[:, None] * lam_rows)) if r else y

    y_bound = np.empty((r, z_max + 1, n_max))
    y_bound[:, 0] = y0
    for q in range(z_max):
        y_bound[:, q + 1] = g[:, q] + decay[:, q] * (y_bound[:, q] - g[:, q])
    theta_bound = np.matmul(y_bound, w[pidx].transpose(0, 2, 1))

    return _GridStack(
        models=tuple(models),
        schedules=schedules,
        pidx=pidx,
        lam=lam,
        w=w,
        w_inv=w_inv,
        cores=cores,
        core_mask=core_mask,
        n_cores=n_cores,
        n_nodes=n_nodes,
        z=z,
        lengths=lengths,
        starts=starts,
        mask=mask,
        t_inf=t_inf,
        y_bound=y_bound,
        theta_bound=theta_bound,
        g=g,
    )


def periodic_steady_state_grid(items) -> list[PeriodicSolution]:
    """Eq.-(4) stable statuses of R (platform, schedule) rows at once.

    Parameters
    ----------
    items:
        Sequence of ``(model, schedule)`` pairs; models may repeat and
        differ in node/core counts.

    Returns
    -------
    One :class:`~repro.thermal.periodic.PeriodicSolution` per row, in
    input order, matching the scalar
    :func:`repro.thermal.periodic.periodic_steady_state` to 1e-9.
    """
    items = tuple(items)
    if not items:
        return []
    stack = _solve_grid(items)
    out = []
    for i, (model, sched) in enumerate(items):
        out.append(
            PeriodicSolution(
                schedule=sched,
                boundary_temperatures=stack.theta_bound[
                    i, : stack.z[i] + 1, : model.n_nodes
                ].copy(),
            )
        )
    return out


def _grid_scan_rows(stack: _GridStack, grid: int, chunk: slice):
    """Dense core-temperature scan of a row chunk.

    Returns ``(times, temps)`` with shapes ``(r, Z, G)`` and
    ``(r, Z, G, c_act)`` where ``c_act <= c_max`` is the chunk's own
    largest core count — the node/core axes are trimmed to the chunk's
    actual maxima (padded slots beyond them are inert by construction),
    so a chunk of small platforms never pays for the grid's largest one.
    Padded cores below ``c_act`` carry node-0 temperatures; callers mask
    them with ``stack.core_mask``.
    """
    n_grid = max(int(grid), 2)
    rows = stack.pidx[chunk]
    n_act = int(stack.n_nodes[rows].max())
    c_act = int(stack.n_cores[rows].max())
    lam_rows = stack.lam[rows][:, :n_act]  # (r, n_act)
    frac = np.linspace(0.0, 1.0, n_grid)
    times = stack.lengths[chunk][:, :, None] * frac[None, None, :]
    modal = stack.modal()[chunk][:, :, :n_act]
    # (r, Z, G, n) elementwise, then contract modes against the core rows
    # of each row's W: (r, Z, G, n) @ (r, 1, n, c) -> (r, Z, G, c).
    phase = np.exp(times[:, :, :, None] * lam_rows[:, None, None, :])
    w_cores = np.take_along_axis(
        stack.w[rows][:, :, :n_act], stack.cores[rows][:, :c_act, None], axis=1
    )  # (r, c_act, n_act)
    temps = np.matmul(phase * modal[:, :, None, :],
                      w_cores.transpose(0, 2, 1)[:, None, :, :])
    t_inf_cores = np.take_along_axis(
        stack.t_inf[chunk], stack.cores[rows][:, None, :c_act], axis=2
    )  # (r, Z, c_act)
    temps += t_inf_cores[:, :, None, :]
    return times, temps


def _grid_chunks_rows(stack: _GridStack, grid: int):
    """Yield ``(chunk_slice, times, temps)`` bounding peak memory.

    Chunks never cross a node-count boundary in the row order: a run of
    same-sized platforms scans at its *own* width (see
    :func:`_grid_scan_rows`), so grids whose rows arrive grouped by
    platform — how every sweep builds them — pay no padding waste for
    their small platforms.  Interleaved row orders still evaluate
    correctly, just in shorter chunks.
    """
    per_row = max(stack.n_pad * max(int(grid), 2) * stack.n_max, 1)
    step = max(1, grid_chunk_elements() // per_row)
    sizes = stack.n_nodes[stack.pidx]
    bounds = [0, *(np.nonzero(np.diff(sizes))[0] + 1), stack.r]
    for b0, b1 in zip(bounds[:-1], bounds[1:]):
        for lo in range(int(b0), int(b1), step):
            chunk = slice(lo, min(lo + step, int(b1)))
            times, temps = _grid_scan_rows(stack, grid, chunk)
            yield chunk, times, temps


def _row_mask(stack: _GridStack, chunk: slice, c_act: int) -> np.ndarray:
    """``(r, Z, 1, c_act)`` combined interval × core validity mask."""
    return (
        stack.mask[chunk][:, :, None, None]
        & stack.core_mask[stack.pidx[chunk]][:, None, None, :c_act]
    )


def _boundary_core_temps(stack: _GridStack) -> np.ndarray:
    """``(R, c_max)`` period-end core temperatures (padded cores junk)."""
    r = stack.r
    end = stack.theta_bound[np.arange(r), stack.z, :]  # (R, n_max)
    return np.take_along_axis(end, stack.cores[stack.pidx], axis=1)


def stepup_peak_temperature_grid(
    items,
    check: bool = True,
    wrap_refine: bool = True,
    grid: int = 24,
) -> list[PeakResult]:
    """Theorem-1 stable peaks of R (platform, schedule) step-up rows.

    The cross-platform analogue of
    :func:`repro.thermal.batch.stepup_peak_temperature_batch`: one stacked
    stable-status pass plus one chunked wrap-continuation grid for the
    whole (platform × schedule) grid.  Matches the scalar
    :func:`repro.thermal.peak.stepup_peak_temperature` per row to 1e-9.
    """
    items = tuple(items)
    if check:
        for _, sched in items:
            if not is_step_up(sched):
                raise ScheduleError(
                    "stepup_peak_temperature requires a step-up schedule; "
                    "use peak_temperature_grid for arbitrary schedules"
                )
    if not items:
        return []
    stack = _solve_grid(items)
    r = stack.r
    cmask = stack.core_mask[stack.pidx]  # (R, c_max)

    end = np.where(cmask, _boundary_core_temps(stack), -np.inf)
    core_peaks = end.copy()
    best_core = np.argmax(end, axis=1)
    best_val = end[np.arange(r), best_core]
    best_time = np.array([s.period for s in stack.schedules])

    if wrap_refine:
        for chunk, times, temps in _grid_chunks_rows(stack, grid):
            kc, zc, gc, cc = temps.shape
            masked = np.where(_row_mask(stack, chunk, cc), temps, -np.inf)
            sub = core_peaks[chunk][:, :cc]
            np.maximum(sub, masked.max(axis=(1, 2)), out=sub)
            flat = masked.reshape(kc, -1)
            arg = np.argmax(flat, axis=1)
            vals = flat[np.arange(kc), arg]
            better = vals > best_val[chunk]
            if better.any():
                qi, gi, ci = np.unravel_index(arg, (zc, gc, cc))
                rows = np.arange(kc)
                when = stack.starts[chunk][rows, qi] + times[rows, qi, gi]
                base = chunk.start if chunk.start else 0
                for j in np.where(better)[0]:
                    best_val[base + j] = vals[j]
                    best_core[base + j] = ci[j]
                    best_time[base + j] = when[j]

    n_cores = stack.n_cores[stack.pidx]
    return [
        PeakResult(
            value=float(best_val[i]),
            core=int(best_core[i]),
            time=float(best_time[i]),
            core_peaks=core_peaks[i, : n_cores[i]].copy(),
        )
        for i in range(r)
    ]


def _refine_interval_best_rows(
    stack: _GridStack,
    times: np.ndarray,
    temps: np.ndarray,
    chunk: slice,
) -> list[list[tuple[float, int, float] | None]]:
    """Per-interval best (value, core, local time), Brent-refined.

    The cross-platform mirror of
    :func:`repro.thermal.batch._refine_interval_best`, with every basis
    quantity gathered per row.  Padded intervals and padded cores yield
    no candidates.
    """
    rows = stack.pidx[chunk]
    kc, zc, gc, cc = temps.shape
    n_act = int(stack.n_nodes[rows].max())
    lam_rows = stack.lam[rows][:, :n_act]  # (r, n_act)
    w_cores = np.take_along_axis(
        stack.w[rows][:, :, :n_act], stack.cores[rows][:, :cc, None], axis=1
    )  # (r, cc, n_act)
    modal = stack.modal()[chunk][:, :, :n_act]
    cmask = stack.core_mask[rows][:, :cc]  # (r, cc)
    neg_temps = np.where(cmask[:, None, None, :], temps, -np.inf)

    j_star = np.argmax(temps, axis=2)  # (r, Z, C)
    j_lo = np.maximum(j_star - 1, 0)
    j_hi = np.minimum(j_star + 1, gc - 1)
    t_lo = np.take_along_axis(times, j_lo.reshape(kc, zc, -1), axis=2).reshape(
        kc, zc, cc
    )
    t_hi = np.take_along_axis(times, j_hi.reshape(kc, zc, -1), axis=2).reshape(
        kc, zc, cc
    )
    # Derivative of core c at local time t:
    # sum_m (W[c, m] * modal_m) * lam_m * e^{lam_m t}.
    modal_c = w_cores[:, None, :, :] * modal[:, :, None, :]  # (r, Z, C, n)
    lam_b = lam_rows[:, None, None, :]
    d_lo = np.sum(modal_c * lam_b * np.exp(lam_b * t_lo[..., None]), axis=3)
    d_hi = np.sum(modal_c * lam_b * np.exp(lam_b * t_hi[..., None]), axis=3)
    needs_brent = (
        (d_lo > 0)
        & (d_hi < 0)
        & (t_hi > t_lo)
        & stack.mask[chunk][:, :, None]
        & cmask[:, None, :]
    )

    # Grid winner of every (row, interval) cell in one shot (padded cores
    # excluded via the -inf mask).
    flat_iq = neg_temps.reshape(kc, zc, -1).argmax(axis=2)  # (r, Z)
    gi_all, ci_all = np.unravel_index(flat_iq, (gc, cc))
    val_all = np.take_along_axis(
        neg_temps.reshape(kc, zc, -1), flat_iq[:, :, None], axis=2
    )[:, :, 0]
    t_all = np.take_along_axis(times, gi_all[:, :, None], axis=2)[:, :, 0]

    cores_rows = stack.cores[rows][:, :cc]

    # Every bracketed candidate across the whole chunk refines at once:
    # the derivative crosses + -> - inside [t_lo, t_hi], so 64 vectorized
    # bisection halvings pin the extremum to ~2^-64 of the bracket — and
    # the temperature is *flat* there (d/dt = 0), so the residual time
    # error contributes far below the 1e-9 parity budget the scalar
    # brentq path is held to.
    ri, qi, ci = np.nonzero(needs_brent)
    if ri.size:
        mc = modal_c[ri, qi, ci]  # (N, n)
        lam_sel = lam_rows[ri]  # (N, n)
        lo = t_lo[ri, qi, ci].copy()
        hi = t_hi[ri, qi, ci].copy()
        d_coeff = mc * lam_sel
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            d_mid = np.einsum(
                "kn,kn->k", d_coeff, np.exp(lam_sel * mid[:, None])
            )
            pos = d_mid > 0
            lo = np.where(pos, mid, lo)
            hi = np.where(pos, hi, mid)
        t_star = 0.5 * (lo + hi)
        vals = stack.t_inf[chunk][ri, qi, cores_rows[ri, ci]] + np.einsum(
            "kn,kn->k", mc, np.exp(lam_sel * t_star[:, None])
        )
        for k in range(ri.size):
            i, q = ri[k], qi[k]
            if vals[k] > val_all[i, q]:
                val_all[i, q] = vals[k]
                ci_all[i, q] = ci[k]
                t_all[i, q] = t_star[k]

    mask_c = stack.mask[chunk]
    return [
        [
            (float(val_all[i, q]), int(ci_all[i, q]), float(t_all[i, q]))
            if mask_c[i, q]
            else None
            for q in range(zc)
        ]
        for i in range(kc)
    ]


def peak_temperature_grid(
    items,
    grid_per_interval: int = 64,
    refine: bool = True,
    stepup_fast_path: bool = True,
) -> list[PeakResult]:
    """Stable-status peaks of R (platform, schedule) rows in one pass.

    The cross-platform counterpart of
    :func:`repro.thermal.batch.peak_temperature_batch`: rows whose
    schedule is step-up take the Theorem-1 fast path (grid-batched), the
    rest get the dense-grid + Brent extrema search with the grids for the
    whole (platform × schedule) set evaluated at once.  Results land in
    input order and match :func:`repro.thermal.peak.peak_temperature`
    per row to 1e-9.
    """
    items = tuple(items)
    if not items:
        return []

    results: list[PeakResult | None] = [None] * len(items)
    general_idx = list(range(len(items)))
    if stepup_fast_path:
        stepup_idx = [i for i in general_idx if is_step_up(items[i][1])]
        general_idx = [i for i in general_idx if i not in set(stepup_idx)]
        if stepup_idx:
            fast = stepup_peak_temperature_grid(
                [items[i] for i in stepup_idx], check=False
            )
            for i, res in zip(stepup_idx, fast):
                results[i] = res
    if not general_idx:
        return results  # type: ignore[return-value]

    subset = tuple(items[i] for i in general_idx)
    stack = _solve_grid(subset)
    n_cores_rows = stack.n_cores[stack.pidx]

    for chunk, times, temps in _grid_chunks_rows(stack, grid_per_interval):
        masked = np.where(_row_mask(stack, chunk, temps.shape[3]), temps, -np.inf)
        grid_core_peaks = masked.max(axis=2)  # (r, Z, C)
        if refine:
            interval_best = _refine_interval_best_rows(stack, times, temps, chunk)
        else:
            interval_best = None
        base = chunk.start if chunk.start else 0
        for i in range(masked.shape[0]):
            nc = int(n_cores_rows[base + i])
            core_peaks = np.full(nc, -np.inf)
            best = (-np.inf, 0, 0.0)
            for q in range(stack.z[base + i]):
                core_peaks = np.maximum(core_peaks, grid_core_peaks[i, q, :nc])
                if interval_best is not None:
                    cand = interval_best[i][q]
                else:
                    flat = int(np.argmax(masked[i, q]))
                    gi, ci = np.unravel_index(flat, masked.shape[2:])
                    cand = (
                        float(temps[i, q, gi, ci]),
                        int(ci),
                        float(times[i, q, gi]),
                    )
                if cand is not None and cand[0] > best[0]:
                    best = (
                        cand[0],
                        cand[1],
                        stack.starts[base + i, q] + cand[2],
                    )
            core_peaks = np.maximum(
                core_peaks, best[0] * (np.arange(nc) == best[1])
            )
            results[general_idx[base + i]] = PeakResult(
                value=float(best[0]),
                core=int(best[1]),
                time=float(best[2]),
                core_peaks=core_peaks,
            )
    return results  # type: ignore[return-value]
