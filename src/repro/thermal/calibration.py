"""Calibrate the thermal/power constants against the paper's anchors.

The paper reports concrete numbers for its running examples but not the
full parameter set behind them.  This module recovers a consistent
parameterization by nonlinear least squares over the observable anchors:

* the ideal continuous voltages of the 3-core motivation example
  (``[1.2085, 1.1748, 1.2085]`` at ``T_max = 65 C``),
* the feasibility frontier of the 2-level exhaustive search on the same
  chip (EXS picks ``[0.6, 0.6, 1.3]``; two simultaneous high cores are
  infeasible),
* the Table III operating point: at ``t_p = 20 ms`` the high-speed ratios
  ``[0.1733, 0.8211, 0.1733]`` sit exactly on the 65 C constraint,
* the Fig. 3 step-up corner (6 s period, 50/50 duty) peaking at 84.13 C,
* (soft) the Fig. 2 two-core alternating schedule peaking near 53.3 C.

The fitted values are baked into the defaults of
:class:`~repro.thermal.params.SingleLayerParams` and
:class:`~repro.power.model.PowerModel`; rerun :func:`calibrate` to
regenerate them (see ``examples/calibration_fit.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import least_squares

from repro.errors import ConvergenceError
from repro.floorplan.library import floorplan_2x1, floorplan_3x1
from repro.power.model import PowerModel
from repro.schedule.builders import phase_schedule, two_mode_schedule
from repro.thermal.model import ThermalModel
from repro.thermal.params import SingleLayerParams
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.rc import build_single_layer_network

__all__ = [
    "AnchorSet",
    "CalibrationResult",
    "calibrate",
    "anchor_residuals",
    "solve_level_anchors",
]


@dataclass(frozen=True)
class AnchorSet:
    """The paper's observable anchor numbers (normalized to 35 C ambient)."""

    #: Ideal continuous voltages on the 1x3 chip at theta_max = 30 K.
    ideal_voltages: tuple[float, float, float] = (1.2085, 1.1748, 1.2085)
    theta_max: float = 30.0
    #: Feasibility margin (K) for the EXS frontier anchors.
    exs_margin: float = 0.5
    #: Table III @ 20 ms: these high-ratios sit exactly on the constraint.
    table3_ratios: tuple[float, float, float] = (0.1733, 0.8211, 0.1733)
    table3_period: float = 0.020
    #: Fig. 3 corner: 6 s period, 50/50 duty, all-aligned -> 84.13 C.
    fig3_peak: float = 49.13
    fig3_period: float = 6.0
    #: Fig. 2: 2-core alternating 100 ms schedule -> 53.3 C (soft).
    fig2_peak: float = 18.3
    fig2_period: float = 0.100
    #: Residual weights, matched positionally to anchor_residuals().
    #: The Fig. 3 / Fig. 2 absolute peaks get low weights: they are not
    #: simultaneously attainable with the other anchors under any passive
    #: symmetric network (see EXPERIMENTS.md), so they act as soft pulls.
    weights: tuple[float, ...] = field(
        default=(20.0, 20.0, 3.0, 3.0, 2.0, 0.5, 0.1)
    )


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration run."""

    params: SingleLayerParams
    power: PowerModel
    residuals: np.ndarray
    cost: float

    def summary(self) -> str:
        """Human-readable report of the fitted constants."""
        p, w = self.params, self.power
        lines = [
            "calibrated single-layer parameters:",
            f"  g_direct   = {p.g_direct:.6f} W/K",
            f"  g_boundary = {p.g_boundary:.6f} W/K per exposed edge",
            f"  g_lateral  = {p.g_lateral:.6f} W/K",
            f"  c_core     = {p.c_core:.6e} J/K",
            "calibrated power model:",
            f"  alpha_lin  = {w.alpha_lin:.6f} W/V",
            f"  gamma      = {w.gamma:.6f} W/V^3",
            f"  beta       = {w.beta:.6f} W/K (fixed)",
            f"weighted cost = {self.cost:.6f}",
        ]
        return "\n".join(lines)


def _models(params: SingleLayerParams, power: PowerModel):
    m3 = ThermalModel(build_single_layer_network(floorplan_3x1(), params), power)
    m2 = ThermalModel(build_single_layer_network(floorplan_2x1(), params), power)
    return m3, m2


def _softplus(x: float, sharpness: float = 4.0) -> float:
    """Smooth hinge used for the one-sided feasibility anchors."""
    return float(np.logaddexp(0.0, sharpness * x) / sharpness)


def anchor_residuals(
    params: SingleLayerParams,
    power: PowerModel,
    anchors: AnchorSet | None = None,
) -> np.ndarray:
    """Weighted residual vector over all anchors (see module docstring)."""
    if anchors is None:
        anchors = AnchorSet()
    m3, m2 = _models(params, power)
    th = anchors.theta_max
    res = []

    # (0, 1) ideal continuous voltages on the 1x3 chip.
    q = m3.required_injection_for(np.full(3, th))
    v_ideal = np.array([power.psi_inverse(max(qi, 0.0)) for qi in q])
    res.append(v_ideal[0] - anchors.ideal_voltages[0])
    res.append(v_ideal[1] - anchors.ideal_voltages[1])

    # (2) [1.3, 0.6, 1.3] must be infeasible by at least the margin.
    hot = m3.steady_state_cores([1.3, 0.6, 1.3]).max()
    res.append(_softplus((th + anchors.exs_margin) - hot))

    # (3) [1.3, 0.6, 0.6] must be feasible by at least the margin.
    ok = m3.steady_state_cores([1.3, 0.6, 0.6]).max()
    res.append(_softplus(ok - (th - anchors.exs_margin)))

    # (4) Table III @ 20 ms: step-up two-mode schedule exactly on T_max.
    sched = two_mode_schedule(
        0.6, 1.3, np.asarray(anchors.table3_ratios), anchors.table3_period
    )
    peak = stepup_peak_temperature(m3, sched, check=False).value
    res.append(peak - th)

    # (5) Fig. 3 corner: 6 s period, 50/50 aligned -> 84.13 C.
    sched = two_mode_schedule(0.6, 1.3, np.full(3, 0.5), anchors.fig3_period)
    peak = stepup_peak_temperature(m3, sched, check=False).value
    res.append(peak - anchors.fig3_peak)

    # (6, soft) Fig. 2: two-core alternating schedule -> 53.3 C.
    half = anchors.fig2_period / 2.0
    sched = phase_schedule(
        0.6, 1.3, high_length=half, high_start=[0.0, half], period=anchors.fig2_period
    )
    peak = peak_temperature(m2, sched).value
    res.append(peak - anchors.fig2_peak)

    out = np.asarray(res, dtype=float)
    return out * np.asarray(anchors.weights[: out.size])


def solve_level_anchors(
    power: PowerModel,
    anchors: AnchorSet | None = None,
) -> tuple[float, float]:
    """Solve the ideal-voltage anchors for ``(g_direct, g_boundary)`` exactly.

    At the ideal continuous operating point every core temperature is
    pinned at ``theta_max``, so lateral flows vanish and the steady-state
    balance per core reduces to

    ``psi(v_i) = theta_max * (g_direct + n_exposed_i * g_boundary - beta)``.

    On the 1x3 chip the edge cores have 3 exposed tile edges and the middle
    core 2, giving two linear equations in the two unknowns.
    """
    if anchors is None:
        anchors = AnchorSet()
    th = anchors.theta_max
    psi_edge = float(power.psi(anchors.ideal_voltages[0]))
    psi_mid = float(power.psi(anchors.ideal_voltages[1]))
    g_boundary = (psi_edge - psi_mid) / th
    g_direct = psi_mid / th + power.beta - 2.0 * g_boundary
    if g_direct <= 0 or g_boundary < 0:
        raise ConvergenceError(
            f"level anchors give non-physical conductances "
            f"(g_direct={g_direct}, g_boundary={g_boundary}); "
            "check the power model"
        )
    return g_direct, g_boundary


def calibrate(
    power: PowerModel | None = None,
    anchors: AnchorSet | None = None,
    initial_lateral: float = 0.15,
    initial_c_core: float = 1.0e-3,
    max_nfev: int = 200,
) -> CalibrationResult:
    """Fit the single-layer constants to the anchor set.

    Two-stage fit: the ideal-voltage anchors pin ``(g_direct,
    g_boundary)`` in closed form (:func:`solve_level_anchors`); the
    remaining transient/frontier anchors are fit over ``(g_lateral,
    c_core)`` by bounded least squares in log-space.

    Raises
    ------
    ConvergenceError
        If the optimizer fails outright or the level anchors are
        non-physical.
    """
    if power is None:
        power = PowerModel()
    if anchors is None:
        anchors = AnchorSet()
    g_direct, g_boundary = solve_level_anchors(power, anchors)

    def unpack(x: np.ndarray) -> SingleLayerParams:
        gl, c = np.exp(x)
        return SingleLayerParams(
            g_direct=g_direct, g_boundary=g_boundary, g_lateral=gl, c_core=c
        )

    def fun(x: np.ndarray) -> np.ndarray:
        try:
            return anchor_residuals(unpack(x), power, anchors)
        except Exception:
            # Penalize parameter regions where the model cannot be built
            # (e.g. thermal runaway) instead of crashing the optimizer.
            return np.full(len(anchors.weights), 1e3)

    x0 = np.log([initial_lateral, initial_c_core])
    bounds = (np.log([1e-3, 1e-5]), np.log([2.0, 0.1]))
    result = least_squares(fun, x0, bounds=bounds, method="trf", max_nfev=max_nfev)
    if result.status < 0:  # pragma: no cover - defensive
        raise ConvergenceError(f"calibration failed: {result.message}")

    params = unpack(result.x)
    residuals = anchor_residuals(params, power, anchors)
    return CalibrationResult(
        params=params,
        power=power,
        residuals=residuals,
        cost=float(0.5 * np.sum(residuals**2)),
    )
