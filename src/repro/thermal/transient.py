"""Piecewise-constant transient simulation of periodic schedules.

Propagates eq. (3) interval by interval using the cached eigendecomposition
(each interval costs two dense mat-vecs), optionally recording dense
temperature traces for plotting/validation (Fig. 4's experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ThermalModelError
from repro.schedule.periodic import PeriodicSchedule
from repro.thermal.matex import interval_solution
from repro.thermal.model import ThermalModel
from repro.util.validation import as_1d_float

__all__ = ["TraceResult", "simulate_piecewise", "simulate_schedule_period"]


@dataclass(frozen=True)
class TraceResult:
    """A sampled temperature trace.

    Attributes
    ----------
    times:
        ``(n_samples,)`` sample instants in seconds from the trace start.
    temperatures:
        ``(n_samples, n_nodes)`` node temperatures above ambient (K).
    end_temperature:
        ``(n_nodes,)`` exact state at the final instant (independent of the
        sampling grid).
    """

    times: np.ndarray
    temperatures: np.ndarray
    end_temperature: np.ndarray

    def core_trace(self, model: ThermalModel) -> np.ndarray:
        """Restrict the trace to core nodes."""
        return self.temperatures[:, model.network.core_nodes]

    def max_temperature(self) -> float:
        """Highest sampled temperature across all nodes and times."""
        return float(self.temperatures.max())


def simulate_schedule_period(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    theta0: np.ndarray,
) -> np.ndarray:
    """Exact temperatures at the period end after one pass of the schedule.

    This is the cheap building block (no sampling): one closed-form
    propagation per state interval.
    """
    theta = as_1d_float(theta0, "theta0", model.n_nodes).copy()
    for iv in schedule.intervals:
        theta = model.propagate(theta, iv.length, iv.voltages)
    return theta


def simulate_piecewise(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    theta0: np.ndarray | None = None,
    periods: int = 1,
    samples_per_interval: int = 16,
) -> TraceResult:
    """Simulate ``periods`` repetitions of the schedule, recording a trace.

    Parameters
    ----------
    model:
        The thermal model.
    schedule:
        The periodic schedule to run.
    theta0:
        Starting temperatures (default: ambient, i.e. zeros).
    periods:
        Number of schedule repetitions to simulate.
    samples_per_interval:
        Dense samples recorded inside each state interval (>= 2).
    """
    if periods < 1:
        raise ThermalModelError(f"periods must be >= 1, got {periods}")
    if samples_per_interval < 2:
        raise ThermalModelError(
            f"samples_per_interval must be >= 2, got {samples_per_interval}"
        )
    if theta0 is None:
        theta0 = np.zeros(model.n_nodes)
    theta = as_1d_float(theta0, "theta0", model.n_nodes).copy()

    all_times: list[np.ndarray] = []
    all_temps: list[np.ndarray] = []
    t_base = 0.0
    for _ in range(periods):
        for iv in schedule.intervals:
            sol = interval_solution(model, theta, iv.voltages, iv.length)
            local = np.linspace(0.0, iv.length, samples_per_interval)
            all_times.append(t_base + local)
            all_temps.append(sol.temperatures(local))
            theta = sol.end_temperature()
            t_base += iv.length

    return TraceResult(
        times=np.concatenate(all_times),
        temperatures=np.vstack(all_temps),
        end_temperature=theta,
    )
