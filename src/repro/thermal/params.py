"""HotSpot-like RC parameters for the compact core-level thermal model.

The paper adopts thermal capacitances/resistances from HotSpot-5.02 at a
65 nm node with the floorplan simplified to core level.  We reproduce the
same three-layer stack HotSpot's lumped model uses:

* a silicon node per core (heat injected here),
* a copper heat-spreader node under each core, laterally connected,
* a single heat-sink node tied to ambient through the convection
  resistance.

The defaults below start from HotSpot's published material constants
(silicon k = 100 W/mK, volumetric heat capacity 1.75e6 J/m^3K; copper
k = 400 W/mK, 3.55e6 J/m^3K; TIM k = 4 W/mK; sink convection ~0.1 K/W)
and are then refined by :mod:`repro.thermal.calibration` against the
paper's anchor numbers.  All conductances are in W/K, capacitances in J/K.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ThermalModelError
from repro.floorplan.layout import Floorplan

__all__ = ["RCParams", "SingleLayerParams"]

# Material constants (HotSpot defaults).
K_SILICON = 100.0          # W / (m K)
K_COPPER = 400.0           # W / (m K)
K_TIM = 4.0                # W / (m K) thermal interface material
VOL_HEAT_SILICON = 1.75e6  # J / (m^3 K)
VOL_HEAT_COPPER = 3.55e6   # J / (m^3 K)

T_CHIP = 1.5e-4            # m, die thickness
T_TIM = 2.0e-5             # m, interface layer
T_SPREADER = 1.0e-3        # m, copper spreader


@dataclass(frozen=True)
class RCParams:
    """Lumped RC parameters, expressed *per core tile* where applicable.

    Attributes
    ----------
    g_vertical:
        Core silicon node -> its spreader node, W/K (through half the die
        plus the TIM layer).
    g_lateral_core:
        Between silicon nodes of adjacent cores, W/K.
    g_lateral_spreader:
        Between spreader nodes of adjacent cores, W/K.  This is the path
        that couples the cores thermally and produces the middle-core
        penalty the paper's motivation example shows.
    g_spreader_sink:
        Each spreader node -> the shared sink node, W/K.
    g_sink_ambient:
        Sink node -> ambient, W/K (inverse of the convection resistance).
    c_core, c_spreader, c_sink:
        Node heat capacities, J/K.
    """

    g_vertical: float = 2.44
    g_lateral_core: float = 0.015
    g_lateral_spreader: float = 0.40
    g_spreader_sink: float = 0.45
    g_sink_ambient: float = 10.0
    c_core: float = 4.2e-3
    c_spreader: float = 5.68e-2
    c_sink: float = 140.0

    def __post_init__(self) -> None:
        for name in (
            "g_vertical",
            "g_spreader_sink",
            "g_sink_ambient",
            "c_core",
            "c_spreader",
            "c_sink",
        ):
            if getattr(self, name) <= 0:
                raise ThermalModelError(f"{name} must be > 0, got {getattr(self, name)}")
        for name in ("g_lateral_core", "g_lateral_spreader"):
            if getattr(self, name) < 0:
                raise ThermalModelError(f"{name} must be >= 0, got {getattr(self, name)}")

    @classmethod
    def from_materials(
        cls,
        floorplan: Floorplan,
        chip_thickness_m: float = T_CHIP,
        spreader_thickness_m: float = T_SPREADER,
        tim_thickness_m: float = T_TIM,
        sink_resistance_kpw: float = 0.1,
        sink_capacity_jpk: float = 140.0,
    ) -> "RCParams":
        """Derive parameters from material constants and the tile geometry.

        This mirrors how HotSpot computes its lumped network: plate
        conductance ``k * A / t`` vertically and ``k * (edge * t) / pitch``
        laterally.
        """
        geo = floorplan.geometry
        area = geo.area_m2
        edge = geo.width_m  # square tiles: either edge works for the lateral path

        r_si = 0.5 * chip_thickness_m / (K_SILICON * area)
        r_tim = tim_thickness_m / (K_TIM * area)
        g_vertical = 1.0 / (r_si + r_tim)

        g_lat_core = K_SILICON * (edge * chip_thickness_m) / edge
        g_lat_spr = K_COPPER * (edge * spreader_thickness_m) / edge

        # Spreader-to-sink: conduction through the spreader thickness plus a
        # share of the sink base; approximated as copper plate conductance.
        g_spr_sink = 1.0 / (spreader_thickness_m / (K_COPPER * area) + 1.8)

        return cls(
            g_vertical=g_vertical,
            g_lateral_core=g_lat_core,
            g_lateral_spreader=g_lat_spr,
            g_spreader_sink=g_spr_sink,
            g_sink_ambient=1.0 / sink_resistance_kpw,
            c_core=VOL_HEAT_SILICON * area * chip_thickness_m,
            c_spreader=VOL_HEAT_COPPER * area * spreader_thickness_m,
            c_sink=sink_capacity_jpk,
        )

    def scaled(self, **factors: float) -> "RCParams":
        """Return a copy with named fields multiplied by the given factors.

        Example: ``params.scaled(c_core=2.0)`` doubles the silicon
        capacitance.  Used by the calibration fitter.
        """
        updates = {}
        for name, factor in factors.items():
            if not hasattr(self, name):
                raise ThermalModelError(f"RCParams has no field {name!r}")
            updates[name] = getattr(self, name) * factor
        return replace(self, **updates)


@dataclass(frozen=True)
class SingleLayerParams:
    """Parameters of the per-core single-node network (the paper's substrate).

    The paper extracts its matrices with the method of Wang & Ranka [23],
    [27], which models each core as a single thermal node: a direct
    conductance to ambient plus lateral conductances between adjacent
    cores.  Cores at the chip boundary enjoy extra lateral spreading into
    the package periphery, modeled as an additional ambient conductance
    per exposed tile edge — this is what makes interior cores thermally
    disadvantaged and produces the asymmetric ideal voltages of the
    motivation example (``[1.2085, 1.1748, 1.2085]`` on the 1x3 chip).

    The defaults are the output of :mod:`repro.thermal.calibration`
    against the paper's anchor numbers at 65 nm.

    Attributes
    ----------
    g_direct:
        Core -> ambient conductance common to every core, W/K.
    g_boundary:
        Additional core -> ambient conductance per exposed tile edge, W/K.
    g_lateral:
        Conductance between edge-adjacent cores, W/K.
    c_core:
        Per-core heat capacity, J/K.  The fitted value puts the core time
        constant at a few milliseconds — the scale at which the paper's
        Table III ratios and the m-oscillation tradeoff live.
    """

    g_direct: float = 0.326067
    g_boundary: float = 0.024041
    g_lateral: float = 0.128686
    c_core: float = 1.330769e-3

    def __post_init__(self) -> None:
        if self.g_direct <= 0:
            raise ThermalModelError(f"g_direct must be > 0, got {self.g_direct}")
        if self.g_boundary < 0 or self.g_lateral < 0:
            raise ThermalModelError("g_boundary and g_lateral must be >= 0")
        if self.c_core <= 0:
            raise ThermalModelError(f"c_core must be > 0, got {self.c_core}")

    def scaled(self, **factors: float) -> "SingleLayerParams":
        """Copy with named fields multiplied by the given factors."""
        updates = {}
        for name, factor in factors.items():
            if not hasattr(self, name):
                raise ThermalModelError(f"SingleLayerParams has no field {name!r}")
            updates[name] = getattr(self, name) * factor
        return replace(self, **updates)
