"""The multi-core platform object the algorithms operate on.

A :class:`Platform` bundles everything Problem 1 is stated over: the
floorplan, the thermal model (network + power), the discrete voltage
ladder, the DVFS transition overhead, and the peak-temperature threshold.
Factory :func:`paper_platform` builds the calibrated configuration used
throughout the paper's evaluation (65 nm, 35 C ambient, 4x4 mm cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan.layout import Floorplan
from repro.floorplan.library import paper_floorplan
from repro.power.dvfs import TransitionOverhead, VoltageLadder, paper_ladder
from repro.power.model import PowerModel
from repro.thermal.model import ThermalModel
from repro.thermal.params import RCParams, SingleLayerParams
from repro.thermal.rc import build_rc_network, build_single_layer_network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platforms import PlatformSpec

__all__ = ["Platform", "paper_platform"]


@dataclass(frozen=True)
class Platform:
    """A temperature-constrained multi-core platform.

    Attributes
    ----------
    model:
        The bound thermal model (network + power + ambient).
    ladder:
        Discrete voltage levels available on every core.
    overhead:
        DVFS transition overhead.
    t_max_c:
        Peak temperature threshold in Celsius.
    spec:
        Provenance: the :class:`~repro.platforms.PlatformSpec` this
        platform was built from, or ``None`` for ad-hoc constructions.
        Excluded from equality — two platforms with the same physics
        compare (and content-hash) equal regardless of how they were
        described.
    """

    model: ThermalModel
    ladder: VoltageLadder
    overhead: TransitionOverhead
    t_max_c: float
    spec: "PlatformSpec | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.t_max_c <= self.model.t_ambient_c:
            raise ConfigurationError(
                f"T_max={self.t_max_c} C must exceed ambient {self.model.t_ambient_c} C"
            )
        pm = self.model.power
        if self.ladder.v_min < pm.v_min - 1e-9 or self.ladder.v_max > pm.v_max + 1e-9:
            raise ConfigurationError(
                f"ladder {self.ladder.levels} exceeds the power model's "
                f"supported range [{pm.v_min}, {pm.v_max}]"
            )

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.model.n_cores

    @property
    def theta_max(self) -> float:
        """The threshold in normalized units (K above ambient)."""
        return self.model.threshold_theta(self.t_max_c)

    @property
    def floorplan(self) -> Floorplan:
        """The chip floorplan."""
        return self.model.network.floorplan

    def with_t_max(self, t_max_c: float) -> "Platform":
        """Copy with a different temperature threshold (Fig. 7's sweep).

        The provenance spec, if any, is updated to describe the copy, so
        rebuilding from ``copy.spec`` reproduces the copy's physics and
        content-addressed cache keys stay consistent.
        """
        spec = self.spec
        if spec is not None:
            spec = spec.with_overrides(t_max_c=float(t_max_c))
        return replace(self, t_max_c=float(t_max_c), spec=spec)

    def with_ladder(self, ladder: VoltageLadder) -> "Platform":
        """Copy with a different voltage ladder (Fig. 6's sweep).

        As with :meth:`with_t_max`, the provenance spec follows the copy
        (every spec family accepts explicit ``ladder_levels``).
        """
        spec = self.spec
        if spec is not None:
            spec = spec.with_overrides(ladder_levels=tuple(ladder.levels))
        return replace(self, ladder=ladder, spec=spec)

    def feasible_constant(self, voltages) -> bool:
        """Whether a constant-mode assignment keeps ``T_inf`` under ``T_max``."""
        theta = self.model.steady_state_cores(np.asarray(voltages, dtype=float))
        return bool(theta.max() <= self.theta_max + 1e-9)


def platform_3d(
    n_layers: int,
    rows: int,
    cols: int,
    n_levels: int = 2,
    t_max_c: float = 55.0,
    t_ambient_c: float = 35.0,
    tau: float = 5e-6,
    g_interlayer: float = 1.0,
    sidewall_fraction: float = 0.05,
    power: PowerModel | None = None,
    ladder: VoltageLadder | None = None,
) -> Platform:
    """Build a 3D-stacked platform (the intro's motivating technology).

    ``n_layers`` identical ``rows x cols`` core layers are stacked; layer 0
    is sink-adjacent and upper layers cool through it (plus a small
    sidewall leak).  All algorithms work unchanged — the 3D structure only
    changes the ``A``/``B`` matrices.
    """
    from repro.floorplan.layout import grid_floorplan
    from repro.floorplan.stack3d import Stack3D
    from repro.thermal.stack3d import build_3d_network

    stack = Stack3D(base=grid_floorplan(rows, cols), n_layers=n_layers)
    if power is None:
        power = PowerModel()
    network = build_3d_network(
        stack, g_interlayer=g_interlayer, sidewall_fraction=sidewall_fraction
    )
    model = ThermalModel(network, power, t_ambient_c=t_ambient_c)
    if ladder is None:
        ladder = paper_ladder(n_levels)
    return Platform(
        model=model,
        ladder=ladder,
        overhead=TransitionOverhead(tau=tau),
        t_max_c=t_max_c,
    )


def paper_platform(
    n_cores: int,
    n_levels: int = 2,
    t_max_c: float = 55.0,
    t_ambient_c: float = 35.0,
    tau: float = 5e-6,
    topology: str = "single",
    power: PowerModel | None = None,
    rc_params: RCParams | SingleLayerParams | None = None,
    ladder: VoltageLadder | None = None,
) -> Platform:
    """Build the calibrated platform used in the paper's evaluation.

    Parameters
    ----------
    n_cores:
        2, 3, 6 or 9 (the evaluated configurations).
    n_levels:
        Table IV ladder size (2-5); ignored when ``ladder`` is given.
    t_max_c, t_ambient_c:
        Temperature threshold and ambient (paper: 55-65 C over 35 C).
    tau:
        DVFS transition overhead in seconds (paper: 5 us).
    topology:
        ``"single"`` — the calibrated per-core network reproducing the
        paper's numbers (default); ``"stacked"`` — the three-layer
        HotSpot-like network for ablation studies.
    power, rc_params, ladder:
        Optional overrides of the calibrated defaults.
    """
    floorplan = paper_floorplan(n_cores)
    if power is None:
        power = PowerModel()
    if topology == "single":
        network = build_single_layer_network(floorplan, rc_params)  # type: ignore[arg-type]
    elif topology == "stacked":
        network = build_rc_network(floorplan, rc_params)  # type: ignore[arg-type]
    else:
        raise ConfigurationError(
            f"topology must be 'single' or 'stacked', got {topology!r}"
        )
    model = ThermalModel(network, power, t_ambient_c=t_ambient_c)
    if ladder is None:
        ladder = paper_ladder(n_levels)
    return Platform(
        model=model,
        ladder=ladder,
        overhead=TransitionOverhead(tau=tau),
        t_max_c=t_max_c,
    )
