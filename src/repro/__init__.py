"""repro — reproduction of "Performance Maximization via Frequency
Oscillation on Temperature Constrained Multi-core Processors" (ICPP 2016).

The package implements the paper's complete stack:

* :mod:`repro.floorplan` — core-grid floorplans (the paper's 2/3/6/9-core
  chips),
* :mod:`repro.power` — the eq.-(1) power model, discrete DVFS ladders and
  transition overhead,
* :mod:`repro.thermal` — the eq.-(2) RC thermal model, closed-form
  transient/periodic solvers, peak identification (Theorem-1 fast path and
  the MatEx-style general search), calibration, and an independent ODE
  oracle,
* :mod:`repro.schedule` — periodic multi-core schedules with the step-up
  and m-oscillating transforms,
* :mod:`repro.engine` — the instrumented :class:`ThermalEngine` facade
  every solver drives (shared caches, batch kernels, counters),
* :mod:`repro.algorithms` — LNS, EXS (Algorithm 1), AO (Algorithm 2),
  PCO and the rest of the solver registry
  (:mod:`repro.algorithms.registry`),
* :mod:`repro.analysis` — executable checks of Theorems 1-5,
* :mod:`repro.experiments` — one callable per table/figure of the paper,
* :mod:`repro.obs` — zero-dependency observability (tracing spans,
  metrics, the machinery behind ``repro run --trace`` / ``repro stats``),
* :mod:`repro.safety` — independent safety certificates
  (:func:`certify`), solver fallback chains (:func:`guarded_solve` lives
  in the registry), and injectable fault models (:class:`FaultSpec`),
* :mod:`repro.service` — the scheduling service core behind ``repro
  serve``: :class:`SchedulerSession` (shared engines + the
  content-addressed :class:`ScheduleCache`), request coalescing, and the
  newline-delimited-JSON server,
* :mod:`repro.platforms` — the declarative :class:`PlatformSpec`
  registry every platform construction resolves through (named presets
  plus the generated ``tech-<node>-<style>`` families),
* :mod:`repro.scaling` — the technology-scaling model behind the
  ``tech`` platform family and the dark-silicon ``scaling`` experiment.

Quickstart::

    from repro import evaluate, load_platform, solve

    platform = load_platform("paper", t_max_c=65.0)   # or "tech-16-io"
    result = solve("AO", platform)
    print(result.summary())
    print(evaluate(platform, result.schedule).summary())

**Frozen surface.** ``repro.__all__`` below is the supported public API:
everything in it keeps its name and call signature within a major
version (``tests/test_public_api.py`` snapshots both).  Symbols imported
from submodules directly are internal and may move without notice.
"""

from repro.platform import Platform, paper_platform, platform_3d
from repro.platforms import PlatformSpec, platform_names
from repro.api import EvaluationResult, evaluate, load_platform
from repro.engine import EngineStats, ThermalEngine, engine_entrypoint
from repro.obs import METRICS, capture_spans, span
from repro.algorithms import (
    SOLVERS,
    SchedulerResult,
    SolverSpec,
    dark_silicon_ao,
    ao,
    continuous_assignment,
    integral_controller,
    exs,
    exs_pruned,
    get_solver,
    lns,
    pco,
    solve,
)
from repro.algorithms.registry import guarded_solve
from repro.safety import FaultSpec, SafetyCertificate, certify
from repro.power import PowerModel, TransitionOverhead, VoltageLadder, paper_ladder
from repro.schedule import PeriodicSchedule, m_oscillate, step_up, throughput
from repro.thermal import ThermalModel, peak_temperature, stepup_peak_temperature
from repro.floorplan import Floorplan, grid_floorplan, paper_floorplan
from repro.algorithms.minpeak import minimize_peak
from repro.workload import TaskSet, PeriodicTask, schedule_taskset
from repro.realtime import (
    FrameWorkload,
    RTTask,
    plan_frames,
    simulate_recovery,
)
from repro.sim import cosimulate
from repro.experiments import run_experiment
from repro.errors import ReproError
from repro.service import ScheduleCache, SchedulerSession, default_session

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "paper_platform",
    "platform_3d",
    "PlatformSpec",
    "platform_names",
    "load_platform",
    "evaluate",
    "EvaluationResult",
    "ThermalEngine",
    "EngineStats",
    "engine_entrypoint",
    "span",
    "capture_spans",
    "METRICS",
    "SchedulerResult",
    "SolverSpec",
    "SOLVERS",
    "get_solver",
    "solve",
    "guarded_solve",
    "SafetyCertificate",
    "certify",
    "FaultSpec",
    "ao",
    "pco",
    "exs",
    "exs_pruned",
    "lns",
    "continuous_assignment",
    "integral_controller",
    "dark_silicon_ao",
    "PowerModel",
    "TransitionOverhead",
    "VoltageLadder",
    "paper_ladder",
    "PeriodicSchedule",
    "m_oscillate",
    "step_up",
    "throughput",
    "ThermalModel",
    "peak_temperature",
    "stepup_peak_temperature",
    "Floorplan",
    "grid_floorplan",
    "paper_floorplan",
    "minimize_peak",
    "TaskSet",
    "PeriodicTask",
    "schedule_taskset",
    "FrameWorkload",
    "RTTask",
    "plan_frames",
    "simulate_recovery",
    "cosimulate",
    "run_experiment",
    "ReproError",
    "SchedulerSession",
    "ScheduleCache",
    "default_session",
    "__version__",
]
