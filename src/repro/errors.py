"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single base class.  Errors are
grouped by subsystem: model construction, schedule validation, and solver
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A model, floorplan or parameter set was constructed inconsistently."""


class FloorplanError(ConfigurationError):
    """Invalid floorplan geometry (non-positive grid, bad core size, ...)."""


class PowerModelError(ConfigurationError):
    """Invalid power-model coefficients (negative gamma, non-convex psi, ...)."""


class ThermalModelError(ConfigurationError):
    """The RC thermal network is malformed (asymmetric G, non-positive C, ...)."""


class ThermalRunawayError(ThermalModelError):
    """Leakage feedback ``beta`` destabilizes the thermal system.

    Raised when ``G - E_beta`` is not positive definite: the linearized
    leakage gain exceeds the network's ability to remove heat, so no bounded
    steady state exists and every schedule diverges.
    """


class ScheduleError(ReproError, ValueError):
    """A periodic schedule is malformed (negative lengths, ragged modes, ...)."""


class ModeError(ScheduleError):
    """A requested voltage/frequency mode is not in the platform's ladder."""


class SolverError(ReproError, RuntimeError):
    """An optimization/search routine failed to produce a feasible answer."""


class InfeasibleError(SolverError):
    """No schedule satisfies the peak-temperature constraint.

    Raised e.g. when even the all-lowest-mode (or all-idle) configuration
    exceeds ``T_max``.
    """


class ConvergenceError(SolverError):
    """An iterative routine exhausted its iteration budget before converging."""


class RunnerError(ReproError, RuntimeError):
    """The sharded experiment runner was misused or its run state is corrupt.

    Raised e.g. when resuming into a run directory whose manifest does not
    match the requested unit set, or when a fresh run targets a directory
    that already holds another run's journal.
    """
