"""Thermal-margin-aware k-fault-tolerant frame scheduling.

EnSuRe-style frame schedulers buy k-fault tolerance with primary/backup
placement and backup-backup overloading, but are thermally blind; the
safety layer's :class:`~repro.safety.certificate.SafetyCertificate`
quantifies exactly how much thermal headroom each placement has to
spare.  This module fuses the two: **the fault-tolerance budget is the
certified thermal margin**.

The model
---------
Every task releases one job per frame and must finish by the frame end.
Each task gets a *primary* copy on one core and a chain of ``k`` backup
copies on ``k`` further distinct cores — so any ≤ k fail-stop core
failures leave every task with at least one alive copy.  All backup
copies execute inside one shared *backup window* at the end of the
frame, sized by exact enumeration of the worst ≤ k-failure activation
pattern (that sizing *is* backup-backup overloading: the window is far
smaller than the sum of all backup WCETs because at most k primaries
can fail at once).

Where the thermal margin comes in:

* backups land on the cores whose certified steady-state headroom is
  largest (``policy="margin"``); the thermally-blind baseline
  (``policy="blind"``) places by load only;
* activated backups run at the **highest ladder level the remaining
  margin certifies**: the worst-case activation envelope — every core
  oscillating to its activation level for the whole backup window every
  frame — is peak-evaluated, and activation levels are walked down from
  the top until the envelope fits under ``T_max``; the blind baseline
  always activates at the top level;
* on ill-conditioned platforms (large ``cond(G - E_beta)``) the
  certificate's peak re-derivations are numerically fragile, so the
  overloading benefit is distrusted: the window is inflated from the
  exact-enumeration size toward the no-overloading size proportionally
  to ``log cond`` (:func:`overload_factor`).

When a placement cannot be admitted, graceful degradation sheds the
lowest-criticality tasks (recorded in ``FramePlacement.shed``) until
the remainder fits — or :class:`~repro.errors.InfeasibleError` if
nothing survives.

Layering: may import the safety and thermal layers, never
:mod:`repro.algorithms` or :mod:`repro.experiments`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError, InfeasibleError
from repro.platform import Platform
from repro.realtime.frames import FrameWorkload, RTTask
from repro.safety.certificate import (
    DEFAULT_TOLERANCE,
    SafetyCertificate,
    certify,
)
from repro.schedule.builders import from_core_timelines
from repro.schedule.intervals import MIN_INTERVAL
from repro.schedule.periodic import PeriodicSchedule

__all__ = [
    "PlacedTask",
    "FramePlacement",
    "overload_factor",
    "plan_frames",
]

#: Condition numbers at or below this get the full overloading benefit.
COND_FULL_OVERLOAD = 1e2
#: Condition numbers at or above this get no overloading benefit at all.
COND_NO_OVERLOAD = 1e6

#: Relative slack on frame-capacity comparisons.
_EPS = 1e-9


def overload_factor(condition_number: float) -> float:
    """How much of the backup-backup overloading benefit to trust.

    1.0 for well-conditioned platforms (``cond <= 1e2``): the backup
    window is the exact worst-≤k-failure enumeration.  0.0 for
    ill-conditioned ones (``cond >= 1e6``): every backup copy gets
    disjoint reserved time.  Log-linear in between — the overloading
    window shrinks proportionally to ``log cond``.
    """
    if not math.isfinite(condition_number):
        return 0.0
    lo, hi = math.log10(COND_FULL_OVERLOAD), math.log10(COND_NO_OVERLOAD)
    x = math.log10(max(condition_number, 1.0))
    return float(min(1.0, max(0.0, (hi - x) / (hi - lo))))


@dataclass(frozen=True)
class PlacedTask:
    """One task with its primary core and backup chain."""

    task: RTTask
    primary: int
    backups: tuple[int, ...]

    @property
    def name(self) -> str:
        return self.task.name

    def executing_core(self, failed) -> int | None:
        """First alive copy under the failure set, ``None`` if all dead."""
        if self.primary not in failed:
            return self.primary
        for core in self.backups:
            if core not in failed:
                return core
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "task": self.task.as_dict(),
            "primary": int(self.primary),
            "backups": [int(b) for b in self.backups],
        }


@dataclass(frozen=True)
class FramePlacement:
    """An admitted k-fault-tolerant frame placement.

    Attributes
    ----------
    workload:
        The *admitted* workload (shed tasks already removed).
    k:
        Number of fail-stop core failures tolerated per run.
    policy:
        ``"margin"`` (thermal-margin-aware) or ``"blind"``.
    levels:
        Per-core nominal ladder level index (primary execution speed).
    activation_levels:
        Per-core ladder level index backups execute at when activated.
    backup_window_s:
        Length of the shared backup window at the frame end.  Primaries
        are confined to ``[0, frame - window)``; all activated backups
        run inside ``[frame - window, frame)``.
    placements:
        One :class:`PlacedTask` per admitted task.
    shed:
        Names of tasks shed at admission, in shedding order (lowest
        criticality first) — the journaled degradation record.
    certificate:
        Independent certificate of the worst-case activation envelope
        (every core hot for the full window, every frame).  For the
        blind policy this is evaluated but never consulted — which is
        exactly how blind placements end up certifiably unsafe.
    condition_number:
        ``cond(G - E_beta)`` of the platform the window sizing used.
    overload:
        The :func:`overload_factor` applied to the window sizing.
    """

    workload: FrameWorkload
    k: int
    policy: str
    levels: tuple[int, ...]
    activation_levels: tuple[int, ...]
    backup_window_s: float
    placements: tuple[PlacedTask, ...]
    shed: tuple[str, ...]
    certificate: SafetyCertificate | None
    condition_number: float
    overload: float
    ladder_levels: tuple[float, ...] = field(repr=False, default=())

    @property
    def n_cores(self) -> int:
        return len(self.levels)

    @property
    def frame_s(self) -> float:
        return self.workload.frame_s

    def placed(self, name: str) -> PlacedTask:
        for p in self.placements:
            if p.name == name:
                return p
        raise KeyError(f"no placed task named {name!r}")

    def speed(self, core: int, activated: bool = False) -> float:
        idx = self.activation_levels[core] if activated else self.levels[core]
        return float(self.ladder_levels[idx])

    def primary_seconds(self, core: int) -> float:
        """Primary execution time reserved on ``core`` per frame."""
        v = self.speed(core)
        return sum(
            p.task.wcet_at(v) for p in self.placements if p.primary == core
        )

    def activated_backups(self, failed) -> dict[str, int]:
        """``task name -> executing backup core`` under a failure set.

        Only tasks whose primary failed appear; a task with no alive
        copy (more than k failures hit its chain) maps to ``-1``.
        """
        failed = frozenset(failed)
        out: dict[str, int] = {}
        for p in self.placements:
            if p.primary in failed:
                core = p.executing_core(failed)
                out[p.name] = -1 if core is None else int(core)
        return out

    def backup_demand_s(self, failed) -> np.ndarray:
        """Per-core activated-backup seconds under a failure set."""
        demand = np.zeros(self.n_cores)
        for name, core in self.activated_backups(failed).items():
            if core >= 0:
                v = self.speed(core, activated=True)
                demand[core] += self.placed(name).task.wcet_at(v)
        return demand

    def envelope_schedule(self) -> PeriodicSchedule:
        """Worst-case activation envelope as a periodic schedule.

        Every core runs its nominal level for ``frame - window`` then
        its activation level for the full window — an upper bound on
        any reachable ≤ k-failure execution, since real frames activate
        at most a subset of the backups (and failed cores draw zero).
        Per core the voltage is non-decreasing, so the envelope is a
        step-up schedule and the Theorem-1 fast path applies.
        """
        frame, window = self.frame_s, self.backup_window_s
        timelines = []
        for core in range(self.n_cores):
            v_nom, v_act = self.speed(core), self.speed(core, activated=True)
            if window < MIN_INTERVAL or v_nom == v_act:
                timelines.append([(frame, v_nom)])
            else:
                timelines.append([(frame - window, v_nom), (window, v_act)])
        return from_core_timelines(timelines)

    @property
    def envelope_throughput(self) -> float:
        """Time-averaged per-core speed of the activation envelope."""
        sched = self.envelope_schedule()
        avg = float(
            (sched.lengths[:, None] * sched.voltage_matrix).sum()
            / (sched.period * self.n_cores)
        )
        return avg

    def as_dict(self) -> dict[str, Any]:
        return {
            "k": int(self.k),
            "policy": self.policy,
            "frame_s": float(self.frame_s),
            "levels": [int(v) for v in self.levels],
            "activation_levels": [int(v) for v in self.activation_levels],
            "backup_window_s": float(self.backup_window_s),
            "placements": [p.as_dict() for p in self.placements],
            "shed": list(self.shed),
            "condition_number": float(self.condition_number),
            "overload": float(self.overload),
            "certificate_accepted": (
                None if self.certificate is None
                else bool(self.certificate.accepted)
            ),
        }


# ----------------------------------------------------------------------
# placement internals
# ----------------------------------------------------------------------


def _failure_sets(n_cores: int, k: int):
    """Every non-empty failure set of at most k cores."""
    for size in range(1, k + 1):
        yield from itertools.combinations(range(n_cores), size)


def _worst_backup_cycles(
    placements: list[PlacedTask], n_cores: int, k: int
) -> np.ndarray:
    """Exact per-core worst-case activated backup cycles over ≤k failures.

    Enumerates every failure set (cheap at realistic core counts: the
    count is ``sum_{i<=k} C(n, i)``) and routes each failed task to the
    first alive core of its chain — the overloaded window only pays for
    activations that can actually coincide.
    """
    worst = np.zeros(n_cores)
    for failed in _failure_sets(n_cores, k):
        fset = frozenset(failed)
        demand = np.zeros(n_cores)
        for p in placements:
            if p.primary in fset:
                core = p.executing_core(fset)
                if core is not None:
                    demand[core] += p.task.wcec
        np.maximum(worst, demand, out=worst)
    return worst


def _no_overload_cycles(
    placements: list[PlacedTask], n_cores: int
) -> np.ndarray:
    """Per-core backup cycles with no overlap trusted at all."""
    total = np.zeros(n_cores)
    for p in placements:
        for core in p.backups:
            total[core] += p.task.wcec
    return total


def _base_level(engine: ThermalEngine, margin_guard: float) -> int:
    """Highest uniform ladder level whose constant assignment fits."""
    levels = engine.ladder.levels
    n = engine.n_cores
    for idx in range(len(levels) - 1, -1, -1):
        volts = np.full(n, float(levels[idx]))
        peak = float(engine.steady_state_cores(volts).max())
        if peak <= engine.theta_max - margin_guard + _EPS:
            return idx
    raise InfeasibleError(
        "no uniform ladder level keeps the steady state under "
        f"theta_max - guard = {engine.theta_max - margin_guard:.2f} K"
    )


def _place(
    workload: FrameWorkload,
    n_cores: int,
    k: int,
    policy: str,
    headroom: np.ndarray,
    speeds: np.ndarray,
) -> list[PlacedTask]:
    """Primary + backup-chain placement (no capacity verdict yet).

    Primaries: worst-fit decreasing by execution time.  Backup chains:
    the margin policy ranks candidate cores by certified steady-state
    headroom (discounted by the backup cycles already parked there);
    the blind policy ranks by load alone.
    """
    primary_load = np.zeros(n_cores)
    backup_load = np.zeros(n_cores)
    placements: list[PlacedTask] = []
    order = sorted(workload.tasks, key=lambda t: (-t.wcec, t.name))
    for task in order:
        primary = int(np.argmin(primary_load))
        primary_load[primary] += task.wcet_at(float(speeds[primary]))
        candidates = [c for c in range(n_cores) if c != primary]
        if policy == "margin":
            candidates.sort(
                key=lambda c: (
                    -(headroom[c] - backup_load[c]),
                    backup_load[c],
                    c,
                )
            )
        else:
            candidates.sort(
                key=lambda c: (primary_load[c] + backup_load[c], c)
            )
        chain = tuple(candidates[:k])
        for core in chain:
            backup_load[core] += task.wcec / float(speeds[core])
        placements.append(PlacedTask(task=task, primary=primary, backups=chain))
    return placements


def plan_frames(
    platform: "Platform | ThermalEngine",
    workload: FrameWorkload,
    k: int = 1,
    policy: str = "margin",
    *,
    margin_guard: float = 0.0,
    certify_tolerance: float | None = None,
    allow_shedding: bool = True,
) -> FramePlacement:
    """Place a frame workload k-fault-tolerantly on a platform.

    Parameters
    ----------
    k:
        Core failures to tolerate; needs ``k + 1 <= n_cores`` (every
        task carries k backup copies on distinct cores).
    policy:
        ``"margin"`` — backups consume certified thermal margin and
        activation levels are capped by what the margin certifies;
        ``"blind"`` — classic load-balanced placement that activates at
        the top ladder level unconditionally (the EnSuRe-style
        baseline this module exists to beat at matched ``T_max``).
    margin_guard:
        Extra Kelvin of headroom the margin policy keeps in reserve.
    allow_shedding:
        Whether admission may shed lowest-criticality tasks to fit
        (sheds are journaled in ``FramePlacement.shed``); with
        ``False`` an unplaceable workload raises
        :class:`~repro.errors.InfeasibleError` instead.

    Raises
    ------
    InfeasibleError
        When no subset of the workload (or, with shedding disabled, the
        full workload) can be admitted.
    """
    if policy not in ("margin", "blind"):
        raise ConfigurationError(
            f"policy must be 'margin' or 'blind', got {policy!r}"
        )
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    engine = ThermalEngine.ensure(platform)
    n = engine.n_cores
    if k >= n:
        raise InfeasibleError(
            f"k={k} fault tolerance needs at least {k + 1} cores, have {n}"
        )
    ladder = tuple(float(v) for v in engine.ladder.levels)
    guard = margin_guard if policy == "margin" else 0.0
    base = _base_level(engine, guard)
    nominal = np.full(n, base, dtype=int)
    speeds = np.array([ladder[i] for i in nominal])
    headroom = engine.theta_max - engine.steady_state_cores(speeds)
    cond = float(engine.condition_number())
    overload = overload_factor(cond) if policy == "margin" else 1.0

    remaining = workload
    shed: list[str] = []
    frame = workload.frame_s
    while remaining.n_tasks > 0:
        placements = _place(remaining, n, k, policy, headroom, speeds)
        admitted = _admit(
            engine, remaining, placements, nominal, k, policy,
            overload, guard, frame,
        )
        if admitted is not None:
            activation, window = admitted
            envelope = _envelope(ladder, nominal, activation, frame, window)
            cert = certify(
                engine,
                envelope,
                tolerance=(
                    DEFAULT_TOLERANCE if certify_tolerance is None
                    else certify_tolerance
                ),
            )
            if policy == "blind" or (cert.accepted and cert.feasible):
                return FramePlacement(
                    workload=remaining,
                    k=k,
                    policy=policy,
                    levels=tuple(int(i) for i in nominal),
                    activation_levels=tuple(int(i) for i in activation),
                    backup_window_s=float(window),
                    placements=tuple(placements),
                    shed=tuple(shed),
                    certificate=cert,
                    condition_number=cond,
                    overload=float(overload),
                    ladder_levels=ladder,
                )
            # The margin policy refuses a fit its certificate won't
            # stand behind; fall through to shedding.
        if not allow_shedding:
            raise InfeasibleError(
                f"workload not admissible at k={k} ({policy}) and "
                "shedding is disabled"
            )
        victim = remaining.shed_order()[0]
        shed.append(victim.name)
        remaining = remaining.without([victim.name])
    raise InfeasibleError(
        f"no task subset admissible at k={k} ({policy}); "
        f"shed everything: {shed}"
    )


def _admit(
    engine: ThermalEngine,
    workload: FrameWorkload,
    placements: list[PlacedTask],
    nominal: np.ndarray,
    k: int,
    policy: str,
    overload: float,
    guard: float,
    frame: float,
):
    """Size the window, fix activation levels, and check capacity.

    Returns ``(activation_levels, window_s)`` when the placement fits,
    ``None`` when it does not (the caller then sheds and retries).
    """
    ladder = tuple(float(v) for v in engine.ladder.levels)
    top = len(ladder) - 1
    n = engine.n_cores
    exact = _worst_backup_cycles(placements, n, k)
    noov = _no_overload_cycles(placements, n)
    cycles = exact + (1.0 - overload) * (noov - exact)
    activation = np.full(n, top, dtype=int)
    np.maximum(activation, nominal, out=activation)

    def window_of(act: np.ndarray) -> float:
        if not cycles.any():
            return 0.0
        secs = cycles / np.array([ladder[i] for i in act])
        return float(secs.max())

    if policy == "margin":
        # Walk activation levels down from the top until the worst-case
        # envelope fits under the margin the certificate stands behind.
        while True:
            window = window_of(activation)
            if window > frame * (1 - _EPS):
                return None  # even the window alone overflows the frame
            sched = _envelope(ladder, nominal, activation, frame, window)
            peak = engine.general_peak(sched)
            if peak.value <= engine.theta_max - guard + _EPS:
                break
            order = np.argsort(-np.asarray(peak.core_peaks))
            for core in order:
                if activation[core] > nominal[core]:
                    activation[core] -= 1
                    break
            else:
                # Envelope equals the nominal constant assignment, which
                # _base_level certified; numerical slack only.
                break
    window = window_of(activation)
    if window > frame * (1 - _EPS):
        return None
    # Primaries must complete before the shared window opens.
    for core in range(n):
        v = ladder[nominal[core]]
        primary_s = sum(
            p.task.wcet_at(v) for p in placements if p.primary == core
        )
        if primary_s > (frame - window) * (1 + _EPS) + _EPS:
            return None
    return activation, window


def _envelope(ladder, nominal, activation, frame, window) -> PeriodicSchedule:
    timelines = []
    for core in range(len(nominal)):
        v_nom = float(ladder[nominal[core]])
        v_act = float(ladder[activation[core]])
        if window < MIN_INTERVAL or v_nom == v_act:
            timelines.append([(frame, v_nom)])
        else:
            timelines.append([(frame - window, v_nom), (window, v_act)])
    return from_core_timelines(timelines)
