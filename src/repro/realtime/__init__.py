"""Thermal-margin-aware k-fault-tolerant real-time frame scheduling.

The fusion the ROADMAP's "fault-tolerant real-time frames" item asks
for: EnSuRe-style primary/backup frame scheduling whose fault-tolerance
budget *is* the certified thermal margin of the safety layer.

* :mod:`repro.realtime.frames` — the workload model
  (:class:`RTTask` / :class:`FrameWorkload`);
* :mod:`repro.realtime.scheduler` — :func:`plan_frames`, the
  margin-aware (vs thermally-blind) k-fault-tolerant placement;
* :mod:`repro.realtime.recovery` — :func:`simulate_recovery`, closed-
  loop validation of backup activation, re-certification of the
  degraded placement, and graceful degradation by criticality.

Layering: nothing here may import :mod:`repro.algorithms` or
:mod:`repro.experiments` (enforced by the TID253 ruff ban and the
public-API layering tests).
"""

from repro.realtime.frames import FrameWorkload, RTTask
from repro.realtime.recovery import (
    RecoveryReport,
    simulate_recovery,
    snap_failures,
)
from repro.realtime.scheduler import (
    FramePlacement,
    PlacedTask,
    overload_factor,
    plan_frames,
)

__all__ = [
    "FrameWorkload",
    "RTTask",
    "FramePlacement",
    "PlacedTask",
    "RecoveryReport",
    "overload_factor",
    "plan_frames",
    "simulate_recovery",
    "snap_failures",
]
