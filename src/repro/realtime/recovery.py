"""Fault recovery for frame placements, validated in the closed loop.

:func:`simulate_recovery` takes an admitted
:class:`~repro.realtime.scheduler.FramePlacement` and a
:class:`~repro.safety.faults.FaultSpec` carrying core failures, and runs
the placement's frame executor through
:func:`repro.sim.engine.simulate_closed_loop` — the same cosimulation
core every closed-loop governor in the tree validates against.  The
executor oscillates each core between its nominal level (primary
window) and its activation level (backup window, only in frames where
the core actually hosts activated backups); the simulator power-gates
failed cores and reports the dense true-physics peak.

Fault model: failures are fail-stop and **frame-quantized** — a core
announced dead at fraction ``f`` stops at the next frame boundary (the
standard "faults are detected by the acceptance test at frame end"
abstraction).  Within a frame the failure set is therefore constant and
known at the frame start, which is what makes the k-fault guarantee
exact: every task whose primary is down executes its first alive backup
copy inside that frame's backup window, whose size was enumerated over
all ≤ k failure sets at admission.

After the run, the *degraded* placement left behind by permanent
failures — promoted tasks permanently hosted on their backup cores,
dead cores power-gated — is re-certified.  If its certificate is
rejected or infeasible, graceful degradation sheds the
lowest-criticality promoted tasks one at a time (journaled in
``RecoveryReport.shed``) until the remainder certifies; margin
exhaustion is thus converted into a recorded loss of the least
important work, never a silent thermal violation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil
from typing import Any

import numpy as np

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError
from repro.platform import Platform
from repro.realtime.scheduler import FramePlacement
from repro.safety.certificate import (
    DEFAULT_TOLERANCE,
    SafetyCertificate,
    certify,
)
from repro.safety.faults import CoreFailure, FaultSpec
from repro.schedule.builders import from_core_timelines
from repro.schedule.intervals import MIN_INTERVAL
from repro.sim.engine import ClosedLoopTrace, simulate_closed_loop

__all__ = ["RecoveryReport", "simulate_recovery", "snap_failures"]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one fault-injected recovery run.

    Attributes
    ----------
    placement:
        The placement that was executed.
    faults:
        The frame-quantized fault spec the run actually used.
    trace:
        The closed-loop trace (true physics, failed cores power-gated).
    deadline_misses:
        Total job deadline misses across all frames (0 whenever at most
        ``placement.k`` cores failed).
    missed_tasks:
        Names of tasks that missed at least one deadline.
    activations:
        Journal of backup activations: ``(frame, task, core)`` triples.
    shed:
        Tasks shed by graceful degradation *during recovery* (on top of
        any admission-time sheds in ``placement.shed``), lowest
        criticality first.
    recertified:
        Certificate of the degraded steady placement after permanent
        failures (``None`` when every failure was transient or none
        occurred).  Issued against the same ``T_max`` the placement was
        admitted under.
    peak_theta:
        Dense peak (K above ambient) of the true trace.
    theta_max:
        The threshold the run was judged against.
    """

    placement: FramePlacement
    faults: FaultSpec
    trace: ClosedLoopTrace
    deadline_misses: int
    missed_tasks: tuple[str, ...]
    activations: tuple[tuple[int, str, int], ...]
    shed: tuple[str, ...]
    recertified: SafetyCertificate | None
    peak_theta: float
    theta_max: float

    @property
    def peak_ok(self) -> bool:
        """True trace stayed under the threshold (certificate tolerance)."""
        return self.peak_theta <= self.theta_max + DEFAULT_TOLERANCE

    @property
    def recertified_ok(self) -> bool:
        """Degraded placement certified (vacuously true without one)."""
        cert = self.recertified
        return cert is None or (cert.accepted and cert.feasible)

    @property
    def safe(self) -> bool:
        """Zero misses, threshold respected, degraded state certified."""
        return (
            self.deadline_misses == 0
            and self.peak_ok
            and self.recertified_ok
            and not self.shed
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "deadline_misses": int(self.deadline_misses),
            "missed_tasks": list(self.missed_tasks),
            "activations": [
                [int(f), name, int(c)] for f, name, c in self.activations
            ],
            "shed": list(self.shed),
            "peak_theta": float(self.peak_theta),
            "theta_max": float(self.theta_max),
            "peak_ok": bool(self.peak_ok),
            "recertified_ok": bool(self.recertified_ok),
            "safe": bool(self.safe),
        }


def snap_failures(faults: FaultSpec, n_frames: int) -> FaultSpec:
    """Quantize every core failure to the frame grid.

    ``at_fraction`` snaps *up* to the next frame boundary; transient
    outages snap up to whole frames (minimum one).  The returned spec is
    what both the physics (:func:`simulate_closed_loop` gates speed per
    step) and the deadline accounting consume, so the two can never
    disagree about when a core died.
    """
    if n_frames < 1:
        raise ConfigurationError(f"n_frames must be >= 1, got {n_frames}")
    snapped = []
    for f in faults.core_failures:
        start = min(ceil(f.at_fraction * n_frames - 1e-12), n_frames)
        duration = f.duration_fraction
        if f.kind == "transient":
            frames = max(1, ceil(duration * n_frames - 1e-12))
            duration = frames / n_frames
        snapped.append(
            CoreFailure(
                core=f.core,
                at_fraction=start / n_frames,
                kind=f.kind,
                duration_fraction=duration,
            )
        )
    return replace(faults, core_failures=tuple(snapped))


def _frame_failures(
    faults: FaultSpec, n_frames: int, n_cores: int
) -> list[frozenset[int]]:
    """Failure set per frame (failures already frame-quantized)."""
    sets = []
    for frame in range(n_frames):
        fraction = frame / n_frames
        sets.append(
            frozenset(
                c for c in faults.failed_cores_at(fraction) if c < n_cores
            )
        )
    return sets


def simulate_recovery(
    platform: "Platform | ThermalEngine",
    placement: FramePlacement,
    faults: FaultSpec | dict | None,
    *,
    n_frames: int = 8,
    steps_per_frame: int = 8,
    certify_tolerance: float | None = None,
) -> RecoveryReport:
    """Execute a placement under injected core failures and recover.

    The run covers ``n_frames`` frames at ``steps_per_frame`` sensor
    steps each; the backup window is quantized up to whole steps so the
    executor's level changes land exactly on sensor instants.
    """
    engine = ThermalEngine.ensure(platform)
    faults = FaultSpec.coerce(faults) or FaultSpec()
    faults = snap_failures(faults, n_frames)
    n = placement.n_cores
    if n != engine.n_cores:
        raise ConfigurationError(
            f"placement has {n} cores, platform has {engine.n_cores}"
        )
    frame = placement.frame_s
    spf = int(steps_per_frame)
    n_steps = n_frames * spf
    per_frame = _frame_failures(faults, n_frames, n)
    tolerance = (
        DEFAULT_TOLERANCE if certify_tolerance is None else certify_tolerance
    )

    # Quantize the shared backup window up to whole sensor steps.
    window_steps = 0
    if placement.backup_window_s > 0:
        window_steps = min(
            spf, ceil(placement.backup_window_s / frame * spf - 1e-12)
        )

    # Per frame: which cores host activated backups, and the journal.
    activations: list[tuple[int, str, int]] = []
    missed: dict[str, int] = {}
    hot_cores: list[frozenset[int]] = []
    window_s = window_steps / spf * frame
    for f_idx, failed in enumerate(per_frame):
        active = placement.activated_backups(failed)
        demand = np.zeros(n)
        kept: list[tuple[str, int]] = []
        # Most-critical backups keep their window slots when an
        # over-budget (> k failures) frame overflows a core's window.
        ordered = sorted(
            active.items(),
            key=lambda item: (
                -placement.placed(item[0]).task.criticality, item[0],
            ),
        )
        for name, core in ordered:
            if core < 0:  # every copy dead: > k failures hit this chain
                missed[name] = missed.get(name, 0) + 1
                continue
            wcet = placement.placed(name).task.wcet_at(
                placement.speed(core, activated=True)
            )
            if demand[core] + wcet > window_s * (1 + 1e-9) + 1e-12:
                missed[name] = missed.get(name, 0) + 1
                continue
            demand[core] += wcet
            kept.append((name, core))
            activations.append((f_idx, name, core))
        hot_cores.append(frozenset(core for _, core in kept))

    def levels_for_step(step: int) -> np.ndarray:
        f_idx = min(step // spf, n_frames - 1)
        local = step % spf
        idx = np.array(placement.levels, dtype=int)
        if window_steps and local >= spf - window_steps:
            for core in hot_cores[f_idx]:
                idx[core] = placement.activation_levels[core]
        return idx

    def policy(step: int, _reading: np.ndarray) -> np.ndarray:
        return levels_for_step(step + 1) if step + 1 < n_steps else (
            levels_for_step(step)
        )

    trace = simulate_closed_loop(
        engine.model,
        engine.ladder,
        policy,
        n_steps=n_steps,
        sensor_period=frame / spf,
        initial_levels=levels_for_step(0),
        faults=faults,
    )

    # --- degraded steady placement after permanent failures -----------
    perm = frozenset(
        f.core for f in faults.permanent_failures if f.core < n
    )
    recert: SafetyCertificate | None = None
    shed: list[str] = []
    if perm:
        recert = _recertify_degraded(
            engine, placement, perm, shed, tolerance
        )

    return RecoveryReport(
        placement=placement,
        faults=faults,
        trace=trace,
        deadline_misses=int(sum(missed.values())),
        missed_tasks=tuple(sorted(missed)),
        activations=tuple(activations),
        shed=tuple(shed),
        recertified=recert,
        peak_theta=float(trace.peak_theta),
        theta_max=float(engine.theta_max),
    )


def _recertify_degraded(
    engine: ThermalEngine,
    placement: FramePlacement,
    perm: frozenset[int],
    shed: list[str],
    tolerance: float,
) -> SafetyCertificate:
    """Certify the post-failure steady placement, shedding if needed.

    Promoted tasks (primaries on dead cores) run every frame inside the
    backup window of their first alive chain core; dead cores are
    power-gated.  If the certificate is rejected or infeasible, the
    lowest-criticality promoted task is shed and the envelope rebuilt —
    the degradation order the docs promise.  ``shed`` is appended in
    place (the caller journals it).
    """
    frame = placement.frame_s
    n = placement.n_cores
    promoted = {
        name: core
        for name, core in placement.activated_backups(perm).items()
        if core >= 0
    }
    while True:
        demand = np.zeros(n)
        for name, core in promoted.items():
            demand[core] += placement.placed(name).task.wcet_at(
                placement.speed(core, activated=True)
            )
        window = float(demand.max()) if demand.any() else 0.0
        timelines = []
        for core in range(n):
            if core in perm:
                timelines.append([(frame, 0.0)])
                continue
            v_nom = placement.speed(core)
            v_act = placement.speed(core, activated=True)
            if window < MIN_INTERVAL or demand[core] <= 0 or v_nom == v_act:
                timelines.append([(frame, v_nom)])
            else:
                timelines.append(
                    [(frame - window, v_nom), (window, v_act)]
                )
        cert = certify(
            engine, from_core_timelines(timelines), tolerance=tolerance
        )
        fits = window <= frame * (1 + 1e-9) and all(
            placement.primary_seconds(core) <= frame - window + 1e-12
            for core in range(n)
            if core not in perm
        )
        if (cert.accepted and cert.feasible and fits) or not promoted:
            return cert
        victim = min(
            promoted,
            key=lambda name: (
                placement.placed(name).task.criticality, name,
            ),
        )
        shed.append(victim)
        del promoted[victim]
