"""Frame-based real-time workload model.

The paper's scheduling object is a periodic DVFS pattern with no notion
of *jobs*; EnSuRe-style fault-tolerant schedulers work the other way
around — frame-based task sets where every task releases one job per
frame and must finish by the frame end.  This module provides that
workload shape:

* :class:`RTTask` — one task: worst-case execution *cycles* (so its
  WCET at ladder speed ``v`` is ``wcec / v``), plus a criticality rank
  that fixes the graceful-degradation shedding order (lowest rank shed
  first);
* :class:`FrameWorkload` — a set of tasks sharing one frame (period =
  deadline = ``frame_s``), with a seeded UUniFast-style generator for
  the experiments and property tests.

Layering: pure data — imports nothing above :mod:`repro.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RTTask", "FrameWorkload"]


@dataclass(frozen=True)
class RTTask:
    """One frame-based real-time task.

    Attributes
    ----------
    name:
        Unique identifier within a workload.
    wcec:
        Worst-case execution cycles, in speed-seconds: executing at
        ladder speed ``v`` takes ``wcec / v`` seconds.
    criticality:
        Degradation rank — when thermal margin runs out, the scheduler
        sheds tasks in ascending criticality (ties broken by name).
    """

    name: str
    wcec: float
    criticality: int = 0

    def __post_init__(self) -> None:
        if self.wcec <= 0:
            raise ConfigurationError(f"wcec must be > 0, got {self.wcec}")

    def wcet_at(self, speed: float) -> float:
        """Worst-case execution time (s) at ladder speed ``speed``."""
        if speed <= 0:
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        return self.wcec / float(speed)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wcec": float(self.wcec),
            "criticality": int(self.criticality),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RTTask":
        return cls(
            name=str(data["name"]),
            wcec=float(data["wcec"]),
            criticality=int(data.get("criticality", 0)),
        )


@dataclass(frozen=True)
class FrameWorkload:
    """A frame-based task set: every task runs once per frame.

    All tasks share the frame — period and deadline are both
    ``frame_s``, the standard frame-based model of fault-tolerant
    real-time scheduling (each frame is one fault-containment and
    recovery unit).
    """

    frame_s: float
    tasks: tuple[RTTask, ...]

    def __post_init__(self) -> None:
        if self.frame_s <= 0:
            raise ConfigurationError(f"frame_s must be > 0, got {self.frame_s}")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def utilization_at(self, speed: float) -> float:
        """Total demand as a fraction of one frame at uniform ``speed``."""
        return sum(t.wcet_at(speed) for t in self.tasks) / self.frame_s

    def task(self, name: str) -> RTTask:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")

    def shed_order(self) -> tuple[RTTask, ...]:
        """Tasks in degradation order: lowest criticality first."""
        return tuple(
            sorted(self.tasks, key=lambda t: (t.criticality, t.name))
        )

    def without(self, names) -> "FrameWorkload":
        """Copy with the named tasks shed."""
        drop = set(names)
        return replace(
            self, tasks=tuple(t for t in self.tasks if t.name not in drop)
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "frame_s": float(self.frame_s),
            "tasks": [t.as_dict() for t in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrameWorkload":
        return cls(
            frame_s=float(data["frame_s"]),
            tasks=tuple(RTTask.from_dict(t) for t in data["tasks"]),
        )

    @classmethod
    def random(
        cls,
        n_tasks: int,
        total_utilization: float,
        frame_s: float,
        rng: np.random.Generator | int,
        max_task_utilization: float = 1.0,
    ) -> "FrameWorkload":
        """UUniFast-style random workload at reference speed 1.0.

        ``total_utilization`` is the summed demand fraction of one frame
        when every task runs at speed 1.0; per-task shares come from the
        unbiased UUniFast split (resampled until no share exceeds
        ``max_task_utilization``).  Criticalities are a random
        permutation of ``0..n_tasks-1`` — every task has a distinct
        degradation rank, so shedding order is total.
        """
        if n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {n_tasks}")
        if not 0 < total_utilization <= n_tasks * max_task_utilization:
            raise ConfigurationError(
                f"total_utilization {total_utilization} not achievable with "
                f"{n_tasks} tasks capped at {max_task_utilization}"
            )
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        for _ in range(1000):
            shares = []
            remaining = total_utilization
            for i in range(n_tasks - 1):
                next_sum = remaining * rng.random() ** (1.0 / (n_tasks - 1 - i))
                shares.append(remaining - next_sum)
                remaining = next_sum
            shares.append(remaining)
            if max(shares) <= max_task_utilization:
                break
        else:  # pragma: no cover - vanishingly unlikely at sane caps
            raise ConfigurationError(
                "could not draw a workload under the per-task cap"
            )
        ranks = rng.permutation(n_tasks)
        tasks = tuple(
            RTTask(
                name=f"t{i}",
                wcec=float(share * frame_s),
                criticality=int(ranks[i]),
            )
            for i, share in enumerate(shares)
        )
        return cls(frame_s=float(frame_s), tasks=tasks)
