"""Analysis utilities: executable forms of the paper's theorems."""

from repro.analysis.bounds import (
    Screen,
    ScreeningReport,
    classify_schedule,
    prune_candidates,
    stepup_bound,
)
from repro.analysis.tsp import TSPResult, thermal_safe_power, tsp_throughput
from repro.analysis.theorems import (
    TheoremReport,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem5,
    check_cooling_property,
)

__all__ = [
    "Screen",
    "ScreeningReport",
    "classify_schedule",
    "prune_candidates",
    "stepup_bound",
    "TSPResult",
    "thermal_safe_power",
    "tsp_throughput",
    "TheoremReport",
    "check_theorem1",
    "check_theorem2",
    "check_theorem3",
    "check_theorem4",
    "check_theorem5",
    "check_cooling_property",
]
