"""Design-space pruning with the step-up peak bound (Theorem 2).

The point of Theorem 2 is cheap *screening*: the step-up reordering's peak
is computable in linear time and upper-bounds the candidate's true peak,
so candidates whose bound already fits under ``T_max`` can be accepted
without ever running the expensive general peak search.  This module
packages that bound-then-verify pattern:

* :func:`stepup_bound` — the bound itself (with the wrap-epsilon margin),
* :func:`classify_schedule` — accept / reject / verify decision for one
  candidate,
* :func:`prune_candidates` — batch screening with statistics, the shape a
  design-space explorer (like PCO's phase search) would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.transforms import step_up
from repro.thermal.model import ThermalModel
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

__all__ = ["Screen", "ScreeningReport", "stepup_bound", "classify_schedule",
           "prune_candidates"]

#: Safety margin (K) added to the bound to absorb the wrap-continuation
#: epsilon (EXPERIMENTS.md Finding 1: worst observed ~0.25 K on arbitrary
#: schedules, <1 % relative).
WRAP_MARGIN = 0.3


class Screen(Enum):
    """Outcome of the cheap screening stage."""

    ACCEPT = "accept"    # bound (plus margin) fits under the threshold
    VERIFY = "verify"    # bound inconclusive; run the general engine
    REJECT = "reject"    # even an optimistic slack cannot save it


def stepup_bound(model: ThermalModel, schedule: PeriodicSchedule) -> float:
    """Theorem-2 upper bound on the schedule's stable peak (K above ambient)."""
    return stepup_peak_temperature(model, step_up(schedule), check=False).value


def classify_schedule(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    theta_max: float,
    reject_slack: float = 5.0,
    margin: float = WRAP_MARGIN,
) -> Screen:
    """Screen one candidate against ``theta_max`` using only the bound.

    * ``ACCEPT`` when ``bound + margin <= theta_max`` — the candidate is
      certainly feasible (up to the wrap epsilon, absorbed by ``margin``).
    * ``REJECT`` when ``bound - reject_slack > theta_max`` — the bound is
      so far over that no reordering slack can rescue it (``reject_slack``
      is how much the true peak may sit below its step-up bound; 5 K is a
      generous default on the calibrated chip).
    * ``VERIFY`` otherwise.
    """
    bound = stepup_bound(model, schedule)
    if bound + margin <= theta_max:
        return Screen.ACCEPT
    if bound - reject_slack > theta_max:
        return Screen.REJECT
    return Screen.VERIFY


@dataclass(frozen=True)
class ScreeningReport:
    """Batch screening outcome.

    Attributes
    ----------
    feasible:
        Indices of candidates established feasible (bound-accepted or
        verify-confirmed).
    infeasible:
        Indices established infeasible.
    verified:
        Indices that needed the general engine.
    """

    feasible: tuple[int, ...]
    infeasible: tuple[int, ...]
    verified: tuple[int, ...]

    @property
    def general_engine_fraction(self) -> float:
        """Share of candidates that needed the expensive engine."""
        total = len(self.feasible) + len(self.infeasible)
        return len(self.verified) / total if total else 0.0


def prune_candidates(
    model: ThermalModel,
    candidates: list[PeriodicSchedule],
    theta_max: float,
    reject_slack: float = 5.0,
    margin: float = WRAP_MARGIN,
) -> ScreeningReport:
    """Screen a candidate list, verifying only the inconclusive ones."""
    feasible: list[int] = []
    infeasible: list[int] = []
    verified: list[int] = []
    for k, schedule in enumerate(candidates):
        screen = classify_schedule(
            model, schedule, theta_max, reject_slack=reject_slack, margin=margin
        )
        if screen is Screen.ACCEPT:
            feasible.append(k)
        elif screen is Screen.REJECT:
            infeasible.append(k)
        else:
            verified.append(k)
            true_peak = peak_temperature(model, schedule).value
            (feasible if true_peak <= theta_max + 1e-9 else infeasible).append(k)
    return ScreeningReport(
        feasible=tuple(feasible),
        infeasible=tuple(infeasible),
        verified=tuple(verified),
    )
