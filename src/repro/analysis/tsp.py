"""Thermal Safe Power (TSP) — the power-budget baseline the paper critiques.

Pagani et al. [9] replace the single chip-wide TDP with a per-core power
budget ``P_TSP(k)`` for each active-core count ``k``: the largest uniform
per-core power such that *any* placement of ``k`` active cores stays under
``T_max`` at steady state.  The paper's introduction argues (citing [9])
that even such temperature-aware *power* budgeting is pessimistic compared
to scheduling temperature directly — this module quantifies that claim on
our substrate (see ``experiments.tsp_comparison``).

Because the steady-state map is linear in per-core injections, the hottest
placement for a uniform budget maximizes the row-sum of the thermal
response over active subsets; we enumerate subsets exactly for the paper's
small chips and fall back to a greedy inner bound past an enumeration
budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.platform import Platform

__all__ = ["TSPResult", "thermal_safe_power", "tsp_throughput"]

#: Max subsets enumerated exactly before switching to the greedy bound.
ENUMERATION_BUDGET = 200_000


@dataclass(frozen=True)
class TSPResult:
    """TSP budget for one active-core count.

    Attributes
    ----------
    n_active:
        Number of simultaneously active cores the budget covers.
    power_per_core:
        The TSP budget in W of temperature-independent injection
        (``psi``; the leakage feedback is inside the thermal map).
    worst_set:
        The active-core placement that pins the budget (hottest).
    exact:
        Whether the worst set was found by exact enumeration.
    """

    n_active: int
    power_per_core: float
    worst_set: tuple[int, ...]
    exact: bool


def _response_matrix(platform: Platform) -> np.ndarray:
    model = platform.model
    cores = model.network.core_nodes
    response = np.linalg.solve(model.g_eff, np.eye(model.n_nodes))
    return response[np.ix_(cores, cores)]


def thermal_safe_power(platform: Platform, n_active: int) -> TSPResult:
    """Compute the TSP per-core budget for ``n_active`` cores.

    With uniform injection ``P`` on an active set ``S``, core ``i`` reaches
    ``theta_i = P * sum_{j in S} R[i, j]``; the binding quantity is
    ``max_S max_{i in S} sum_{j in S} R[i, j]``, and
    ``P_TSP = theta_max / (that maximum)``.
    """
    n = platform.n_cores
    if not (1 <= n_active <= n):
        raise SolverError(f"n_active must be in [1, {n}], got {n_active}")
    r = _response_matrix(platform)
    theta_max = platform.theta_max

    from math import comb

    exact = comb(n, n_active) <= ENUMERATION_BUDGET
    best_val, best_set = -np.inf, None
    if exact:
        for subset in itertools.combinations(range(n), n_active):
            idx = np.asarray(subset)
            val = float(r[np.ix_(idx, idx)].sum(axis=1).max())
            if val > best_val:
                best_val, best_set = val, subset
    else:
        # Greedy inner bound: grow the set around the thermally worst core.
        order = np.argsort(-np.diag(r))
        current = [int(order[0])]
        while len(current) < n_active:
            gains = []
            for cand in range(n):
                if cand in current:
                    continue
                idx = np.asarray(current + [cand])
                gains.append(
                    (float(r[np.ix_(idx, idx)].sum(axis=1).max()), cand)
                )
            val, cand = max(gains)
            current.append(cand)
            best_val = val
        best_set = tuple(sorted(current))

    return TSPResult(
        n_active=n_active,
        power_per_core=float(theta_max / best_val),
        worst_set=tuple(best_set),
        exact=exact,
    )


def tsp_throughput(platform: Platform, n_active: int | None = None) -> float:
    """Chip throughput achievable under TSP power budgeting.

    Every active core converts its TSP budget to the fastest discrete
    mode whose injection fits (a budget-respecting governor); idle cores
    contribute zero.  Returns the chip-wide eq.-(5) throughput of the best
    active-core count when ``n_active`` is None.
    """
    n = platform.n_cores
    counts = range(1, n + 1) if n_active is None else [n_active]
    best = 0.0
    for k in counts:
        budget = thermal_safe_power(platform, k).power_per_core
        # Fastest ladder level within the injection budget.
        speed = 0.0
        for level in platform.ladder.levels:
            psi_vals = np.asarray(
                platform.model.power.psi(np.full(n, float(level)))
            )
            if float(psi_vals.max()) <= budget + 1e-12:
                speed = level
        best = max(best, k * speed / n)
    return best
