"""Executable checks of the paper's five theorems (plus Property 1).

Each ``check_theoremN`` takes a concrete model + schedule(s), evaluates
both sides of the theorem's inequality numerically, and returns a
:class:`TheoremReport`.  The property-based test-suite drives these over
random inputs; the examples use them for demonstration.

These are *checks*, not proofs: they confirm the implementation exhibits
the behaviour the paper proves for the model class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.schedule.builders import two_mode_schedule
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import is_step_up
from repro.schedule.transforms import m_oscillate, step_up
from repro.thermal.model import ThermalModel
from repro.thermal.peak import peak_temperature, stepup_peak_temperature

__all__ = [
    "TheoremReport",
    "check_theorem1",
    "check_theorem2",
    "check_theorem3",
    "check_theorem4",
    "check_theorem5",
    "check_cooling_property",
]

#: Numerical slack for inequality checks (K).  Covers grid/refinement error
#: of the general peak engine, plus a genuine epsilon effect around the
#: period wrap: in stable status a constant-voltage core next to stepping
#: neighbours can keep absorbing heat for a few thermal-lag milliseconds
#: *after* the period boundary, overshooting the period-end value by
#: sub-millikelvin amounts.  Theorem 1 therefore holds to within this
#: modeling tolerance rather than exactly.
TOL = 2e-3


@dataclass(frozen=True)
class TheoremReport:
    """Outcome of one theorem check.

    Attributes
    ----------
    holds:
        Whether the claimed inequality holds within tolerance.
    lhs, rhs:
        The two compared quantities (meaning depends on the theorem).
    description:
        What was compared.
    """

    holds: bool
    lhs: float
    rhs: float
    description: str


def check_theorem1(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    grid_per_interval: int = 96,
    tol: float = 1.0,
) -> TheoremReport:
    """Theorem 1: a step-up schedule's stable peak occurs at the period end.

    Compares the stable-status temperature at the period end (the literal
    Theorem-1 value, ``wrap_refine=False``) against the maximum found
    anywhere in the period by the general search.

    **Reproduction finding**: the literal statement admits a
    *wrap-continuation epsilon* — a core whose voltage does not change
    across the period wrap keeps rising briefly into the next period
    (its derivative is continuous through the wrap while neighbours are
    still hot) and can overshoot the period-end value by up to ~0.7 K on
    the calibrated chip (worst of 4000 randomized step-up schedules:
    0.67 K).  The default ``tol`` covers that tail with margin; use
    :func:`repro.thermal.peak.stepup_peak_temperature` with its default
    ``wrap_refine=True`` for an exact fast path.
    """
    if not is_step_up(schedule):
        raise ScheduleError("Theorem 1 applies to step-up schedules")
    end_peak = stepup_peak_temperature(
        model, schedule, check=False, wrap_refine=False
    ).value
    anywhere = peak_temperature(
        model, schedule, grid_per_interval=grid_per_interval, stepup_fast_path=False
    ).value
    return TheoremReport(
        holds=bool(anywhere <= end_peak + tol),
        lhs=anywhere,
        rhs=end_peak,
        description=(
            "max-over-period <= stable temperature at period end "
            "(up to the wrap-continuation epsilon)"
        ),
    )


def check_theorem2(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    grid_per_interval: int = 96,
    tol: float = 1.0,
) -> TheoremReport:
    """Theorem 2: the step-up reordering upper-bounds the stable peak.

    **Reproduction finding**: the bound inherits the Theorem-1
    wrap-continuation epsilon — worst observed violation on the
    calibrated chip is ~0.31 K (2000 randomized schedules), always below
    1 % of the bound itself; the default ``tol`` covers that tail with
    margin.  For design-space pruning the bound remains effectively
    tight.
    """
    original = peak_temperature(
        model, schedule, grid_per_interval=grid_per_interval
    ).value
    bound = stepup_peak_temperature(model, step_up(schedule), grid=96).value
    return TheoremReport(
        holds=bool(original <= bound + tol),
        lhs=original,
        rhs=bound,
        description="peak(S) <= peak(step_up(S)) (up to the wrap epsilon)",
    )


def check_theorem3(
    model: ThermalModel,
    v_const: float,
    v_low: float,
    v_high: float,
    period: float,
    core: int = 0,
    n_cores: int | None = None,
    tol: float = 1e-6,
) -> TheoremReport:
    """Theorem 3: constant speed beats the equal-work two-speed split.

    Core ``core`` either runs ``v_const`` for the whole period, or splits
    it into ``v_low`` then ``v_high`` with durations chosen so the work
    matches (eq. (6)); all other cores idle.  The constant schedule must
    have the lower stable peak.
    """
    if not (v_low <= v_const <= v_high) or v_high <= v_low:
        raise ScheduleError(
            f"need v_low <= v_const <= v_high with v_low < v_high, got "
            f"({v_low}, {v_const}, {v_high})"
        )
    if n_cores is None:
        n_cores = model.n_cores
    ratio_h = (v_const - v_low) / (v_high - v_low)

    lo = np.zeros(n_cores)
    hi = np.zeros(n_cores)
    rh = np.zeros(n_cores)
    lo[core], hi[core], rh[core] = v_low, v_high, ratio_h
    two_speed = two_mode_schedule(lo, hi, rh, period)

    const_v = np.zeros(n_cores)
    const_v[core] = v_const
    lo_c = hi_c = const_v
    constant = two_mode_schedule(lo_c, hi_c, np.ones(n_cores), period)

    p_const = stepup_peak_temperature(model, constant, check=False).value
    p_two = stepup_peak_temperature(model, two_speed, check=False).value
    return TheoremReport(
        holds=bool(p_const <= p_two + max(tol, TOL)),
        lhs=p_const,
        rhs=p_two,
        description="peak(constant) <= peak(two-speed, equal work)",
    )


def check_theorem4(
    model: ThermalModel,
    v_inner: tuple[float, float],
    v_outer: tuple[float, float],
    v_target: float,
    period: float,
    core: int = 0,
    n_cores: int | None = None,
    tol: float = 1e-6,
) -> TheoremReport:
    """Theorem 4: neighboring modes beat a wider mode pair at equal work.

    ``v_outer`` must bracket ``v_inner`` (``v_outer[0] <= v_inner[0] <=
    v_inner[1] <= v_outer[1]``) and both pairs must be able to realize the
    work of ``v_target``.  The inner (neighboring) pair must yield the
    lower stable peak.
    """
    (li, hi_v), (lo_o, ho) = v_inner, v_outer
    if not (lo_o <= li <= v_target <= hi_v <= ho):
        raise ScheduleError(
            f"need v_outer[0] <= v_inner[0] <= v_target <= v_inner[1] <= v_outer[1], "
            f"got inner={v_inner}, outer={v_outer}, target={v_target}"
        )
    if n_cores is None:
        n_cores = model.n_cores

    def build(pair: tuple[float, float]) -> PeriodicSchedule:
        v_l, v_h = pair
        r_h = 0.0 if v_h == v_l else (v_target - v_l) / (v_h - v_l)
        lo_arr = np.zeros(n_cores)
        hi_arr = np.zeros(n_cores)
        rh_arr = np.zeros(n_cores)
        lo_arr[core], hi_arr[core], rh_arr[core] = v_l, v_h, r_h
        return two_mode_schedule(lo_arr, hi_arr, rh_arr, period)

    p_inner = stepup_peak_temperature(model, build(v_inner), check=False).value
    p_outer = stepup_peak_temperature(model, build(v_outer), check=False).value
    return TheoremReport(
        holds=bool(p_inner <= p_outer + max(tol, TOL)),
        lhs=p_inner,
        rhs=p_outer,
        description="peak(neighboring pair) <= peak(wider pair), equal work",
    )


def check_theorem5(
    model: ThermalModel,
    schedule: PeriodicSchedule,
    m: int,
    tol: float = 1e-6,
) -> TheoremReport:
    """Theorem 5: for step-up schedules, peak(S(m+1)) <= peak(S(m))."""
    if not is_step_up(schedule):
        raise ScheduleError("Theorem 5 applies to step-up schedules")
    p_m = stepup_peak_temperature(model, m_oscillate(schedule, m), check=False).value
    p_m1 = stepup_peak_temperature(
        model, m_oscillate(schedule, m + 1), check=False
    ).value
    return TheoremReport(
        holds=bool(p_m1 <= p_m + max(tol, TOL)),
        lhs=p_m1,
        rhs=p_m,
        description=f"peak(S({m + 1},t)) <= peak(S({m},t))",
    )


def check_cooling_property(
    model: ThermalModel,
    theta0: np.ndarray,
    horizon: float,
    samples: int = 64,
    tol: float = 1e-9,
) -> TheoremReport:
    """Property 1: with all cores off, temperatures decay monotonically.

    Simulates the zero-input response from ``theta0 >= 0`` and verifies
    every node's trace is non-increasing.
    """
    theta0 = np.asarray(theta0, dtype=float)
    if np.any(theta0 < -tol):
        raise ScheduleError("Property 1 assumes theta0 >= 0 (above ambient)")
    times = np.linspace(0.0, horizon, samples)
    trace = model.eigen.propagate_batch(times, theta0)
    diffs = np.diff(trace, axis=0)
    worst = float(diffs.max()) if diffs.size else 0.0
    return TheoremReport(
        holds=bool(worst <= tol),
        lhs=worst,
        rhs=0.0,
        description="max temperature increase during all-off cooling",
    )
