"""Session-scoped service core: shared engines, cached guarded solves.

A :class:`SchedulerSession` is the long-lived object the serving layer
(and every in-process consumer) routes thermal work through.  It owns:

* one :class:`~repro.engine.ThermalEngine` per platform content hash,
  LRU-bounded, so repeated requests for the same physics share the
  model's steady-state/expm/eigenbasis caches instead of rebuilding
  them per call;
* a content-addressed :class:`~repro.service.cache.ScheduleCache`
  mapping ``(platform, solver, params, tolerance)`` to finished solve
  outcomes — a warm repeat request never touches the solver at all;
* per-request stats attribution: every solve checkpoints its engine
  first (:meth:`~repro.engine.ThermalEngine.checkpoint` /
  ``stats_since``), so coalesced requests sharing one engine never
  double-count each other's cache hits.

The session's **only** solve entry point is
:func:`~repro.algorithms.registry.guarded_solve` — every outcome leaving
it either carries an accepted
:class:`~repro.safety.certificate.SafetyCertificate` or an explicit
fallback record in ``result.details["fallback"]`` (or is an honest
``"infeasible"``).  Cached outcomes are the journaled wire documents of
the original solve, certificate included.

:func:`default_session` is the process-wide singleton the refactored
layers (``repro.api.evaluate``, the CLI, the sharded runner's workers,
grid-batched dispatch) share; it is rebuilt per process so forked
workers get their own engine LRU while still inheriting the warm
in-process eigenbasis cache.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine import EngineStats, ThermalEngine
from repro.obs import METRICS, span
from repro.platform import Platform
from repro.service.cache import (
    ScheduleCache,
    cache_enabled,
    platform_hash,
    schedule_cache_key,
)

__all__ = [
    "SchedulerSession",
    "SolveOutcome",
    "default_session",
    "reset_default_session",
]

#: Bound on canonical-spec -> platform-hash memoization (strings only).
_SPEC_MEMO_SIZE = 4096


@dataclass(frozen=True)
class SolveOutcome:
    """One served solve: status, live result, provenance.

    Attributes
    ----------
    status:
        ``"ok"`` or ``"infeasible"`` — an
        :class:`~repro.errors.InfeasibleError` is an answer the session
        caches like any other, not a failure.
    result:
        The :class:`~repro.algorithms.base.SchedulerResult` (``None``
        when infeasible).  Cached outcomes rebuild it from the stored
        wire document, so schedule, certificate, and details round-trip
        bit-for-bit (JSON float round-tripping is exact for float64).
    detail:
        The infeasibility message when ``status == "infeasible"``.
    cached:
        Whether this outcome was served from the schedule cache.
    platform_key / cache_key:
        The content hashes the request resolved to.
    stats:
        Thermal-work counters attributed to *this request only* (zero
        for cache hits — no thermal work ran).
    """

    status: str
    result: Any = None
    detail: str | None = None
    cached: bool = False
    platform_key: str = ""
    cache_key: str | None = None
    stats: EngineStats | None = None

    @property
    def certificate(self):
        """The result's safety certificate (``None`` when infeasible)."""
        return self.result.certificate if self.result is not None else None

    def as_doc(self) -> dict[str, Any]:
        """JSON wire form (the server's response body for solve ops)."""
        from repro.schedule.serialization import result_to_dict

        cert = self.certificate
        return {
            "status": self.status,
            "result": result_to_dict(self.result) if self.result else None,
            "detail": self.detail,
            "cached": self.cached,
            "platform": self.platform_key,
            "cache_key": self.cache_key,
            "certificate": cert.as_dict() if cert is not None else None,
            "stats": self.stats.as_dict() if self.stats is not None else None,
        }


def _cache_value(status: str, result, detail: str | None) -> dict[str, Any]:
    """The JSON document stored in the schedule cache for one outcome."""
    from repro.schedule.serialization import result_to_dict

    return {
        "status": status,
        "result": result_to_dict(result) if result is not None else None,
        "detail": detail,
    }


def _outcome_from_value(
    doc: Mapping[str, Any],
    *,
    cached: bool,
    platform_key: str,
    cache_key: str,
    stats: EngineStats | None = None,
) -> SolveOutcome:
    from repro.schedule.serialization import result_from_dict

    result_doc = doc.get("result")
    return SolveOutcome(
        status=str(doc["status"]),
        result=result_from_dict(result_doc) if result_doc else None,
        detail=doc.get("detail"),
        cached=cached,
        platform_key=platform_key,
        cache_key=cache_key,
        stats=stats,
    )


class SchedulerSession:
    """Long-lived service core owning engines and the schedule cache.

    Parameters
    ----------
    max_engines:
        Bound on the per-platform engine LRU.  Each engine pins its
        platform's thermal model (and caches); sweeps touch a handful of
        platforms, so the default is a working-set knob.
    cache:
        Inject a :class:`ScheduleCache` (tests, custom disk roots);
        defaults to a fresh one resolving its disk layer from the
        environment.
    """

    def __init__(
        self,
        max_engines: int = 8,
        cache: ScheduleCache | None = None,
    ) -> None:
        self.max_engines = int(max_engines)
        self.cache = cache if cache is not None else ScheduleCache()
        self._engines: OrderedDict[str, ThermalEngine] = OrderedDict()
        self._spec_memo: OrderedDict[str, str] = OrderedDict()
        self.requests = 0
        self.solve_requests = 0
        self.evaluate_requests = 0
        self.certify_requests = 0
        self.cache_hits = 0
        self.engines_built = 0
        self.engines_evicted = 0

    # ------------------------------------------------------------------
    # platform & engine resolution
    # ------------------------------------------------------------------

    def _resolve(
        self, platform: "Platform | ThermalEngine | Mapping[str, Any] | str"
    ) -> tuple[str, Platform | None, Any]:
        """``(platform_key, platform_or_None, spec_or_None)`` for any form.

        Spec forms — a preset name, a
        :class:`~repro.platforms.PlatformSpec`, a spec document or a
        legacy flat dict — coerce silently through the spec registry; a
        spec whose canonical form was seen before resolves to its hash
        without rebuilding the platform, so the warm-path cost of a
        served request is two dict lookups and one sha256 of a small key
        document.
        """
        if isinstance(platform, ThermalEngine):
            return platform_hash(platform.platform), platform.platform, None
        if isinstance(platform, Platform):
            return platform_hash(platform), platform, None
        from repro.platforms import PlatformSpec

        spec = PlatformSpec.coerce(platform)
        cjson = spec.canonical()
        key = self._spec_memo.get(cjson)
        if key is not None:
            self._spec_memo.move_to_end(cjson)
            return key, None, spec
        built = spec.build()
        key = platform_hash(built)
        while len(self._spec_memo) >= _SPEC_MEMO_SIZE:
            self._spec_memo.popitem(last=False)
        self._spec_memo[cjson] = key
        return key, built, spec

    def platform_key(
        self, platform: "Platform | ThermalEngine | Mapping[str, Any] | str"
    ) -> str:
        """The content hash a platform (or any spec form) resolves to."""
        return self._resolve(platform)[0]

    def engine_for(
        self, platform: "Platform | ThermalEngine | Mapping[str, Any] | str"
    ) -> ThermalEngine:
        """The session's shared engine for this platform content (LRU).

        Accepts a built :class:`Platform`, an existing engine (adopted
        under its content hash so later spec-form requests share it), or
        any :meth:`PlatformSpec.coerce
        <repro.platforms.PlatformSpec.coerce>` form — a preset name, a
        spec, a spec document or a legacy flat dict.
        """
        key, built, spec = self._resolve(platform)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            return engine
        if isinstance(platform, ThermalEngine):
            engine = platform
        else:
            if built is None:
                built = spec.build()
            engine = ThermalEngine(built)
        while len(self._engines) >= self.max_engines:
            self._engines.popitem(last=False)
            self.engines_evicted += 1
            METRICS.counter("service.engines_evicted").inc()
        self._engines[key] = engine
        self.engines_built += 1
        return engine

    @property
    def n_engines(self) -> int:
        return len(self._engines)

    # ------------------------------------------------------------------
    # solve — the only path is guarded_solve
    # ------------------------------------------------------------------

    def solve(
        self,
        platform: "Platform | ThermalEngine | Mapping[str, Any] | str",
        solver,
        params: Mapping[str, Any] | None = None,
        *,
        certify_tolerance: float | None = None,
        margin_policy: str | None = None,
        use_cache: bool = True,
    ) -> SolveOutcome:
        """One guarded, certified, cached solve request.

        Unknown parameter names raise
        :class:`~repro.errors.SolverError` *before* the guarded path —
        a malformed request is a client error, not a solver failure to
        degrade through the fallback chain.  ``margin_policy`` is part
        of the cache key: a shrink-policy result is never served for a
        plain request or vice versa.
        """
        from repro.algorithms.registry import get_solver
        from repro.errors import SolverError

        spec = solver if hasattr(solver, "params") else get_solver(str(solver))
        params = dict(params or {})
        unknown = set(params) - set(spec.params)
        if unknown:
            raise SolverError(
                f"solver {spec.name!r} does not accept "
                f"{sorted(unknown)}; valid parameters: {sorted(spec.params)}"
            )

        self.requests += 1
        self.solve_requests += 1
        METRICS.counter("service.requests").inc()

        key, _built, _spec = self._resolve(platform)
        cache_key = schedule_cache_key(
            key, spec.name, params, certify_tolerance, margin_policy
        )
        caching = use_cache and cache_enabled()
        if caching:
            value = self.cache.get(cache_key)
            if value is not None:
                self.cache_hits += 1
                METRICS.counter("service.cache_hits").inc()
                return _outcome_from_value(
                    value, cached=True, platform_key=key, cache_key=cache_key
                )

        return self._solve_uncached(
            platform, spec, params,
            certify_tolerance=certify_tolerance,
            margin_policy=margin_policy,
            platform_key=key, cache_key=cache_key, store=caching,
        )

    def _solve_uncached(
        self,
        platform,
        spec,
        params: dict[str, Any],
        *,
        certify_tolerance: float | None,
        margin_policy: str | None = None,
        platform_key: str,
        cache_key: str,
        store: bool,
    ) -> SolveOutcome:
        from repro.algorithms.registry import guarded_solve
        from repro.errors import InfeasibleError

        engine = self.engine_for(platform)
        mark = engine.checkpoint()
        t0 = time.perf_counter()
        with span(
            "service/solve", solver=spec.name, platform=platform_key[:8]
        ):
            try:
                result = guarded_solve(
                    spec, engine,
                    certify_tolerance=certify_tolerance,
                    margin_policy=margin_policy, **params,
                )
            except InfeasibleError as exc:
                status, result, detail = "infeasible", None, str(exc)
            else:
                status, detail = "ok", None
        stats = engine.stats_since(mark)
        METRICS.histogram("service.solve_seconds").observe(
            time.perf_counter() - t0
        )
        if store:
            self.cache.put(cache_key, _cache_value(status, result, detail))
        return SolveOutcome(
            status=status,
            result=result,
            detail=detail,
            cached=False,
            platform_key=platform_key,
            cache_key=cache_key,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # evaluate / certify — scalar and grid-batched forms
    # ------------------------------------------------------------------

    def evaluate(
        self,
        platform: "Platform | ThermalEngine | Mapping[str, Any]",
        schedule,
        general: bool = True,
        grid_per_interval: int | None = None,
    ):
        """Price one schedule on the session's shared engine."""
        from repro.api import evaluate as api_evaluate

        self.requests += 1
        self.evaluate_requests += 1
        METRICS.counter("service.requests").inc()
        engine = self.engine_for(platform)
        with span("service/evaluate", platform=self.platform_key(engine)[:8]):
            return api_evaluate(
                engine, schedule,
                general=general, grid_per_interval=grid_per_interval,
            )

    def evaluate_many(
        self,
        items: Sequence[tuple[Any, Any]],
        general: bool = True,
        grid_per_interval: int | None = None,
    ) -> list:
        """Price R ``(platform, schedule)`` rows in one grid-kernel call.

        Matches :func:`repro.api.evaluate` per row to 1e-9 (the grid
        kernels' committed parity bound); non-general rows fall back to
        the scalar Theorem-1 route, which has no cross-platform kernel.
        """
        from repro.api import EvaluationResult, evaluate as api_evaluate
        from repro.schedule.properties import throughput as schedule_throughput
        from repro.thermal.grid import peak_temperature_grid

        items = list(items)
        self.requests += len(items)
        self.evaluate_requests += len(items)
        METRICS.counter("service.requests").inc(len(items))
        if not items:
            return []
        engines = [self.engine_for(p) for p, _ in items]
        if not general:
            return [
                api_evaluate(e, s, general=False)
                for e, (_, s) in zip(engines, items)
            ]
        kwargs: dict[str, Any] = {}
        if grid_per_interval is not None:
            kwargs["grid_per_interval"] = int(grid_per_interval)
        with span("service/evaluate_grid", rows=len(items)):
            peaks = peak_temperature_grid(
                [(e.model, s) for e, (_, s) in zip(engines, items)], **kwargs
            )
        out = []
        for engine, (_, schedule), peak in zip(engines, items, peaks):
            theta_max = engine.theta_max
            out.append(
                EvaluationResult(
                    peak_theta=float(peak.value),
                    theta_max=float(theta_max),
                    feasible=bool(peak.value <= theta_max + 1e-9),
                    throughput=float(schedule_throughput(schedule)),
                    t_ambient_c=float(engine.model.t_ambient_c),
                )
            )
        return out

    def certify_schedule(
        self,
        platform: "Platform | ThermalEngine | Mapping[str, Any]",
        schedule,
        claims: Mapping[str, Any] | None = None,
        *,
        tolerance: float | None = None,
    ):
        """Independently certify one schedule on the shared engine."""
        return self.certify_many(
            [(platform, schedule, dict(claims or {}))], tolerance=tolerance
        )[0]

    def certify_many(
        self,
        items: Sequence[tuple],
        *,
        tolerance: float | None = None,
    ) -> list:
        """Certify many ``(platform, schedule[, claims])`` rows in one
        :func:`~repro.safety.certificate.certify_grid` call."""
        from repro.safety.certificate import certify_grid

        items = list(items)
        self.requests += len(items)
        self.certify_requests += len(items)
        METRICS.counter("service.requests").inc(len(items))
        if not items:
            return []
        prepared = []
        for item in items:
            engine = self.engine_for(item[0])
            claims = dict(item[2]) if len(item) > 2 else {}
            prepared.append((engine, item[1], claims))
        kwargs = {} if tolerance is None else {"tolerance": float(tolerance)}
        with span("service/certify_grid", rows=len(items)):
            return certify_grid(prepared, **kwargs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the server's ``stats`` op and journaled metrics."""
        return {
            "requests": self.requests,
            "solve_requests": self.solve_requests,
            "evaluate_requests": self.evaluate_requests,
            "certify_requests": self.certify_requests,
            "cache_hits": self.cache_hits,
            "engines": self.n_engines,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
            "cache": self.cache.stats(),
        }


#: Process-wide default session, rebuilt per pid so forked workers get
#: their own engine LRU (they still inherit the warm eigenbasis cache).
_DEFAULT: tuple[int, SchedulerSession] | None = None


def default_session() -> SchedulerSession:
    """The process-wide :class:`SchedulerSession` shared by api/CLI/runner."""
    global _DEFAULT
    pid = os.getpid()
    if _DEFAULT is None or _DEFAULT[0] != pid:
        _DEFAULT = (pid, SchedulerSession())
    return _DEFAULT[1]


def reset_default_session() -> None:
    """Drop the process-wide session (tests, cache-isolation boundaries)."""
    global _DEFAULT
    _DEFAULT = None
