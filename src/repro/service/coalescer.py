"""Request coalescing: concurrent service requests become grid calls.

The serving layer's asyncio front-end accepts requests one connection at
a time, but the thermal machinery is at its best amortized: the PR-6
grid kernels price a whole ``(platform x schedule)`` set in single
tensorized calls, and identical solve requests are pure duplicates of
one cached answer.  :class:`RequestCoalescer` sits between the two —
requests submitted while the loop is busy accumulate in a queue, and the
drain pass executes each batch with the work regrouped:

* **solve** requests deduplicate by schedule-cache key: N identical
  concurrent requests run :func:`~repro.algorithms.registry.guarded_solve`
  once and share the outcome (each response reports the group size in
  ``coalesced``); distinct keys run through the session sequentially,
  still sharing its engines and cache.
* **evaluate** requests with the same pricing knobs collapse into one
  :func:`~repro.thermal.grid.peak_temperature_grid` call via
  :meth:`~repro.service.session.SchedulerSession.evaluate_many` — the
  grid kernels take heterogeneous platforms, so one batch spans them.
* **certify** requests with the same tolerance collapse into one
  :func:`~repro.safety.certificate.certify_grid` call.

Results are **identical** to sequential execution — the grid kernels
carry a committed 1e-9 scalar-parity bound and solve deduplication
returns the same outcome object the single execution produced; the
correctness tests in ``tests/test_service.py`` pin both, including
rejected-certificate fallback paths.

Batch shapes are observed on the ``service.coalesced_batch`` histogram,
with ``service.coalesced_batches`` / ``service.coalesced_requests``
counting multi-request groups — the numbers ``repro stats`` surfaces
for journaled serve sessions.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.obs import METRICS, span
from repro.service.cache import schedule_cache_key
from repro.service.session import SchedulerSession

__all__ = ["RequestCoalescer"]


def _error_doc(exc: BaseException) -> dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


class RequestCoalescer:
    """Batch concurrent solve/evaluate/certify requests for one session.

    Parameters
    ----------
    session:
        The :class:`SchedulerSession` executing the work.
    max_batch:
        Largest group drained in one pass; the queue carries over.
    """

    def __init__(
        self, session: SchedulerSession | None = None, max_batch: int = 256
    ) -> None:
        self.session = session if session is not None else SchedulerSession()
        self.max_batch = int(max_batch)
        self._queue: list[tuple[dict[str, Any], asyncio.Future]] = []
        self._drain_task: asyncio.Task | None = None
        self.batches = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        self.largest_batch = 0

    async def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Enqueue one request document; resolves to its response document.

        Requests submitted in the same event-loop tick (concurrent
        connections, pipelined lines on one connection) land in the same
        drain batch — no artificial delay is added, batching is purely
        what concurrency provides.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._queue.append((dict(request), future))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain())
        return await future

    async def _drain(self) -> None:
        while self._queue:
            # One tick lets every already-scheduled submit enqueue, so
            # a gather() of N requests drains as one batch.
            await asyncio.sleep(0)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            self.batches += 1
            self._execute(batch)

    # ------------------------------------------------------------------
    # synchronous batch execution (the work is CPU-bound numpy)
    # ------------------------------------------------------------------

    def _observe_group(self, size: int) -> None:
        METRICS.histogram("service.coalesced_batch").observe(size)
        self.largest_batch = max(self.largest_batch, size)
        if size > 1:
            self.coalesced_batches += 1
            self.coalesced_requests += size
            METRICS.counter("service.coalesced_batches").inc()
            METRICS.counter("service.coalesced_requests").inc(size)

    def _execute(self, batch: list[tuple[dict[str, Any], asyncio.Future]]) -> None:
        groups: dict[str, list[tuple[dict[str, Any], asyncio.Future]]] = {}
        for request, future in batch:
            if future.cancelled():
                continue
            op = str(request.get("op", ""))
            if op in ("solve", "evaluate", "certify"):
                groups.setdefault(op, []).append((request, future))
            else:
                future.set_result(
                    _error_doc(ValueError(f"unknown op {op!r}"))
                )
        with span("service/coalesce", requests=len(batch)):
            if "solve" in groups:
                self._execute_solves(groups["solve"])
            if "evaluate" in groups:
                self._execute_evaluates(groups["evaluate"])
            if "certify" in groups:
                self._execute_certifies(groups["certify"])

    def _execute_solves(
        self, entries: list[tuple[dict[str, Any], asyncio.Future]]
    ) -> None:
        """Deduplicate by cache key, solve each distinct request once."""
        session = self.session
        by_key: dict[str, list[tuple[dict[str, Any], asyncio.Future]]] = {}
        order: list[str] = []
        for request, future in entries:
            try:
                spec_name = str(request["solver"])
                platform_key = session.platform_key(request.get("platform") or {})
                key = schedule_cache_key(
                    platform_key,
                    spec_name,
                    request.get("params") or {},
                    request.get("tolerance"),
                )
            except Exception as exc:  # noqa: BLE001 - per-request error doc
                future.set_result(_error_doc(exc))
                continue
            if key not in by_key:
                order.append(key)
            by_key.setdefault(key, []).append((request, future))

        for key in order:
            group = by_key[key]
            self._observe_group(len(group))
            request = group[0][0]
            try:
                outcome = session.solve(
                    request.get("platform") or {},
                    str(request["solver"]),
                    request.get("params") or {},
                    certify_tolerance=request.get("tolerance"),
                )
                doc = {
                    "ok": True,
                    "op": "solve",
                    **outcome.as_doc(),
                    "coalesced": len(group),
                }
            except Exception as exc:  # noqa: BLE001 - per-request error doc
                doc = _error_doc(exc)
            for _, future in group:
                if not future.cancelled():
                    future.set_result(dict(doc))

    def _execute_evaluates(
        self, entries: list[tuple[dict[str, Any], asyncio.Future]]
    ) -> None:
        """Group by pricing knobs; each group is one grid-kernel call."""
        from repro.schedule.serialization import schedule_from_dict

        session = self.session
        groups: dict[tuple, list[tuple[dict, asyncio.Future, Any]]] = {}
        for request, future in entries:
            try:
                schedule = schedule_from_dict(request["schedule"])
                knobs = (
                    bool(request.get("general", True)),
                    request.get("grid_per_interval"),
                )
            except Exception as exc:  # noqa: BLE001 - per-request error doc
                future.set_result(_error_doc(exc))
                continue
            groups.setdefault(knobs, []).append((request, future, schedule))

        for (general, grid_per_interval), group in groups.items():
            self._observe_group(len(group))
            try:
                evaluations = session.evaluate_many(
                    [
                        (request.get("platform") or {}, schedule)
                        for request, _, schedule in group
                    ],
                    general=general,
                    grid_per_interval=grid_per_interval,
                )
            except Exception as exc:  # noqa: BLE001 - whole group errors
                for _, future, _ in group:
                    if not future.cancelled():
                        future.set_result(_error_doc(exc))
                continue
            for (_, future, _), ev in zip(group, evaluations):
                if future.cancelled():
                    continue
                future.set_result(
                    {
                        "ok": True,
                        "op": "evaluate",
                        "evaluation": {
                            "peak_theta": ev.peak_theta,
                            "theta_max": ev.theta_max,
                            "feasible": ev.feasible,
                            "throughput": ev.throughput,
                            "t_ambient_c": ev.t_ambient_c,
                        },
                        "coalesced": len(group),
                    }
                )

    def _execute_certifies(
        self, entries: list[tuple[dict[str, Any], asyncio.Future]]
    ) -> None:
        """Group by tolerance; each group is one certify_grid call."""
        from repro.schedule.serialization import schedule_from_dict

        session = self.session
        groups: dict[Any, list[tuple[dict, asyncio.Future, Any]]] = {}
        for request, future in entries:
            try:
                schedule = schedule_from_dict(request["schedule"])
            except Exception as exc:  # noqa: BLE001 - per-request error doc
                future.set_result(_error_doc(exc))
                continue
            groups.setdefault(request.get("tolerance"), []).append(
                (request, future, schedule)
            )

        for tolerance, group in groups.items():
            self._observe_group(len(group))
            try:
                certs = session.certify_many(
                    [
                        (
                            request.get("platform") or {},
                            schedule,
                            dict(request.get("claims") or {}),
                        )
                        for request, _, schedule in group
                    ],
                    tolerance=tolerance,
                )
            except Exception as exc:  # noqa: BLE001 - whole group errors
                for _, future, _ in group:
                    if not future.cancelled():
                        future.set_result(_error_doc(exc))
                continue
            for (_, future, _), cert in zip(group, certs):
                if future.cancelled():
                    continue
                future.set_result(
                    {
                        "ok": True,
                        "op": "certify",
                        "certificate": cert.as_dict(),
                        "accepted": cert.accepted,
                        "coalesced": len(group),
                    }
                )

    def stats(self) -> dict[str, Any]:
        """Batch counters for the ``stats`` op and journaled metrics."""
        return {
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "largest_batch": self.largest_batch,
        }
