"""``repro serve`` — newline-delimited-JSON scheduling service.

One request per line, one JSON response per line, over TCP
(``127.0.0.1`` by default, ephemeral port with ``port=0``) or
stdin/stdout.  Every solve is served through the session's guarded path
— the response either embeds an accepted
:class:`~repro.safety.certificate.SafetyCertificate`, an explicit
fallback record (``result.details.fallback``), or an honest
``"infeasible"`` status — and concurrent requests coalesce into grid
calls via :class:`~repro.service.coalescer.RequestCoalescer`.

Request documents (the optional ``id`` is echoed back so clients can
pipeline)::

    {"op": "solve", "platform": {"n_cores": 3}, "solver": "AO",
     "params": {"m_cap": 16}, "tolerance": 0.05, "id": 1}
    {"op": "evaluate", "platform": {...}, "schedule": {...},
     "general": true, "grid_per_interval": 64}
    {"op": "certify", "platform": {...}, "schedule": {...},
     "claims": {"claimed_peak": 19.93}, "tolerance": 0.05}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}

With a ``run_dir`` the server journals one row per served request into
the standard runner journal format (``kind="service_request"``) plus a
final ``kind="service_metrics"`` row on close, so ``repro stats
<run-dir>`` reports the serve session — request statuses, cache hit
rates, and the coalesced-batch shapes — exactly like a sweep.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs import METRICS
from repro.service.coalescer import RequestCoalescer
from repro.service.session import SchedulerSession

__all__ = ["ScheduleServer", "send_requests"]

#: Refuse absurd lines instead of buffering them (asyncio stream limit).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ScheduleServer:
    """The asyncio front-end over one session + coalescer pair."""

    def __init__(
        self,
        session: SchedulerSession | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        run_dir: str | Path | None = None,
        max_batch: int = 256,
    ) -> None:
        self.session = session if session is not None else SchedulerSession()
        self.coalescer = RequestCoalescer(self.session, max_batch=max_batch)
        self.host = host
        self.port = int(port)
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self._journal = None
        self._seq = 0
        self.served = 0
        self.failed = 0
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------

    def _open_journal(self) -> None:
        if self.run_dir is None:
            return
        from datetime import datetime, timezone

        from repro.runner.journal import (
            JOURNAL_NAME,
            Journal,
            git_sha,
            write_manifest,
        )

        write_manifest(
            self.run_dir,
            {
                "experiment": "serve",
                "created_at": datetime.now(timezone.utc).isoformat(),
                "n_units": 0,
                "git_sha": git_sha(),
                "units_hash": "service",
            },
        )
        self._journal = Journal(self.run_dir / JOURNAL_NAME)

    def _journal_response(
        self, request: Mapping[str, Any], response: Mapping[str, Any],
        elapsed_s: float,
    ) -> None:
        if self._journal is None:
            return
        self._seq += 1
        op = str(request.get("op", "?"))
        if response.get("ok"):
            status = str(response.get("status", "ok"))
        else:
            status = "error"
        result = response.get("result")
        fallback = bool(
            result and (result.get("details") or {}).get("fallback")
        )
        self._journal.append(
            {
                "unit_id": f"req-{self._seq:06d}",
                "kind": "service_request",
                "label": f"{op}:{request.get('solver', '')}".rstrip(":"),
                "status": status,
                "elapsed_s": elapsed_s,
                "cached": bool(response.get("cached")),
                "coalesced": int(response.get("coalesced", 1)),
                "fallback": fallback,
                "stats": response.get("stats"),
                "certificate": response.get("certificate"),
            }
        )

    def _close_journal(self) -> None:
        if self._journal is None:
            return
        self._journal.append(
            {
                "unit_id": "service-metrics",
                "kind": "service_metrics",
                "status": "ok",
                "service": self.service_stats(),
            }
        )
        self._journal.close()
        self._journal = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def service_stats(self) -> dict[str, Any]:
        """One document covering session, cache and coalescer counters."""
        return {
            "served": self.served,
            "failed": self.failed,
            "session": self.session.stats(),
            "coalescer": self.coalescer.stats(),
        }

    async def handle_request(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one request document, returning the response document."""
        op = str(request.get("op", ""))
        t0 = time.perf_counter()
        if op == "ping":
            response: dict[str, Any] = {"ok": True, "op": "ping"}
        elif op == "stats":
            response = {"ok": True, "op": "stats", "stats": self.service_stats()}
        elif op == "shutdown":
            response = {"ok": True, "op": "shutdown"}
            self._shutdown.set()
        elif op in ("solve", "evaluate", "certify"):
            response = await self.coalescer.submit(request)
        else:
            response = {
                "ok": False,
                "error": {
                    "type": "ValueError",
                    "message": f"unknown op {op!r}",
                },
            }
        elapsed = time.perf_counter() - t0
        self.served += 1
        if not response.get("ok"):
            self.failed += 1
            METRICS.counter("service.request_errors").inc()
        if op in ("solve", "evaluate", "certify"):
            self._journal_response(request, response, elapsed)
        if "id" in request:
            response = dict(response, id=request["id"])
        return response

    async def _handle_line(
        self, line: bytes, writer, lock: asyncio.Lock
    ) -> None:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError) as exc:
            response: dict[str, Any] = {
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
            self.served += 1
            self.failed += 1
        else:
            response = await self.handle_request(request)
        payload = (json.dumps(response) + "\n").encode("utf-8")
        async with lock:
            writer.write(payload)
            await writer.drain()

    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: spawn a task per line so pipelined
        requests land in the same coalescer batch."""
        lock = asyncio.Lock()
        tasks: list[asyncio.Task] = []
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                if line.strip():
                    tasks.append(
                        asyncio.ensure_future(
                            self._handle_line(line, writer, lock)
                        )
                    )
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Shutdown retires connections parked on readline; end the
            # task cleanly so the stream server's done-callback (which
            # re-raises task.exception()) stays quiet.
            if conn_task is not None:
                conn_task.uncancel()
        finally:
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # lifecycles
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the TCP listener; returns the bound ``(host, port)``."""
        self._open_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op arrives (or the task is cancelled)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._shutdown.wait()
            # Let in-flight response writes finish before tearing down.
            await asyncio.sleep(0)
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Connection handlers blocked on readline survive the
            # listener close; retire them here so loop shutdown is clean.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            self._close_journal()

    async def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve newline-delimited JSON on stdin/stdout until EOF."""
        self._open_journal()
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        lock = asyncio.Lock()

        class _Writer:
            def write(self, payload: bytes) -> None:
                stdout.write(payload.decode("utf-8"))

            async def drain(self) -> None:
                stdout.flush()

        writer = _Writer()
        tasks: list[asyncio.Task] = []
        try:
            while not self._shutdown.is_set():
                line = await loop.run_in_executor(None, stdin.readline)
                if not line:
                    break
                if line.strip():
                    tasks.append(
                        asyncio.ensure_future(
                            self._handle_line(line.encode("utf-8"), writer, lock)
                        )
                    )
                    # Give handlers a tick so pipelined lines coalesce
                    # while the executor waits on the next read.
                    await asyncio.sleep(0)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._close_journal()


async def send_requests(
    host: str, port: int, requests: "list[Mapping[str, Any]]"
) -> list[dict[str, Any]]:
    """Pipeline requests over one connection; responses in request order.

    Writes every line before reading any response, so the server's
    per-line tasks land in the same coalescer batch — this is the client
    the serve smoke test drives, and the easiest way to *observe*
    coalescing from outside.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    try:
        tagged = [dict(doc, id=i) for i, doc in enumerate(requests)]
        for doc in tagged:
            writer.write((json.dumps(doc) + "\n").encode("utf-8"))
        await writer.drain()
        responses: dict[int, dict[str, Any]] = {}
        while len(responses) < len(tagged):
            line = await reader.readline()
            if not line:
                raise ConnectionError(
                    f"server closed after {len(responses)}/{len(tagged)} responses"
                )
            doc = json.loads(line)
            responses[int(doc["id"])] = doc
        return [responses[i] for i in range(len(tagged))]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
