"""repro.service — the session-scoped scheduling service core.

The serving layer the ROADMAP's "scheduling as a service" item calls
for, extracted so every consumer shares one machinery:

* :class:`~repro.service.session.SchedulerSession` — one
  :class:`~repro.engine.ThermalEngine` per platform content hash
  (LRU-bounded), a content-addressed
  :class:`~repro.service.cache.ScheduleCache`, and per-request stats
  attribution; its only solve path is
  :func:`~repro.algorithms.registry.guarded_solve`.
* :class:`~repro.service.coalescer.RequestCoalescer` — concurrent
  solve/evaluate/certify requests regrouped into single grid-kernel
  calls (and deduplicated solves).
* :class:`~repro.service.server.ScheduleServer` — the ``repro serve``
  asyncio front-end: newline-delimited JSON over TCP or stdio, with
  optional journaling that makes serve sessions first-class citizens of
  ``repro stats``.

In-process consumers go through
:func:`~repro.service.session.default_session`; the refactored
``repro.api.evaluate``, CLI solve/certify, sharded-runner workers and
grid-batched dispatch all do.
"""

from repro.service.cache import (
    ScheduleCache,
    cache_enabled,
    platform_hash,
    schedule_cache_key,
)
from repro.service.coalescer import RequestCoalescer
from repro.service.server import ScheduleServer, send_requests
from repro.service.session import (
    SchedulerSession,
    SolveOutcome,
    default_session,
    reset_default_session,
)

__all__ = [
    "ScheduleCache",
    "ScheduleServer",
    "SchedulerSession",
    "SolveOutcome",
    "RequestCoalescer",
    "cache_enabled",
    "default_session",
    "platform_hash",
    "reset_default_session",
    "schedule_cache_key",
    "send_requests",
]
