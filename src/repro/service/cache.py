"""Content-addressed schedule cache: ``(platform, solver, params) -> result``.

The serving layer answers the same question over and over — *what
schedule should this platform run?* — and the answer is fully determined
by the platform's thermal/power content, the solver, and its parameters.
This module memoizes :func:`~repro.algorithms.registry.guarded_solve`
outcomes behind a content hash, with the same two-layer discipline as
the eigenbasis cache (:mod:`repro.util.eigcache`):

* an **in-process LRU** — hits are dict lookups, and worker processes
  forked from a warm parent inherit it;
* an **opt-in on-disk directory** — one JSON document per key, written
  atomically (temp file + ``os.replace``) so concurrent sessions and
  sharded-runner workers deduplicate solves across process boundaries.
  Unlike the eigenbasis cache the values here are *results*, not
  refactorings of the key, so the disk layer is opt-in
  (``REPRO_SCHEDULE_CACHE_DIR``) and every document embeds its key and
  format version — a stale or foreign file degrades to a miss.

Keys are built from :func:`platform_hash` — a sha256 over the thermal
system matrix, heat-capacity diagonal, core-node map, power-model type
and coefficients (scalar and per-core heterogeneous alike), the mode
ladder, transition overhead and threshold — combined with the solver
name, its canonicalized parameters and the certification tolerance via
the runner's :func:`~repro.runner.units.canonical_json` discipline.  Two
platforms share entries only when their physics is bitwise identical.

Configuration (environment):

* ``REPRO_SCHEDULE_CACHE=0`` — disable schedule caching entirely (both
  layers); :func:`cache_enabled` is consulted per request.
* ``REPRO_SCHEDULE_CACHE_DIR`` — enable the shared disk layer rooted at
  the given directory.

Hits, misses and writes are counted in :data:`repro.obs.METRICS` under
``service.cache_*`` and per-instance (:meth:`ScheduleCache.stats`), from
where ``repro stats`` and the server's ``stats`` op surface them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.obs import METRICS
from repro.platform import Platform
from repro.runner.units import canonical_json

__all__ = [
    "CACHE_FORMAT",
    "ScheduleCache",
    "cache_enabled",
    "platform_hash",
    "schedule_cache_key",
    "schedule_cache_dir",
]

#: Version stamp baked into every key and disk document.  Bump it when
#: the solve path changes in a way that invalidates cached outcomes
#: (solver semantics, certificate checks, result wire format).
CACHE_FORMAT = 1

#: Power-model coefficients that define the platform's physics; scalar
#: for :class:`~repro.power.model.PowerModel`, per-core arrays for the
#: heterogeneous variant — both hash through the same float bytes.
_POWER_FIELDS = ("alpha_lin", "gamma", "beta", "v_min", "v_max")


def platform_hash(platform) -> str:
    """Content hash identifying one platform's full physics (32 hex chars).

    Covers everything a solve outcome depends on: the thermal system
    matrix ``A`` and capacitance diagonal, which cores sit where in the
    RC network, the power model (its type plus every coefficient, so a
    big.LITTLE platform never collides with its homogeneous base),
    ambient, the voltage ladder, the DVFS transition overhead, and the
    temperature threshold.

    Besides a built :class:`~repro.platform.Platform`, any
    :meth:`PlatformSpec.coerce <repro.platforms.PlatformSpec.coerce>`
    form is accepted — a spec, a preset name, a spec document or a
    legacy flat dict — and is built first, so every description of the
    same physics lands on the same key.
    """
    if not isinstance(platform, Platform):
        from repro.platforms import PlatformSpec

        platform = PlatformSpec.coerce(platform).build()
    model = platform.model
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(model.a, dtype=float).tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(model.c_diag, dtype=float).tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(model.network.core_nodes, dtype=np.int64).tobytes())
    h.update(b"|")
    power = model.power
    h.update(type(power).__name__.encode("ascii"))
    for name in _POWER_FIELDS:
        h.update(b"|")
        h.update(
            np.ascontiguousarray(
                np.asarray(getattr(power, name), dtype=float)
            ).tobytes()
        )
    scalars = {
        "t_ambient_c": float(model.t_ambient_c),
        "levels": [float(v) for v in platform.ladder.levels],
        "tau": float(platform.overhead.tau),
        "t_max_c": float(platform.t_max_c),
    }
    h.update(b"|")
    h.update(canonical_json(scalars).encode("utf-8"))
    return h.hexdigest()[:32]


def _canonical_value(value: Any) -> Any:
    """Normalize one parameter value into a canonical JSON-able form."""
    if isinstance(value, np.ndarray):
        return [_canonical_value(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


def schedule_cache_key(
    platform_key: str,
    solver: str,
    params: Mapping[str, Any] | None = None,
    certify_tolerance: float | None = None,
    margin_policy: str | None = None,
) -> str:
    """Content key of one solve request (32 hex chars).

    ``platform_key`` is a :func:`platform_hash`; parameters are
    canonicalized (tuples and arrays become lists, numpy scalars become
    Python scalars) so spelling differences do not split the cache, and
    *any* parameter change — including the certification tolerance and
    the margin policy — yields a different key.  ``margin_policy=None``
    and ``"off"`` hash identically (they request the same solve).
    """
    doc = {
        "format": CACHE_FORMAT,
        "platform": str(platform_key),
        "solver": str(solver),
        "params": _canonical_value(dict(params or {})),
        "certify_tolerance": certify_tolerance,
    }
    if margin_policy not in (None, "off"):
        doc["margin_policy"] = str(margin_policy)
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:32]


def cache_enabled() -> bool:
    """Whether schedule caching is on (``REPRO_SCHEDULE_CACHE=0`` kills it)."""
    return os.environ.get("REPRO_SCHEDULE_CACHE", "").strip() != "0"


def schedule_cache_dir() -> Path | None:
    """The shared disk directory, or ``None`` (the layer is opt-in)."""
    if not cache_enabled():
        return None
    override = os.environ.get("REPRO_SCHEDULE_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    return None


class ScheduleCache:
    """Two-layer (memory LRU + optional atomic disk) outcome cache.

    Parameters
    ----------
    directory:
        Disk-layer root.  ``None`` (default) resolves it from
        ``REPRO_SCHEDULE_CACHE_DIR`` at construction time; pass a path
        to pin it explicitly, or ``directory=False``-like empty string
        never arises — use ``ScheduleCache(directory=None)`` with the
        env var unset for a memory-only cache.
    memory_size:
        Bound on the in-process layer (least-recently-used entry
        evicted).  Outcome documents are small (a schedule plus a
        certificate), so this is a working-set knob, not a leak guard.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        memory_size: int = 1024,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else schedule_cache_dir()
        )
        self.memory_size = int(memory_size)
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-process layer (tests; the disk layer is content-keyed)."""
        self._memory.clear()

    def _remember(self, key: str, doc: dict[str, Any]) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
            return
        while len(self._memory) >= self.memory_size:
            self._memory.popitem(last=False)
        self._memory[key] = doc

    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _load_disk(self, key: str) -> dict[str, Any] | None:
        """Load one disk document, verifying key and format.

        Any failure — missing file, torn write from a dead process, a
        key or format mismatch — degrades to a miss, never an error.
        """
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("format") != CACHE_FORMAT
            or wrapper.get("key") != key
            or not isinstance(wrapper.get("outcome"), dict)
        ):
            return None
        return wrapper["outcome"]

    def _store_disk(self, key: str, doc: dict[str, Any]) -> None:
        """Atomic write: temp file in the same directory, then ``os.replace``."""
        path = self._disk_path(key)
        if path is None:
            return
        wrapper = {"format": CACHE_FORMAT, "key": key, "outcome": doc}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=key, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(wrapper, fh, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # A read-only or full cache directory must never fail a solve.
            METRICS.counter("service.cache_disk_write_errors").inc()

    def get(self, key: str) -> dict[str, Any] | None:
        """Look one outcome document up (memory first, then disk)."""
        doc = self._memory.get(key)
        if doc is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            METRICS.counter("service.cache_memory_hits").inc()
            return doc
        doc = self._load_disk(key)
        if doc is not None:
            self.disk_hits += 1
            METRICS.counter("service.cache_disk_hits").inc()
            self._remember(key, doc)
            return doc
        self.misses += 1
        METRICS.counter("service.cache_misses").inc()
        return None

    def put(self, key: str, doc: dict[str, Any]) -> None:
        """Store one outcome document in both layers."""
        self.writes += 1
        METRICS.counter("service.cache_writes").inc()
        self._remember(key, doc)
        self._store_disk(key, doc)

    def stats(self) -> dict[str, Any]:
        """Per-instance counters (the ``stats`` server op embeds them)."""
        hits = self.memory_hits + self.disk_hits
        total = hits + self.misses
        return {
            "entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": hits / total if total else 0.0,
            "directory": str(self.directory) if self.directory else None,
        }
