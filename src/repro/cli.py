"""Command-line entry point with subcommands.

::

    repro run <experiment> [--quick] [-o key=value] [--csv PATH]
                           [--trace PATH]
                           [--parallel] [--workers N] [--timeout S]
                           [--retries N] [--run-dir DIR | --resume DIR]
    repro solve <solver> [-o key=value] [--trace PATH]
    repro certify [solvers...] [--quick] [-o key=value] [--tolerance K]
                  [--reference] [--faults key=value]
    repro serve [--host H] [--port P | --stdio] [--run-dir DIR]
                [--max-batch N]
    repro stats <run-dir>
    repro list [experiments|solvers|platforms]
    repro legacy <experiment> ...   (deprecated alias for `run`)

``repro run`` regenerates a table/figure of the paper; ``repro solve``
runs one registered scheduler on a freshly built paper platform and
prints its result plus the thermal-engine instrumentation; ``repro
certify`` sweeps solvers over a small platform grid through the guarded
registry path (:func:`repro.algorithms.registry.guarded_solve`) and
prints every :class:`~repro.safety.certificate.SafetyCertificate` —
exiting 4 if any certificate is rejected, which makes it a CI gate —
``-o platforms=...`` takes any named :class:`~repro.platforms.PlatformSpec`
presets (``paper``, ``big_little``, ``stack3d``, ``tech-16-io``, ...;
see ``repro list platforms``); ``repro serve`` runs the scheduling service
(:mod:`repro.service`): newline-delimited JSON requests over TCP or
stdio, answered through the session-scoped engine LRU, the
content-addressed schedule cache, and the request coalescer;
``repro stats`` summarizes a journaled run directory (unit statuses,
run-level engine counters, certificate tallies, per-span wall-time
table); ``repro list`` enumerates the experiment, solver and platform
registries.  The historical single-positional form
(``repro fig6 --quick``) is retired: a bare experiment id is now an
error, and ``repro legacy fig6 --quick`` keeps the old spelling alive
one release longer behind an explicit :class:`DeprecationWarning`.

``--trace PATH`` streams observability spans (:mod:`repro.obs`) as JSON
Lines: every traced region of the process (experiment, runner, solver
phases) plus — for journaled sweeps — the per-unit span trees recovered
from the journal rows, each tagged with its ``unit_id``.  The per-unit
spans are captured inside the workers and travel in the journal, so the
trace reconciles with ``repro stats`` even across ``--resume``.

Grid experiments (``comparison``, ``fig6``, ``fig7``, ``table5``,
``headline``) execute through the fault-tolerant sharded runner: with
``--parallel`` their work units fan out over worker processes with a
per-unit ``--timeout`` and bounded ``--retries``; with ``--run-dir``
every finished unit is journaled so a crashed or interrupted sweep
continues via ``--resume DIR``, re-running only the missing units.  A
sweep whose units failed terminally still completes (structured error
rows) but exits with status 3.

Option values parse as int, float, bool, or string, and comma-separated
values become tuples (``-o core_counts=2,3``), so grid experiments are
fully drivable from the command line.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]

#: ``repro solve`` option keys consumed by the platform builder rather
#: than the solver.  ``platform`` names a
#: :class:`~repro.platforms.PlatformSpec` preset (default ``paper``);
#: the rest are overrides layered on that spec.
PLATFORM_KEYS = (
    "platform", "n_cores", "n_levels", "t_max_c", "t_ambient_c", "tau",
    "topology",
)


def _parse_scalar(raw: str):
    """Best-effort typed scalar: int, then float, then bool, then str."""
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _parse_option(text: str):
    """Parse a ``key=value`` option with a best-effort typed value.

    Comma-separated values become tuples: ``core_counts=2,3`` ->
    ``("core_counts", (2, 3))``.  A trailing comma forces a 1-tuple
    (``core_counts=9,``).
    """
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"option must be key=value, got {text!r}")
    key, raw = text.split("=", 1)
    if "," in raw:
        parts = [p for p in raw.split(",") if p != ""]
        return key, tuple(_parse_scalar(p) for p in parts)
    return key, _parse_scalar(raw)


def _add_option_argument(parser: argparse.ArgumentParser, target: str) -> None:
    parser.add_argument(
        "--option",
        "-o",
        action="append",
        default=[],
        type=_parse_option,
        metavar="KEY=VALUE",
        help=(
            f"override a {target} keyword argument (repeatable; "
            "comma-separated values become tuples, e.g. -o core_counts=2,3)"
        ),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    what = getattr(args, "what", None)
    if what in (None, "experiments"):
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name:<10s} {EXPERIMENTS[name].description}")
    if what in (None, "solvers"):
        from repro.algorithms.registry import SOLVERS

        print("solvers:")
        for name, spec in SOLVERS.items():
            print(f"  {name:<11s} {spec.description}")
    if what in (None, "platforms"):
        from repro.platforms import get_preset, platform_names

        print("platforms:")
        for name in platform_names():
            print(f"  {name:<12s} {get_preset(name)[1]}")
    return 0


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """Translate the runner CLI flags into experiment keyword arguments."""
    from repro.runner import RunnerConfig, print_progress

    kwargs: dict = {
        "runner": RunnerConfig(
            parallel=bool(args.parallel or args.workers),
            max_workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries if args.retries is not None else 1,
        ),
        "progress": print_progress,
    }
    if args.resume:
        kwargs["run_dir"] = args.resume
        kwargs["resume"] = True
    elif args.run_dir:
        kwargs["run_dir"] = args.run_dir
    return kwargs


def _collect_reports(result) -> list:
    """Find the sharded-runner report(s) attached to an experiment result."""
    grids = []
    if getattr(result, "grid", None) is not None:
        grids.append(result.grid)
    grids.extend(getattr(result, "grids", ()))
    return [g.report for g in grids if getattr(g, "report", None) is not None]


def _open_trace(path: str):
    """Attach a JSONL trace sink to the process tracer (enables tracing)."""
    from repro.obs import TRACER, JsonlSink

    sink = JsonlSink(path)
    TRACER.add_sink(sink)
    return sink


def _close_trace(sink, reports=()) -> int:
    """Detach the sink, splice journaled per-unit spans, snapshot metrics.

    Per-unit spans are captured in isolation inside the workers and travel
    in the journal rows, so this is the single place they reach the trace
    file — tagged with their ``unit_id`` (their span ids are local to the
    emitting unit).  Returns the number of spliced per-unit spans.
    """
    from repro.obs import METRICS, TRACER

    TRACER.remove_sink(sink)
    n_unit_spans = 0
    for report in reports:
        for row in report.records.values():
            for doc in row.get("spans") or ():
                sink.write_doc(
                    dict(
                        doc,
                        unit_id=row.get("unit_id"),
                        unit_label=row.get("label"),
                    )
                )
                n_unit_spans += 1
    sink.write_doc({"metrics": METRICS.snapshot()})
    sink.close()
    return n_unit_spans


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))} (or 'list')",
            file=sys.stderr,
        )
        return 2

    kwargs = dict(args.option)
    spec = EXPERIMENTS[args.experiment]
    runner_flags = (
        args.parallel or args.workers or args.timeout is not None
        or args.retries is not None or args.run_dir or args.resume
    )
    if runner_flags:
        if not spec.accepts_runner:
            runner_capable = sorted(
                n for n, s in EXPERIMENTS.items() if s.accepts_runner
            )
            print(
                f"{args.experiment!r} does not run through the sharded "
                f"runner; runner flags apply to: {', '.join(runner_capable)}",
                file=sys.stderr,
            )
            return 2
        kwargs.update(_runner_kwargs(args))

    t0 = time.perf_counter()
    trace_sink = _open_trace(args.trace) if args.trace else None
    try:
        result = run_experiment(args.experiment, quick=args.quick, **kwargs)
    except BaseException:
        if trace_sink is not None:
            _close_trace(trace_sink)
        raise
    elapsed = time.perf_counter() - t0

    if hasattr(result, "format"):
        print(result.format())
    else:  # pragma: no cover - all experiments define format()
        print(result)

    if args.csv:
        grid = getattr(result, "grid", None)
        source = grid if (grid is not None and hasattr(grid, "to_csv")) else result
        if hasattr(source, "to_csv"):
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(source.to_csv())
            print(f"[data written to {args.csv}]")
        else:
            print(
                f"[--csv ignored: {args.experiment} exposes no tabular data]",
                file=sys.stderr,
            )

    reports = _collect_reports(result)
    for report in reports:
        print(report.summary())

    if trace_sink is not None:
        n_unit_spans = _close_trace(trace_sink, reports)
        print(f"[trace written to {args.trace} ({n_unit_spans} per-unit spans)]")

    print(f"\n[{args.experiment} finished in {elapsed:.1f} s]")
    if any(report.failures for report in reports):
        print(
            "[sweep completed with failed units — see error rows above]",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.algorithms.registry import SOLVERS, get_solver
    from repro.service.session import default_session

    try:
        spec = get_solver(args.solver)
    except KeyError:
        print(
            f"unknown solver {args.solver!r}; known: {', '.join(SOLVERS)}",
            file=sys.stderr,
        )
        return 2

    from repro.errors import ConfigurationError
    from repro.platforms import PlatformSpec

    options = dict(args.option)
    platform_kwargs = {k: options.pop(k) for k in PLATFORM_KEYS if k in options}
    preset = str(platform_kwargs.pop("platform", "paper"))
    try:
        platform_spec = PlatformSpec.named(preset, **platform_kwargs)
    except ConfigurationError as exc:
        print(f"solve: {exc}", file=sys.stderr)
        return 2
    if args.quick:
        for key, value in spec.quick.items():
            options.setdefault(key, value)

    session = default_session()
    trace_sink = _open_trace(args.trace) if args.trace else None
    try:
        outcome = session.solve(
            platform_spec, spec, options,
            margin_policy=getattr(args, "margin_policy", None),
        )
    except Exception as exc:  # surface solver errors as a clean exit code
        print(f"{spec.name} failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_sink is not None:
            _close_trace(trace_sink)

    if outcome.status == "infeasible":
        print(f"{spec.name} failed: {outcome.detail}", file=sys.stderr)
        return 1
    print(outcome.result.summary())
    policy = (outcome.result.details or {}).get("margin_policy")
    if policy:
        applied = "applied" if policy.get("applied") else (
            f"not applied ({policy.get('reason', 'n/a')})"
        )
        print(
            f"margin policy {policy.get('policy')}: {applied}, "
            f"cond={policy.get('condition_number'):.3g}, "
            f"shrink={policy.get('shrink_theta'):.3g} K"
        )
    if outcome.cached:
        print(f"[served from schedule cache {outcome.cache_key}]")
    if outcome.stats is not None:
        print(outcome.stats.format())
    if trace_sink is not None:
        print(f"[trace written to {args.trace}]")
    return 0


#: Default solver set for ``repro certify``: the paper's four
#: comparison approaches.
CERTIFY_DEFAULT_SOLVERS = ("LNS", "EXS", "AO", "PCO")


def _as_tuple(value) -> tuple:
    """Grid options accept a scalar (-o core_counts=3) or a tuple."""
    return value if isinstance(value, tuple) else (value,)


#: Default ``repro certify`` platform flavors; ``-o platforms=...``
#: accepts any :class:`~repro.platforms.PlatformSpec` preset name (see
#: ``repro list platforms``) — certificates' cross-route check then
#: covers heterogeneous, stacked and generated platforms alike.
CERTIFY_PLATFORMS = ("paper", "big_little")


def _certify_platform(flavor: str, n: int, lv: int, tm: float, **kwargs):
    """One certify-grid cell resolved through the platform registry.

    Grid axes (``n_cores``/``n_levels``/``t_max_c``) and the pass-through
    platform kwargs are layered onto the named preset as overrides,
    silently dropping axes a family does not parameterize (``stack3d``
    has no ``n_cores``).
    """
    from repro.platforms import PlatformSpec, get_family

    spec = PlatformSpec.named(str(flavor))
    overrides = {
        "n_cores": int(n), "n_levels": int(lv), "t_max_c": float(tm), **kwargs
    }
    params = get_family(spec.family).params
    return spec.with_overrides(
        **{k: v for k, v in overrides.items() if k in params}
    ).build()


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.algorithms.registry import SOLVERS, get_solver, guarded_solve
    from repro.errors import ConfigurationError, InfeasibleError
    from repro.safety.certificate import certify_grid
    from repro.safety.faults import FaultSpec, stuck_schedule
    from repro.service.session import default_session

    names = args.solvers or list(CERTIFY_DEFAULT_SOLVERS)
    specs = []
    for name in names:
        try:
            specs.append(get_solver(name))
        except KeyError:
            print(
                f"unknown solver {name!r}; known: {', '.join(SOLVERS)}",
                file=sys.stderr,
            )
            return 2

    options = dict(args.option)
    core_counts = _as_tuple(options.pop("core_counts", (2, 3)))
    level_counts = _as_tuple(options.pop("level_counts", (2,)))
    t_max_values = _as_tuple(options.pop("t_max_values", (65.0,)))
    platforms = _as_tuple(options.pop("platforms", ("paper",)))
    from repro.platforms import PlatformSpec

    for flavor in platforms:
        try:
            PlatformSpec.named(str(flavor))
        except ConfigurationError as exc:
            print(
                f"certify: unknown platform flavor {flavor!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    platform_kwargs = {
        k: options.pop(k)
        for k in ("t_ambient_c", "tau", "topology")
        if k in options
    }
    session = default_session()

    faults = None
    if args.faults:
        try:
            faults = FaultSpec.from_dict(dict(args.faults))
        except ConfigurationError as exc:
            print(f"certify: {exc}", file=sys.stderr)
            return 2

    # Pass 1 — solve the whole sweep, collecting rows; the expensive
    # re-derivations (--reference recertification, --faults perturbed
    # peaks) are deferred so they can run grid-batched across platforms.
    cells = [
        (n, lv, tm, str(flavor))
        for n in core_counts
        for lv in level_counts
        for tm in t_max_values
        for flavor in platforms
    ]
    entries: list[dict] = []
    for n, lv, tm, flavor in cells:
        engine = session.engine_for(
            _certify_platform(flavor, int(n), int(lv), float(tm), **platform_kwargs)
        )
        suffix = "" if flavor == "paper" else f" [{flavor}]"
        header = f"platform: {n} cores, {lv} levels, T_max {tm} C{suffix}"
        for spec in specs:
            kwargs = {
                k: v for k, v in options.items() if k in spec.params
            }
            if args.quick:
                for key, value in spec.quick.items():
                    kwargs.setdefault(key, value)
            entry: dict = {
                "header": header, "engine": engine, "spec": spec,
            }
            try:
                result = guarded_solve(
                    spec, engine,
                    certify_tolerance=args.tolerance, **kwargs,
                )
            except InfeasibleError as exc:
                entry["infeasible"] = str(exc)
            else:
                entry["result"] = result
                entry["cert"] = result.certificate
            entries.append(entry)

    solved = [e for e in entries if "result" in e]

    # Pass 2 — LSODA-backed recertification of every real schedule in one
    # certify_grid call (the analytic routes evaluate as a single grid;
    # the oracle runs scalar with adaptive density).
    if args.reference:
        recert = [
            e for e in solved if e["spec"].schedule_is_artifact
        ]
        cert_kwargs = (
            {} if args.tolerance is None else {"tolerance": args.tolerance}
        )
        certs = certify_grid(
            [
                (
                    e["engine"],
                    e["result"].schedule,
                    {
                        "claimed_peak": e["result"].peak_theta,
                        "claimed_feasible": e["result"].feasible,
                        "claimed_throughput": e["result"].throughput,
                    },
                )
                for e in recert
            ],
            reference=True,
            **cert_kwargs,
        )
        for e, cert in zip(recert, certs):
            e["cert"] = cert

    # Pass 3 — perturbed peaks for every real schedule in one grid call.
    if faults is not None:
        from repro.thermal.grid import peak_temperature_grid

        faulted = [e for e in solved if e["spec"].schedule_is_artifact]
        if faulted:
            results = peak_temperature_grid(
                [
                    (
                        e["engine"].model,
                        stuck_schedule(
                            e["result"].schedule, e["engine"].ladder, faults
                        ),
                    )
                    for e in faulted
                ],
                stepup_fast_path=False,
            )
            for e, res in zip(faulted, results):
                e["faulted_peak"] = float(res.value + faults.ambient_drift_k)

    # Pass 4 — report in sweep order.
    certified = rejected = fallbacks = 0
    last_header = None
    for entry in entries:
        if entry["header"] != last_header:
            print(entry["header"])
            last_header = entry["header"]
        spec = entry["spec"]
        if "infeasible" in entry:
            print(f"  {spec.name}: infeasible ({entry['infeasible']})")
            continue
        result, cert = entry["result"], entry["cert"]
        certified += 1
        print(f"  {spec.name}: {cert.summary()}")
        fallback = (result.details or {}).get("fallback")
        if fallback:
            fallbacks += 1
            print(
                f"    degraded via fallback hop "
                f"{fallback['hop']!r} ({fallback['failure']})"
            )
        if not cert.accepted:
            rejected += 1
        if "faulted_peak" in entry:
            peak = entry["faulted_peak"]
            margin = entry["engine"].theta_max - peak
            print(
                f"    under faults: peak {peak:.4f} K, "
                f"margin {margin:+.4f} K"
            )
    print(
        f"\n[{certified} certificate(s): {certified - rejected} accepted, "
        f"{rejected} rejected, {fallbacks} via fallback]"
    )
    return 4 if rejected else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ScheduleServer

    server = ScheduleServer(
        host=args.host,
        port=args.port,
        run_dir=args.run_dir,
        max_batch=args.max_batch,
    )
    if args.stdio:
        asyncio.run(server.serve_stdio())
    else:

        async def _run() -> None:
            host, port = await server.start()
            # Machine-readable first line: smoke scripts parse the port.
            print(f"serving on {host}:{port}", flush=True)
            await server.serve_until_shutdown()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
    stats = server.service_stats()
    print(
        f"[served {stats['served']} request(s), {stats['failed']} failed, "
        f"{stats['coalescer']['coalesced_batches']} coalesced batch(es)]"
    )
    if args.run_dir:
        print(f"[journal written to {args.run_dir} — see 'repro stats']")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.errors import RunnerError
    from repro.obs import run_dir_summary

    try:
        summary = run_dir_summary(args.run_dir)
    except RunnerError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    print(summary.format())
    return 0


def _cmd_legacy(args: argparse.Namespace) -> int:
    warnings.warn(
        "the bare `repro <experiment>` form is deprecated; "
        "use `repro run <experiment>`",
        DeprecationWarning,
        stacklevel=2,
    )
    print(
        "[deprecated: `repro legacy` is an alias for `repro run` and will "
        "be removed; switch to `repro run`]",
        file=sys.stderr,
    )
    return _cmd_run(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Performance Maximization "
            "via Frequency Oscillation on Temperature Constrained Multi-core "
            "Processors' (ICPP 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    def add_run_arguments(p_run: argparse.ArgumentParser) -> None:
        p_run.add_argument("experiment", help="experiment id (see 'repro list')")
        p_run.add_argument(
            "--quick",
            action="store_true",
            help="run a scale-reduced version (seconds instead of minutes)",
        )
        _add_option_argument(p_run, "experiment")
        p_run.add_argument(
            "--csv",
            metavar="PATH",
            help=(
                "additionally write the result grid as CSV "
                "(experiments exposing a grid only)"
            ),
        )
        p_run.add_argument(
            "--trace",
            metavar="PATH",
            help=(
                "stream observability spans to PATH as JSON Lines "
                "(includes per-unit spans recovered from the journal)"
            ),
        )
        runner_group = p_run.add_argument_group(
            "sharded runner (grid experiments only)"
        )
        runner_group.add_argument(
            "--parallel",
            action="store_true",
            help="fan work units out over worker processes",
        )
        runner_group.add_argument(
            "--workers",
            type=int,
            metavar="N",
            help="worker process count (implies --parallel; default: CPU count)",
        )
        runner_group.add_argument(
            "--timeout",
            type=float,
            metavar="S",
            help="per-unit wall-clock deadline in seconds (parallel mode)",
        )
        runner_group.add_argument(
            "--retries",
            type=int,
            metavar="N",
            help="retries per failed unit before its error row is final (default 1)",
        )
        runner_group.add_argument(
            "--run-dir",
            metavar="DIR",
            help="journal finished units into DIR (enables later --resume)",
        )
        runner_group.add_argument(
            "--resume",
            metavar="DIR",
            help="continue an interrupted run from DIR, re-running only missing units",
        )

    p_run = sub.add_parser("run", help="regenerate one table/figure of the paper")
    add_run_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_legacy = sub.add_parser(
        "legacy",
        help="deprecated alias for 'run' (the historical bare-experiment form)",
    )
    add_run_arguments(p_legacy)
    p_legacy.set_defaults(func=_cmd_legacy)

    p_solve = sub.add_parser(
        "solve", help="run one registered scheduler on a paper platform"
    )
    p_solve.add_argument("solver", help="solver name (see 'repro list')")
    p_solve.add_argument(
        "--quick",
        action="store_true",
        help="apply the solver's scale-reduced preset",
    )
    _add_option_argument(p_solve, "solver or platform")
    p_solve.add_argument(
        "--trace",
        metavar="PATH",
        help="stream the solver's observability spans to PATH as JSON Lines",
    )
    p_solve.add_argument(
        "--margin-policy",
        choices=("off", "shrink"),
        default="off",
        help=(
            "'shrink' re-solves against a T_max tightened by the "
            "certificate's reference-route disagreement on "
            "ill-conditioned platforms"
        ),
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_cert = sub.add_parser(
        "certify",
        help="independently certify solver schedules over a platform grid",
    )
    p_cert.add_argument(
        "solvers",
        nargs="*",
        help=(
            "solver names to certify "
            f"(default: {' '.join(CERTIFY_DEFAULT_SOLVERS)})"
        ),
    )
    p_cert.add_argument(
        "--quick",
        action="store_true",
        help="apply each solver's scale-reduced preset",
    )
    _add_option_argument(p_cert, "solver, platform, or grid")
    p_cert.add_argument(
        "--tolerance",
        type=float,
        metavar="K",
        help="max disagreement (K) between certification routes before rejection",
    )
    p_cert.add_argument(
        "--reference",
        action="store_true",
        help="add the LSODA ODE reference oracle as a certification route (slow)",
    )
    p_cert.add_argument(
        "--faults",
        action="append",
        default=[],
        type=_parse_option,
        metavar="KEY=VALUE",
        help=(
            "also report each certified schedule's margin under an injected "
            "fault scenario (repeatable; e.g. --faults stuck_core=0 "
            "--faults ambient_drift_k=2)"
        ),
    )
    p_cert.set_defaults(func=_cmd_certify)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "serve solve/evaluate/certify requests as newline-delimited "
            "JSON (TCP or --stdio), with request coalescing and the "
            "schedule cache"
        ),
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed)",
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin/stdout instead of TCP (one request per line)",
    )
    p_serve.add_argument(
        "--run-dir",
        metavar="DIR",
        help="journal served requests into DIR (readable by 'repro stats')",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="largest coalesced batch drained in one pass (default 256)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="summarize a journaled run directory (spans + counters)"
    )
    p_stats.add_argument("run_dir", help="run directory (the --run-dir of a sweep)")
    p_stats.set_defaults(func=_cmd_stats)

    p_list = sub.add_parser(
        "list", help="enumerate the experiment, solver and platform registries"
    )
    p_list.add_argument(
        "what",
        nargs="?",
        choices=("experiments", "solvers", "platforms"),
        help="restrict the listing to one registry (default: all)",
    )
    p_list.set_defaults(func=_cmd_list)

    argv = list(sys.argv[1:] if argv is None else argv)
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
