"""Command-line entry point: ``repro <experiment-id> [options]``.

Regenerates any table/figure of the paper from the terminal::

    repro table2
    repro fig6 --quick
    repro fig3 --option step=0.5
    repro list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]

#: Scale-reduced keyword arguments per experiment for --quick runs.
QUICK_ARGS: dict[str, dict] = {
    "table2": {},
    "table3": {"periods": (0.020, 0.010)},
    "fig2": {},
    "fig3": {"step": 1.0, "grid_per_interval": 24},
    "fig4": {"warmup_periods": 4, "samples_per_interval": 8},
    "fig5": {"m_max": 5},
    "fig6": {"core_counts": (2, 3), "level_counts": (2, 3), "m_cap": 16},
    "fig7": {"core_counts": (2, 3), "t_max_values": (55.0, 65.0), "m_cap": 16},
    "table5": {"core_counts": (2, 3), "level_counts": (2, 3), "m_cap": 16},
    "headline": {"core_counts": (2, 3), "level_counts": (2, 3),
                 "t_max_values": (55.0, 65.0), "m_cap": 16},
    "tsp": {"core_counts": (2, 3), "m_cap": 16},
    "reactive": {"guard_bands": (0.0, 3.0), "m_cap": 16},
}


def _parse_option(text: str):
    """Parse a ``key=value`` option with a best-effort typed value."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"option must be key=value, got {text!r}")
    key, raw = text.split("=", 1)
    for caster in (int, float):
        try:
            return key, caster(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return key, raw.lower() == "true"
    return key, raw


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Performance Maximization "
            "via Frequency Oscillation on Temperature Constrained Multi-core "
            "Processors' (ICPP 2016)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (or 'list' to enumerate available experiments)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a scale-reduced version (seconds instead of minutes)",
    )
    parser.add_argument(
        "--option",
        "-o",
        action="append",
        default=[],
        type=_parse_option,
        metavar="KEY=VALUE",
        help="override an experiment keyword argument (repeatable)",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help=(
            "additionally write the result grid as CSV "
            "(experiments exposing a grid only)"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))} (or 'list')",
            file=sys.stderr,
        )
        return 2

    kwargs = dict(QUICK_ARGS.get(args.experiment, {})) if args.quick else {}
    kwargs.update(dict(args.option))

    t0 = time.perf_counter()
    result = run_experiment(args.experiment, **kwargs)
    elapsed = time.perf_counter() - t0

    if hasattr(result, "format"):
        print(result.format())
    else:  # pragma: no cover - all experiments define format()
        print(result)

    if args.csv:
        grid = getattr(result, "grid", None)
        source = grid if (grid is not None and hasattr(grid, "to_csv")) else result
        if hasattr(source, "to_csv"):
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(source.to_csv())
            print(f"[data written to {args.csv}]")
        else:
            print(
                f"[--csv ignored: {args.experiment} exposes no tabular data]",
                file=sys.stderr,
            )

    print(f"\n[{args.experiment} finished in {elapsed:.1f} s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
