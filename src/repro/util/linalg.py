"""Linear-algebra helpers for the thermal engine.

The thermal system matrix ``A = -C^{-1} (G - E_beta)`` is similar to a
symmetric negative-definite matrix via the congruence ``C^{1/2}``, so its
eigenvalues are real and negative and it admits a well-conditioned real
eigendecomposition.  :class:`EigenExpm` exploits this: one O(n^3)
symmetric eigendecomposition at construction, then every
``expm(A * t) @ x`` costs two dense mat-vecs.

All solves go through :func:`solve_linear` (LU with a conditioning check)
— we never form explicit inverses, per standard numerical practice.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import scipy.linalg

from repro.errors import ThermalModelError

__all__ = [
    "EigenExpm",
    "solve_linear",
    "spectral_abscissa",
    "is_symmetric",
    "is_positive_definite",
]

#: Default absolute tolerance for symmetry / definiteness checks.
DEFAULT_ATOL = 1e-9


def is_symmetric(mat: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return True when ``mat`` equals its transpose within ``atol``."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    return bool(np.allclose(mat, mat.T, atol=atol, rtol=0.0))


def is_positive_definite(mat: np.ndarray, rtol: float = 1e-10) -> bool:
    """Return True when symmetric ``mat`` is (robustly) positive definite.

    Uses the symmetric eigenvalues with a relative floor: LAPACK's Cholesky
    can slip through exactly-singular matrices on rounding fuzz, and a
    numerically singular conductance matrix means an ungrounded network.
    """
    mat = np.asarray(mat, dtype=float)
    eigs = scipy.linalg.eigvalsh(mat)
    scale = float(np.abs(eigs).max()) if eigs.size else 0.0
    return bool(eigs.size and eigs.min() > rtol * max(scale, 1e-300))


def solve_linear(mat: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``mat @ x = rhs`` with an explicit singularity check.

    Raises
    ------
    ThermalModelError
        If the matrix is (numerically) singular.
    """
    mat = np.asarray(mat, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    try:
        return scipy.linalg.solve(mat, rhs)
    except scipy.linalg.LinAlgError as exc:
        raise ThermalModelError(f"singular linear system: {exc}") from exc


def spectral_abscissa(mat: np.ndarray) -> float:
    """Largest real part among the eigenvalues of ``mat``.

    Negative spectral abscissa <=> the LTI system ``dx/dt = mat @ x`` is
    asymptotically stable.
    """
    return float(np.max(np.real(np.linalg.eigvals(np.asarray(mat, dtype=float)))))


class EigenExpm:
    """Cached eigendecomposition of a C-symmetrizable Hurwitz matrix.

    Parameters
    ----------
    a:
        System matrix, ``a = -C^{-1} S`` with ``C`` diagonal positive and
        ``S`` symmetric positive definite.  Such a matrix has real negative
        eigenvalues.
    c_diag:
        The diagonal of ``C``.  When given, the decomposition is computed
        through the symmetric matrix ``C^{-1/2} S C^{-1/2}`` (via ``eigh``),
        which is both faster and numerically far better conditioned than a
        general eigensolve.  When omitted, a general ``eig`` is used and the
        realness of the spectrum is verified.

    Notes
    -----
    With ``A = W diag(lam) W^{-1}``::

        expm(A t) @ x = W @ (exp(lam * t) * (W^{-1} @ x))

    so after the one-time O(n^3) setup, each propagation costs O(n^2).

    Dense ``expm(A t)`` matrices requested through :meth:`expm_cached` are
    memoized per interval length (LRU): schedule solvers re-use the same
    handful of interval durations thousands of times inside optimizer
    loops.
    """

    #: Capacity of the per-instance interval-keyed ``expm`` LRU cache.
    EXPM_CACHE_SIZE = 512

    def __init__(self, a: np.ndarray, c_diag: np.ndarray | None = None) -> None:
        a = np.asarray(a, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ThermalModelError(f"system matrix must be square, got {a.shape}")
        self.a = a
        n = a.shape[0]

        if c_diag is not None:
            c_diag = np.asarray(c_diag, dtype=float)
            if c_diag.shape != (n,) or np.any(c_diag <= 0):
                raise ThermalModelError("c_diag must be positive with length n")
            # A = -C^{-1} S  =>  C^{1/2} A C^{-1/2} = -C^{-1/2} S C^{-1/2} (symmetric)
            sqrt_c = np.sqrt(c_diag)
            sym = a * sqrt_c[:, None] / sqrt_c[None, :]
            sym = 0.5 * (sym + sym.T)
            lam, q = scipy.linalg.eigh(sym)
            self.eigenvalues = lam
            self.w = q / sqrt_c[:, None]
            self.w_inv = q.T * sqrt_c[None, :]
        else:
            lam, w = scipy.linalg.eig(a)
            if np.max(np.abs(np.imag(lam))) > 1e-8 * max(1.0, np.max(np.abs(lam))):
                raise ThermalModelError(
                    "system matrix has significantly complex eigenvalues; "
                    "expected a symmetrizable RC system"
                )
            order = np.argsort(np.real(lam))
            self.eigenvalues = np.real(lam)[order]
            self.w = np.real(w)[:, order]
            self.w_inv = scipy.linalg.inv(self.w)

        if np.any(self.eigenvalues >= 0):
            raise ThermalModelError(
                "system matrix is not Hurwitz "
                f"(max eigenvalue {np.max(self.eigenvalues):.3e} >= 0)"
            )

        self._init_runtime_state()

    def _init_runtime_state(self) -> None:
        """Per-instance caches and counters (never shared across instances)."""
        self._expm_cache: OrderedDict[float, np.ndarray] = OrderedDict()
        #: Instrumentation: vector propagations through ``expm(A t)``
        #: (scalar applications count 1, batched ones count per row).
        self.expm_applications = 0
        #: Instrumentation: dense propagators served from the LRU.
        self.expm_cache_hits = 0

    def factors(self) -> dict[str, np.ndarray]:
        """The serializable decomposition factors ``(A, lam, W, W^{-1})``.

        This is what the process-shared eigenbasis cache persists
        (:mod:`repro.util.eigcache`); :meth:`from_factors` is the inverse.
        """
        return {
            "a": self.a,
            "eigenvalues": self.eigenvalues,
            "w": self.w,
            "w_inv": self.w_inv,
        }

    @classmethod
    def from_factors(
        cls,
        a: np.ndarray,
        eigenvalues: np.ndarray,
        w: np.ndarray,
        w_inv: np.ndarray,
    ) -> "EigenExpm":
        """Rebuild an instance from cached factors, skipping the O(n^3) eigh.

        Shapes and the Hurwitz property are re-validated (cheap), but the
        factorization itself is trusted — callers must only feed factors
        produced by :meth:`factors` for the *same* matrix (the eigenbasis
        cache guarantees this by content-hashing ``a``).  The returned
        instance has fresh counters and an empty ``expm`` LRU; the factor
        arrays themselves may be shared read-only across instances.
        """
        a = np.asarray(a, dtype=float)
        eigenvalues = np.asarray(eigenvalues, dtype=float)
        w = np.asarray(w, dtype=float)
        w_inv = np.asarray(w_inv, dtype=float)
        n = a.shape[0] if a.ndim == 2 else -1
        if a.ndim != 2 or a.shape != (n, n):
            raise ThermalModelError(f"system matrix must be square, got {a.shape}")
        if eigenvalues.shape != (n,) or w.shape != (n, n) or w_inv.shape != (n, n):
            raise ThermalModelError(
                "inconsistent eigen factors: "
                f"lam {eigenvalues.shape}, W {w.shape}, W^-1 {w_inv.shape} "
                f"for an {n}x{n} system"
            )
        if eigenvalues.size and np.max(eigenvalues) >= 0:
            raise ThermalModelError(
                "cached factors are not Hurwitz "
                f"(max eigenvalue {np.max(eigenvalues):.3e} >= 0)"
            )
        obj = cls.__new__(cls)
        obj.a = a
        obj.eigenvalues = eigenvalues
        obj.w = w
        obj.w_inv = w_inv
        obj._init_runtime_state()
        return obj

    @property
    def n(self) -> int:
        """Dimension of the system."""
        return self.a.shape[0]

    def expm(self, t: float) -> np.ndarray:
        """Dense ``expm(A t)`` (O(n^2) given the cached decomposition)."""
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        self.expm_applications += 1
        return (self.w * np.exp(self.eigenvalues * t)[None, :]) @ self.w_inv

    def expm_cached(self, t: float) -> np.ndarray:
        """LRU-memoized :meth:`expm` keyed by the interval length ``t``.

        Returns a shared read-only array; callers must not mutate it.
        """
        key = float(t)
        cached = self._expm_cache.get(key)
        if cached is not None:
            self.expm_cache_hits += 1
            self._expm_cache.move_to_end(key)
            return cached
        mat = self.expm(key)
        mat.setflags(write=False)
        if len(self._expm_cache) >= self.EXPM_CACHE_SIZE:
            self._expm_cache.popitem(last=False)
        self._expm_cache[key] = mat
        return mat

    def apply_expm(self, t: float, x: np.ndarray) -> np.ndarray:
        """Compute ``expm(A t) @ x`` without forming the matrix."""
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        self.expm_applications += 1
        coeff = self.w_inv @ np.asarray(x, dtype=float)
        return self.w @ (np.exp(self.eigenvalues * t) * coeff)

    def apply_expm_many(self, times: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``expm(A * times[j]) @ x[j]`` for stacked inputs.

        Unlike :meth:`propagate_batch` (one state, many times), this pairs
        the j-th time with the j-th state vector — the shape the batched
        schedule engine needs when K candidate schedules each carry their
        own interval lengths.

        Parameters
        ----------
        times:
            ``(k,)`` non-negative propagation times.
        x:
            ``(k, n)`` stacked state vectors.

        Returns
        -------
        ``(k, n)`` with row j equal to ``expm(A * times[j]) @ x[j]``.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape != (times.shape[0], self.n):
            raise ThermalModelError(
                f"x must be (len(times), {self.n}) = ({times.shape[0]}, {self.n}), "
                f"got {x.shape}"
            )
        if times.size and times.min() < 0:
            raise ValueError(f"times must be non-negative, got min {times.min()}")
        self.expm_applications += times.shape[0]
        coeff = x @ self.w_inv.T  # (k, n) eigenbasis coordinates
        coeff *= np.exp(times[:, None] * self.eigenvalues[None, :])
        return coeff @ self.w.T

    def modal_coefficients(self, x: np.ndarray) -> np.ndarray:
        """Return ``R`` with ``(expm(A t) x)_i = sum_k R[i,k] exp(lam_k t)``."""
        coeff = self.w_inv @ np.asarray(x, dtype=float)
        return self.w * coeff[None, :]

    def propagate_batch(self, times: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``expm(A t) @ x`` for every t in ``times``.

        Returns an array of shape ``(len(times), n)``.  Vectorized over the
        time grid — this is the hot path of dense peak searches.
        """
        times = np.asarray(times, dtype=float)
        self.expm_applications += times.shape[0] if times.ndim else 1
        coeff = self.w_inv @ np.asarray(x, dtype=float)
        # exp_matrix[t, k] = exp(lam_k * times[t])
        exp_matrix = np.exp(np.outer(times, self.eigenvalues))
        return (exp_matrix * coeff[None, :]) @ self.w.T
