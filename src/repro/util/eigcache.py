"""Process-shared, content-keyed cache of eigenbasis factors.

Every :class:`~repro.thermal.model.ThermalModel` pays one O(n^3)
symmetric eigendecomposition when its ``eigen`` property first resolves.
The sweeps built on the sharded runner construct the *same* platforms
over and over — one fresh model per work unit, one unit per worker
process — so identical decompositions are recomputed dozens of times per
run.  This module memoizes the factors ``(lam, W, W^{-1})`` behind a
content hash of the system matrix, with two layers:

* an **in-process dict** — hits are free, and worker processes forked
  from a warm parent inherit it;
* a **shared on-disk directory** — serialized ``.npz`` factor files
  written atomically (write-to-temp then ``os.replace``), so concurrent
  sharded-runner workers deduplicate work across process boundaries.
  The directory reuses the runner's content-hash discipline: the file
  name *is* the identity, and a raced double-write is harmless because
  both writers produce the same bytes.

Keys cover the full float64 bytes of ``A`` (and ``c_diag``), so two
platforms share an entry only when their thermal systems are bitwise
identical — which is exactly the case for the comparison grid, where
cells differ in ``n_levels`` / ``t_max_c`` but share the RC network.

Configuration (environment):

* ``REPRO_EIG_CACHE_DIR`` — override the shared directory (default:
  ``$TMPDIR/repro-eigcache-<uid>``).
* ``REPRO_EIG_CACHE=0`` — disable the disk layer (the in-process layer
  always runs; it cannot produce stale results by construction).

Hits and misses are counted in :data:`repro.obs.METRICS` (``eigcache.*``)
and per-model (:attr:`ThermalModel.eig_cache_hits`), from where they flow
into :class:`~repro.engine.EngineStats` and journal rows so ``repro
stats`` can aggregate one truthful hit rate per run via
``EngineStats.combine``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.obs import METRICS
from repro.util.linalg import EigenExpm

__all__ = [
    "eigen_cache_key",
    "eigen_cache_dir",
    "shared_eigen",
    "clear_memory_cache",
]

#: In-process layer: key -> factor dict (read-only arrays).
_MEMORY: dict[str, dict[str, np.ndarray]] = {}

#: Bound on the in-process layer; platforms are small and sweeps touch a
#: handful of them, so this is a leak guard, not a working-set limit.
MEMORY_CACHE_SIZE = 256


def eigen_cache_key(a: np.ndarray, c_diag: np.ndarray | None = None) -> str:
    """Content hash identifying one system matrix (and its C diagonal)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(a, dtype=float).tobytes())
    h.update(b"|")
    if c_diag is not None:
        h.update(np.ascontiguousarray(c_diag, dtype=float).tobytes())
    return h.hexdigest()[:32]


def eigen_cache_dir() -> Path | None:
    """The shared directory, or ``None`` when the disk layer is disabled."""
    if os.environ.get("REPRO_EIG_CACHE", "").strip() == "0":
        return None
    override = os.environ.get("REPRO_EIG_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-eigcache-{uid}"


def clear_memory_cache() -> None:
    """Drop the in-process layer (tests; the disk layer is content-keyed)."""
    _MEMORY.clear()


def _remember(key: str, factors: dict[str, np.ndarray]) -> None:
    for arr in factors.values():
        arr.setflags(write=False)
    if len(_MEMORY) >= MEMORY_CACHE_SIZE:
        _MEMORY.pop(next(iter(_MEMORY)))
    _MEMORY[key] = factors


def _load_disk(path: Path, a: np.ndarray) -> dict[str, np.ndarray] | None:
    """Load one factor file, verifying it matches the requested matrix.

    Any failure — missing file, truncated write from a dead worker, a
    matrix mismatch — degrades to a miss rather than an error.
    """
    try:
        with np.load(path) as npz:
            factors = {name: np.array(npz[name]) for name in
                       ("a", "eigenvalues", "w", "w_inv")}
    except (OSError, KeyError, ValueError):
        return None
    if factors["a"].shape != a.shape or not np.array_equal(factors["a"], a):
        return None
    return factors


def _store_disk(path: Path, factors: dict[str, np.ndarray]) -> None:
    """Atomic write: temp file in the same directory, then ``os.replace``."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **factors)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        # A read-only or full cache directory must never fail the solve.
        METRICS.counter("eigcache.disk_write_errors").inc()


def shared_eigen(
    a: np.ndarray,
    c_diag: np.ndarray | None = None,
) -> tuple[EigenExpm, str]:
    """Resolve the eigendecomposition of ``a`` through the shared cache.

    Returns ``(eigen, origin)`` with ``origin`` one of ``"memory"``,
    ``"disk"`` or ``"miss"``.  The returned :class:`EigenExpm` is a fresh
    instance (own counters, own expm LRU) wrapping possibly shared
    read-only factor arrays.
    """
    a = np.asarray(a, dtype=float)
    key = eigen_cache_key(a, c_diag)

    factors = _MEMORY.get(key)
    if factors is not None:
        METRICS.counter("eigcache.memory_hits").inc()
        return EigenExpm.from_factors(**factors), "memory"

    directory = eigen_cache_dir()
    path = directory / f"{key}.npz" if directory is not None else None
    if path is not None:
        factors = _load_disk(path, a)
        if factors is not None:
            METRICS.counter("eigcache.disk_hits").inc()
            _remember(key, factors)
            return EigenExpm.from_factors(**factors), "disk"

    METRICS.counter("eigcache.misses").inc()
    eigen = EigenExpm(a, c_diag=c_diag)
    factors = {name: np.array(arr) for name, arr in eigen.factors().items()}
    _remember(key, factors)
    if path is not None:
        _store_disk(path, factors)
    return eigen, "miss"
