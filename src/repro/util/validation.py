"""Small argument-validation helpers used across the package.

These keep error messages uniform and catch shape/NaN bugs at API
boundaries instead of deep inside linear algebra calls.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_1d_float",
    "as_2d_float",
    "check_finite",
    "check_positive",
    "check_in_range",
]


def as_1d_float(x, name: str, length: int | None = None) -> np.ndarray:
    """Coerce to a 1-D float array, optionally enforcing a length."""
    arr = np.atleast_1d(np.asarray(x, dtype=float))
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr


def as_2d_float(x, name: str, shape: tuple[int, int] | None = None) -> np.ndarray:
    """Coerce to a 2-D float array, optionally enforcing a shape."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None and arr.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def check_finite(x: np.ndarray, name: str) -> np.ndarray:
    """Raise ValueError if ``x`` contains NaN or infinity."""
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains non-finite values")
    return x


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Raise ValueError unless ``value`` is positive (or non-negative)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value: float, name: str, lo: float, hi: float) -> float:
    """Raise ValueError unless ``lo <= value <= hi``."""
    value = float(value)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value
