"""Shared numerical and validation utilities."""

from repro.util.linalg import (
    EigenExpm,
    solve_linear,
    spectral_abscissa,
    is_symmetric,
    is_positive_definite,
)
from repro.util.validation import (
    as_1d_float,
    as_2d_float,
    check_finite,
    check_positive,
    check_in_range,
)

__all__ = [
    "EigenExpm",
    "solve_linear",
    "spectral_abscissa",
    "is_symmetric",
    "is_positive_definite",
    "as_1d_float",
    "as_2d_float",
    "check_finite",
    "check_positive",
    "check_in_range",
]
