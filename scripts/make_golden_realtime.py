#!/usr/bin/env python
"""Regenerate the golden real-time scheduling scenarios under tests/data/.

The committed documents pin the full realtime pipeline — workload draw,
margin-aware placement, backup-window sizing, fault-injected closed-loop
execution, recovery accounting — to 1e-9, so a scheduler or recovery
refactor that silently changes placements or trajectories fails
``tests/test_realtime.py::test_golden_realtime_replays`` instead of
shipping.

Regenerating is a deliberate act: run this script only when a behaviour
change is *intended*, review the diff, and say so in the changelog.

Usage::

    PYTHONPATH=src python scripts/make_golden_realtime.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.realtime import FrameWorkload, plan_frames, simulate_recovery

OUT = Path(__file__).resolve().parents[1] / "tests" / "data"


def paper3_platform():
    from repro.platform import paper_platform

    return paper_platform(3, n_levels=4, t_max_c=60.0)


def big_little_platform():
    from repro.platform import paper_platform
    from repro.power.heterogeneous import big_little_power_model

    return paper_platform(
        6,
        n_levels=2,
        t_max_c=65.0,
        power=big_little_power_model(big_cores=[0, 1, 2], n_cores=6),
    )


#: The canonical cases:
#: (case id, platform builder, workload kwargs, k, policy, failures).
CASES = (
    (
        "margin_paper3_permanent",
        paper3_platform,
        {"n_tasks": 6, "total_utilization": 0.9, "frame_s": 0.02,
         "rng": 11, "max_task_utilization": 0.5},
        1,
        "margin",
        [{"core": 0, "at_fraction": 0.4, "kind": "permanent"}],
    ),
    (
        "margin_big_little_transient",
        big_little_platform,
        {"n_tasks": 8, "total_utilization": 0.8, "frame_s": 0.02,
         "rng": 23, "max_task_utilization": 0.5},
        2,
        "margin",
        [
            {"core": 1, "at_fraction": 0.3, "kind": "transient",
             "duration_fraction": 0.25},
            {"core": 4, "at_fraction": 0.55, "kind": "permanent"},
        ],
    ),
)


def main() -> None:
    docs = []
    for case, builder, wl_kwargs, k, policy, failures in CASES:
        platform = builder()
        workload = FrameWorkload.random(**wl_kwargs)
        placement = plan_frames(platform, workload, k=k, policy=policy)
        report = simulate_recovery(
            platform,
            placement,
            {"core_failures": failures},
            n_frames=8,
            steps_per_frame=8,
        )
        docs.append(
            {
                "case": case,
                "workload_kwargs": {
                    key: v for key, v in wl_kwargs.items()
                },
                "k": k,
                "policy": policy,
                "failures": failures,
                "placement": placement.as_dict(),
                "recovery": report.as_dict(),
                "trace_times": [float(t) for t in report.trace.times],
                "trace_levels": [
                    [float(v) for v in row] for row in report.trace.levels
                ],
                "trace_peak_theta": float(report.trace.peak_theta),
            }
        )
    out = OUT / "golden_realtime.json"
    out.write_text(json.dumps(docs, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(docs)} cases)")


if __name__ == "__main__":
    main()
