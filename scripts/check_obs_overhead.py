#!/usr/bin/env python3
"""CI gate: the disabled observability path must cost < 2% of a solve.

The spans in :mod:`repro.obs` are compiled into every hot path
permanently — the design bet is that with no sink attached, a
``span(...)`` call is one attribute load plus returning a shared no-op
context manager, cheap enough to ignore.  This script prices that bet:

1. microbenchmark the disabled ``span()`` round-trip (enter + exit);
2. run a representative solve (AO on the 3-core paper platform) with a
   sink attached and count how many spans it opens;
3. time the same solve with tracing disabled.

The gate fails (exit 1) if ``span_cost x span_count`` exceeds
``THRESHOLD`` (2%) of the disabled solve's wall time.  This deliberately
measures the *ratio*, not absolute times, so it is stable across
machine speeds.

Usage: PYTHONPATH=src python scripts/check_obs_overhead.py
"""

from __future__ import annotations

import sys
import time
import timeit
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

THRESHOLD = 0.02  # 2%
SOLVE_REPEATS = 3


def disabled_span_cost_s() -> float:
    """Seconds per disabled span() enter/exit round-trip (best of 5)."""
    from repro.obs import TRACER, span

    assert not TRACER.enabled, "tracer must be disabled for this measurement"

    def probe() -> None:
        with span("overhead/probe", k=1):
            pass

    timer = timeit.Timer(probe)
    number = 20_000
    return min(timer.repeat(repeat=5, number=number)) / number


def representative_solve():
    """One AO solve on the paper's 3-core platform (the Fig. 6 cell)."""
    from repro import load_platform, solve

    platform = load_platform(n_cores=3, n_levels=2, t_max_c=55.0)
    return lambda: solve("AO", platform, m_cap=32)


def count_spans(solve_once) -> int:
    """How many spans one solve opens when tracing is enabled."""
    from repro.obs import capture_spans

    with capture_spans(isolate=True) as spans:
        solve_once()
    return len(spans)


def solve_wall_s(solve_once) -> float:
    """Median wall time of the solve with tracing disabled."""
    times = []
    for _ in range(SOLVE_REPEATS):
        t0 = time.perf_counter()
        solve_once()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def main() -> int:
    span_cost = disabled_span_cost_s()
    solve_once = representative_solve()
    solve_once()  # warm caches (expm propagators, steady-state LRU)
    n_spans = count_spans(solve_once)
    wall = solve_wall_s(solve_once)

    overhead = span_cost * n_spans
    ratio = overhead / wall if wall > 0 else float("inf")
    print(f"disabled span round-trip : {span_cost * 1e9:8.1f} ns")
    print(f"spans per AO solve       : {n_spans:8d}")
    print(f"solve wall time          : {wall * 1e3:8.2f} ms")
    print(f"no-op obs overhead       : {overhead * 1e6:8.2f} us "
          f"({ratio:.3%} of solve, limit {THRESHOLD:.0%})")

    if ratio >= THRESHOLD:
        print("FAIL: disabled observability exceeds the overhead budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
