#!/usr/bin/env python3
"""Smoke-run the solver micro-benchmarks and snapshot the numbers.

Runs the thermal-kernel benchmarks (``benchmarks/bench_solvers.py``) and
the batched-engine benchmarks (``benchmarks/bench_batch.py``) with
reduced rounds, then writes a compacted pytest-benchmark JSON report to
``BENCH_solvers.json`` at the repo root — a cheap regression tripwire
for the hot path, not a rigorous measurement.

The raw pytest-benchmark report carries every individual sample and the
full machine/commit dossier; the snapshot keeps only the summary
statistics (rounded to 6 significant digits) so the committed file stays
small and its diffs reviewable.

Usage: python scripts/bench_smoke.py [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_solvers.json"

#: Summary statistics preserved per benchmark (per-sample arrays dropped).
_STAT_KEYS = (
    "min", "max", "mean", "stddev", "median", "iqr", "q1", "q3",
    "rounds", "iterations", "ops",
)

#: machine_info keys worth keeping for context.
_MACHINE_KEYS = ("node", "processor", "machine", "python_version", "system")


def _round6(value):
    """Round floats to 6 significant digits (ints/others pass through)."""
    if isinstance(value, float):
        return float(f"{value:.6g}")
    return value


def compact_report(raw: dict) -> dict:
    """Strip a pytest-benchmark JSON report down to its summary stats."""
    machine = raw.get("machine_info") or {}
    return {
        "datetime": raw.get("datetime"),
        "version": raw.get("version"),
        "machine_info": {k: machine.get(k) for k in _MACHINE_KEYS if k in machine},
        "benchmarks": [
            {
                "group": bench.get("group"),
                "name": bench.get("name"),
                "fullname": bench.get("fullname"),
                "params": bench.get("params"),
                "stats": {
                    k: _round6(bench["stats"][k])
                    for k in _STAT_KEYS
                    if k in bench.get("stats", {})
                },
            }
            for bench in raw.get("benchmarks", [])
        ],
    }


def runner_smoke() -> dict | None:
    """Time a tiny parallel sweep through the sharded runner.

    Returns a small summary dict for the snapshot, or ``None`` if the
    smoke run failed — the benchmark report is still written either way.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import time

        from repro.runner import RunnerConfig, comparison_units
        from repro.runner import run as run_units

        units = comparison_units(
            (2, 3), (2,), (55.0,), ("LNS", "EXS", "AO"),
            {"period": 0.02, "m_cap": 8, "m_step": 1, "shift_grid": 8},
        )
        t0 = time.perf_counter()
        report = run_units(
            units, RunnerConfig(parallel=True, max_workers=2, retries=0)
        )
        wall = time.perf_counter() - t0
        if report.errors:
            return None
        return {
            "units": report.total,
            "ok": report.ok,
            "workers": 2,
            "wall_s": _round6(wall),
        }
    except Exception as exc:  # pragma: no cover - diagnostic path
        print(f"runner smoke failed (report written without it): {exc}",
              file=sys.stderr)
        return None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # pytest-benchmark truncates the json path while parsing arguments, so
    # aim it at a scratch file and only replace the report on success.
    scratch = REPORT.with_suffix(".json.tmp")
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/bench_solvers.py",
        "benchmarks/bench_batch.py",
        "-q",
        "--benchmark-warmup=on",
        "--benchmark-min-rounds=2",
        "--benchmark-max-time=0.25",
        f"--benchmark-json={scratch}",
        *argv,
    ]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode == 0 and scratch.exists():
        raw = json.loads(scratch.read_text())
        doc = compact_report(raw)
        smoke = runner_smoke()
        if smoke is not None:
            doc["runner_smoke"] = smoke
        REPORT.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"wrote {REPORT}")
    scratch.unlink(missing_ok=True)
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main())
