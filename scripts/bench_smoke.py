#!/usr/bin/env python3
"""Smoke-run the solver micro-benchmarks and snapshot the numbers.

Runs the thermal-kernel benchmarks (``benchmarks/bench_solvers.py``) and
the batched-engine benchmarks (``benchmarks/bench_batch.py``) with
reduced rounds, then writes the pytest-benchmark JSON report to
``BENCH_solvers.json`` at the repo root — a cheap regression tripwire
for the hot path, not a rigorous measurement.

Usage: python scripts/bench_smoke.py [extra pytest args...]
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_solvers.json"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # pytest-benchmark truncates the json path while parsing arguments, so
    # aim it at a scratch file and only replace the report on success.
    scratch = REPORT.with_suffix(".json.tmp")
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/bench_solvers.py",
        "benchmarks/bench_batch.py",
        "-q",
        "--benchmark-warmup=on",
        "--benchmark-min-rounds=2",
        "--benchmark-max-time=0.25",
        f"--benchmark-json={scratch}",
        *argv,
    ]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode == 0 and scratch.exists():
        scratch.replace(REPORT)
        print(f"wrote {REPORT}")
    else:
        scratch.unlink(missing_ok=True)
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main())
