#!/usr/bin/env python3
"""Smoke-run the micro-benchmarks and snapshot (or gate on) the numbers.

Runs two suites with reduced rounds and writes one compacted
pytest-benchmark JSON report per suite at the repo root — a cheap
regression tripwire for the hot paths, not a rigorous measurement:

* ``BENCH_solvers.json`` — thermal kernels (``bench_solvers.py``) and
  the single-platform batched engine (``bench_batch.py``);
* ``BENCH_grid.json`` — the cross-platform grid kernels
  (``bench_grid.py``), including the grid-vs-scalar speedup summary the
  README perf table quotes.

The raw pytest-benchmark report carries every individual sample and the
full machine/commit dossier; the snapshot keeps only the summary
statistics (rounded to 6 significant digits) so the committed files stay
small and their diffs reviewable.

With ``--compare``, nothing is overwritten: the fresh numbers are
checked against the committed snapshots and any benchmark whose best
(min) time regressed by more than ``COMPARE_THRESHOLD`` fails the run
(exit 3) — the CI ``bench-smoke`` gate.

Usage: python scripts/bench_smoke.py [--compare] [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The benchmark suites and the snapshot each one writes.
SUITES: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "BENCH_solvers.json",
        ("benchmarks/bench_solvers.py", "benchmarks/bench_batch.py"),
    ),
    ("BENCH_grid.json", ("benchmarks/bench_grid.py",)),
)

#: ``--compare`` fails when a benchmark's best (min) time slows down by
#: more than this fraction over the committed snapshot.  Min, not mean:
#: on loaded single-core CI boxes the mean wanders by tens of percent
#: run-to-run while the best observed time stays within a few percent.
COMPARE_THRESHOLD = 0.30

#: Summary statistics preserved per benchmark (per-sample arrays dropped).
_STAT_KEYS = (
    "min", "max", "mean", "stddev", "median", "iqr", "q1", "q3",
    "rounds", "iterations", "ops",
)

#: machine_info keys worth keeping for context.
_MACHINE_KEYS = ("node", "processor", "machine", "python_version", "system")


def _round6(value):
    """Round floats to 6 significant digits (ints/others pass through)."""
    if isinstance(value, float):
        return float(f"{value:.6g}")
    return value


def compact_report(raw: dict) -> dict:
    """Strip a pytest-benchmark JSON report down to its summary stats."""
    machine = raw.get("machine_info") or {}
    return {
        "datetime": raw.get("datetime"),
        "version": raw.get("version"),
        "machine_info": {k: machine.get(k) for k in _MACHINE_KEYS if k in machine},
        "benchmarks": [
            {
                "group": bench.get("group"),
                "name": bench.get("name"),
                "fullname": bench.get("fullname"),
                "params": bench.get("params"),
                "stats": {
                    k: _round6(bench["stats"][k])
                    for k in _STAT_KEYS
                    if k in bench.get("stats", {})
                },
            }
            for bench in raw.get("benchmarks", [])
        ],
    }


def grid_speedup(doc: dict) -> float | None:
    """Grid-kernel speedup over the scalar loop from a compact report.

    Best-vs-best, for the same reason ``--compare`` gates on min.
    """
    bests = {
        bench["name"]: bench["stats"].get("min")
        for bench in doc.get("benchmarks", [])
    }
    grid = bests.get("test_peak_grid")
    scalar = bests.get("test_peak_scalar_loop")
    if not grid or not scalar:
        return None
    return _round6(scalar / grid)


def compare_reports(committed: dict, fresh: dict) -> list[str]:
    """Best-time regressions of ``fresh`` vs the committed snapshot."""
    baseline = {
        bench["fullname"]: bench.get("stats", {})
        for bench in committed.get("benchmarks", [])
    }
    regressions = []
    for bench in fresh.get("benchmarks", []):
        ref = baseline.get(bench["fullname"], {}).get("min")
        best = bench.get("stats", {}).get("min")
        if not ref or not best:
            continue
        ratio = best / ref
        if ratio > 1.0 + COMPARE_THRESHOLD:
            regressions.append(
                f"{bench['fullname']}: best {ref:.6g}s -> {best:.6g}s "
                f"({ratio:.2f}x, limit {1.0 + COMPARE_THRESHOLD:.2f}x)"
            )
    return regressions


def runner_smoke() -> dict | None:
    """Time a tiny parallel sweep through the sharded runner.

    Returns a small summary dict for the snapshot, or ``None`` if the
    smoke run failed — the benchmark report is still written either way.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import time

        from repro.runner import RunnerConfig, comparison_units
        from repro.runner import run as run_units

        units = comparison_units(
            (2, 3), (2,), (55.0,), ("LNS", "EXS", "AO"),
            {"period": 0.02, "m_cap": 8, "m_step": 1, "shift_grid": 8},
        )
        t0 = time.perf_counter()
        report = run_units(
            units, RunnerConfig(parallel=True, max_workers=2, retries=0)
        )
        wall = time.perf_counter() - t0
        if report.errors:
            return None
        return {
            "units": report.total,
            "ok": report.ok,
            "workers": 2,
            "wall_s": _round6(wall),
        }
    except Exception as exc:  # pragma: no cover - diagnostic path
        print(f"runner smoke failed (report written without it): {exc}",
              file=sys.stderr)
        return None


def run_suite(report: Path, paths: tuple[str, ...], extra: list[str],
              env: dict) -> tuple[int, dict | None]:
    """Run one suite; returns (pytest returncode, compact report or None)."""
    # pytest-benchmark truncates the json path while parsing arguments, so
    # aim it at a scratch file and only consume the report on success.
    scratch = report.with_suffix(".json.tmp")
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *paths,
        "-q",
        "--benchmark-warmup=on",
        "--benchmark-min-rounds=2",
        "--benchmark-max-time=0.25",
        f"--benchmark-json={scratch}",
        *extra,
    ]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    doc = None
    if proc.returncode == 0 and scratch.exists():
        doc = compact_report(json.loads(scratch.read_text()))
    scratch.unlink(missing_ok=True)
    return proc.returncode, doc


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    compare = "--compare" in argv
    if compare:
        argv.remove("--compare")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    regressions: list[str] = []
    for name, paths in SUITES:
        report = REPO_ROOT / name
        code, doc = run_suite(report, paths, argv, env)
        if code != 0 or doc is None:
            return code or 1
        if name == "BENCH_grid.json":
            speedup = grid_speedup(doc)
            if speedup is not None:
                doc["grid_speedup_vs_scalar"] = speedup
                print(f"grid kernel speedup vs scalar loop: {speedup:g}x")
        elif name == "BENCH_solvers.json":
            smoke = runner_smoke()
            if smoke is not None:
                doc["runner_smoke"] = smoke
        if compare:
            if report.exists():
                regressions.extend(
                    compare_reports(json.loads(report.read_text()), doc)
                )
            else:
                print(f"no committed {name} to compare against", file=sys.stderr)
        else:
            report.write_text(json.dumps(doc, indent=1) + "\n")
            print(f"wrote {report}")

    if regressions:
        print("benchmark regressions beyond threshold:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
