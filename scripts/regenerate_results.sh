#!/usr/bin/env bash
# Regenerate every full-scale experiment output under results/.
# Usage: scripts/regenerate_results.sh [python]
set -euo pipefail
cd "$(dirname "$0")/.."
PY="${1:-python3}"
mkdir -p results
for exp in table2 table3 fig2 fig4 fig5 fig6 fig7 table5 headline tsp reactive; do
    echo "== $exp =="
    "$PY" -c "from repro.cli import main; import sys; sys.exit(main(['$exp']))" \
        | tee "results/$exp.txt"
done
# fig3 at a finer sweep than the default benchmark granularity.
"$PY" -c "from repro.cli import main; import sys; sys.exit(main(['fig3', '-o', 'step=0.2']))" \
    | tee results/fig3.txt
# scaling writes both the JSON headline and the rendered figure.
echo "== scaling =="
"$PY" - <<'EOF'
import json
from repro.experiments.registry import run_experiment
res = run_experiment("scaling")
with open("results/scaling.json", "w") as fh:
    json.dump(res.headline(), fh, indent=1, sort_keys=True)
    fh.write("\n")
with open("results/scaling.txt", "w") as fh:
    fh.write(res.format() + "\n")
print(open("results/scaling.txt").read())
EOF
# realtime likewise: JSON headline (schedulability gap) + ascii figure.
echo "== realtime =="
"$PY" - <<'EOF'
import json
from repro.experiments.registry import run_experiment
res = run_experiment("realtime")
with open("results/realtime.json", "w") as fh:
    json.dump(res.headline(), fh, indent=1, sort_keys=True)
    fh.write("\n")
with open("results/realtime.txt", "w") as fh:
    fh.write(res.format() + "\n")
print(open("results/realtime.txt").read())
EOF
echo "all results regenerated under results/"
