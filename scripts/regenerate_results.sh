#!/usr/bin/env bash
# Regenerate every full-scale experiment output under results/.
# Usage: scripts/regenerate_results.sh [python]
set -euo pipefail
cd "$(dirname "$0")/.."
PY="${1:-python3}"
mkdir -p results
for exp in table2 table3 fig2 fig4 fig5 fig6 fig7 table5 headline tsp reactive; do
    echo "== $exp =="
    "$PY" -c "from repro.cli import main; import sys; sys.exit(main(['$exp']))" \
        | tee "results/$exp.txt"
done
# fig3 at a finer sweep than the default benchmark granularity.
"$PY" -c "from repro.cli import main; import sys; sys.exit(main(['fig3', '-o', 'step=0.2']))" \
    | tee results/fig3.txt
echo "all results regenerated under results/"
