#!/usr/bin/env python3
"""Serve smoke: end-to-end gate for the ``repro serve`` service core.

Boots a real server subprocess, then drives it over TCP through the
same pipelined client (`repro.service.send_requests`) users get:

1. **Warm-up** — one solve per distinct cache key, so the timed phases
   price the service layer rather than the solvers.
2. **Mixed load** — 200 solve/certify/evaluate requests on one
   pipelined connection.  Gate: zero failures, every solve carries an
   accepted certificate or an explicit fallback record, and at least
   one coalesced batch is visible in the server's stats.
3. **Warm throughput** — identical cached solves, timed.  Gate:
   ≥ ``--min-rps`` requests/second (default 1000, the committed
   warm-cache floor; override with ``REPRO_SERVE_SMOKE_MIN_RPS``).

Min over repeats, not mean: on loaded single-core CI boxes the mean is
dominated by scheduler noise, while the best pass reflects what the
code can actually do — so the throughput phase runs twice and gates on
the faster pass.

Exit codes: 0 ok, 1 correctness failure, 3 throughput below the floor.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service import send_requests  # noqa: E402

PLATFORM2 = {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}
PLATFORM3 = {"n_cores": 3, "n_levels": 2, "t_max_c": 65.0}

#: Distinct solve keys the mixed phase cycles through (platform, solver,
#: params) — two platforms, two solvers, two parameterizations.
SOLVE_KEYS = [
    (PLATFORM2, "AO", {"m_cap": 8}),
    (PLATFORM2, "AO", {"m_cap": 16}),
    (PLATFORM2, "LNS", {}),
    (PLATFORM3, "AO", {"m_cap": 8}),
    (PLATFORM3, "LNS", {}),
]


def start_server(run_dir: str) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve`` on an ephemeral port; parse the banner."""
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0", "--run-dir", run_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline().strip()
    if not banner.startswith("serving on "):
        proc.kill()
        raise RuntimeError(f"unexpected server banner: {banner!r}")
    host, _, port = banner.removeprefix("serving on ").rpartition(":")
    return proc, host, int(port)


def solve_doc(platform, solver, params) -> dict:
    return {"op": "solve", "platform": platform, "solver": solver,
            "params": params}


async def drive(host: str, port: int, min_rps: float) -> int:
    failures: list[str] = []

    # -- phase 1: warm every distinct key (and collect schedules) -------
    warm = await send_requests(
        host, port, [solve_doc(*key) for key in SOLVE_KEYS]
    )
    schedules = []
    for key, resp in zip(SOLVE_KEYS, warm):
        if not resp.get("ok") or resp.get("status") != "ok":
            failures.append(f"warm-up solve failed for {key[1]}: {resp}")
        else:
            schedules.append((key[0], resp["result"]["schedule"]))
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1

    # -- phase 2: 200 mixed requests on one pipelined connection -------
    mixed: list[dict] = []
    for i in range(120):
        mixed.append(solve_doc(*SOLVE_KEYS[i % len(SOLVE_KEYS)]))
    for i in range(40):
        platform, schedule = schedules[i % len(schedules)]
        mixed.append({"op": "evaluate", "platform": platform,
                      "schedule": schedule})
    for i in range(40):
        platform, schedule = schedules[i % len(schedules)]
        mixed.append({"op": "certify", "platform": platform,
                      "schedule": schedule})
    t0 = time.perf_counter()
    responses = await send_requests(host, port, mixed)
    mixed_s = time.perf_counter() - t0

    for req, resp in zip(mixed, responses):
        if not resp.get("ok"):
            failures.append(f"{req['op']} failed: {resp.get('error')}")
        elif req["op"] == "solve":
            cert = resp.get("certificate")
            fallback = (resp.get("result") or {}).get("fallback")
            if not ((cert and cert.get("accepted")) or fallback):
                failures.append(
                    "solve response carries neither an accepted "
                    f"certificate nor a fallback record: {req}"
                )
        elif req["op"] == "certify" and not resp.get("accepted"):
            failures.append(f"certificate rejected: {resp}")

    # -- phase 3: warm-cache throughput, min over two passes ------------
    burst = [solve_doc(*SOLVE_KEYS[0]) for _ in range(600)]
    rps = 0.0
    for _ in range(2):
        t0 = time.perf_counter()
        hits = await send_requests(host, port, burst)
        elapsed = time.perf_counter() - t0
        rps = max(rps, len(burst) / elapsed)
        bad = [r for r in hits if not (r.get("ok") and r.get("cached"))]
        if bad:
            failures.append(f"{len(bad)} warm burst responses not cached hits")

    # -- stats afterwards: coalescing must be visible from outside ------
    (stats_resp,) = await send_requests(host, port, [{"op": "stats"}])
    stats = stats_resp.get("stats", {})
    coalescer = stats.get("coalescer", {})
    session = stats.get("session", {})
    if int(coalescer.get("coalesced_batches", 0)) < 1:
        failures.append("no coalesced batches recorded by the server")
    # The coalescer dedupes identical solves before they reach the
    # session, so the burst lands as a handful of session-level hits —
    # per-response `cached` flags (checked above) carry the real count.
    if int(session.get("cache_hits", 0)) < 1:
        failures.append(f"schedule cache never hit: {session}")

    await send_requests(host, port, [{"op": "shutdown"}])

    print(
        f"serve smoke: {len(mixed)} mixed requests in {mixed_s:.3f}s "
        f"({len(mixed) / mixed_s:.0f} req/s), warm-cache burst "
        f"{rps:.0f} req/s, {coalescer.get('coalesced_batches')} coalesced "
        f"batch(es) covering {coalescer.get('coalesced_requests')} "
        f"request(s), largest {coalescer.get('largest_batch')}"
    )
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    if rps < min_rps:
        print(
            f"warm-cache throughput {rps:.0f} req/s below the "
            f"{min_rps:.0f} req/s floor",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-rps",
        type=float,
        default=float(os.environ.get("REPRO_SERVE_SMOKE_MIN_RPS", "1000")),
        help="warm-cache throughput floor in requests/second",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as run_dir:
        proc, host, port = start_server(run_dir)
        try:
            code = asyncio.run(drive(host, port, args.min_rps))
        finally:
            if proc.poll() is None:
                proc.terminate()
            out, _ = proc.communicate(timeout=30)
        # The server's exit summary is part of the evidence: it shows the
        # journal landed and the coalescer counters from the inside.
        for line in out.strip().splitlines():
            print(f"  server: {line}")
        if "0 failed" not in out:
            print("server reported request failures", file=sys.stderr)
            code = code or 1
        summary = subprocess.run(
            [sys.executable, "-m", "repro.cli", "stats", run_dir],
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            capture_output=True,
            text=True,
        )
        for line in summary.stdout.strip().splitlines():
            print(f"  stats: {line}")
        if "coalescing:" not in summary.stdout:
            print("repro stats does not show coalescing", file=sys.stderr)
            code = code or 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
