#!/usr/bin/env python
"""Regenerate the golden closed-loop traces under tests/data/.

The committed traces pin the closed-loop dynamics — sensor-driven
simulation, fault injection, governor/controller policies — to 1e-9, so
a sim/engine refactor that silently changes trajectories fails
``tests/test_golden_traces.py`` instead of shipping.

Regenerating is a deliberate act: run this script only when a dynamics
change is *intended*, review the diff, and say so in the changelog.

Usage::

    PYTHONPATH=src python scripts/make_golden_traces.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algorithms.registry import get_solver
from repro.platform import paper_platform
from repro.power.heterogeneous import big_little_power_model

OUT = Path(__file__).resolve().parents[1] / "tests" / "data"


def big_little_platform():
    return paper_platform(
        6,
        n_levels=2,
        t_max_c=55.0,
        power=big_little_power_model(big_cores=[0, 1, 2], n_cores=6),
    )


#: The canonical cases: (case id, platform builder, solver, params).
CASES = (
    (
        "reactive_paper3_faulted",
        lambda: paper_platform(3, n_levels=2, t_max_c=65.0),
        "reactive",
        {
            "guard_band": 1.0,
            "horizon": 0.05,
            "faults": {
                "sensor_noise_sigma": 0.5,
                "sensor_dropout_prob": 0.2,
                "seed": 7,
            },
        },
    ),
    (
        "integral_paper3_faulted",
        lambda: paper_platform(3, n_levels=2, t_max_c=65.0),
        "integral",
        {
            "horizon": 0.05,
            "faults": {
                "sensor_noise_sigma": 0.5,
                "sensor_dropout_prob": 0.2,
                "seed": 7,
            },
        },
    ),
    (
        "integral_big_little_clean",
        big_little_platform,
        "integral",
        {"horizon": 0.03, "gain_schedule": True},
    ),
    (
        "reactive_big_little_clean",
        big_little_platform,
        "reactive",
        {"horizon": 0.03, "guard_band": 2.0},
    ),
)


def trace_document(case_id: str, solver: str, params: dict) -> dict:
    builder = {c[0]: c[1] for c in CASES}[case_id]
    result = get_solver(solver).solve(builder(), **params)
    trace = result.details["trace"]
    return {
        "case": case_id,
        "solver": solver,
        "params": params,
        "throughput": result.throughput,
        "peak_theta": result.peak_theta,
        "feasible": result.feasible,
        "times": trace.times.tolist(),
        "temperatures": trace.temperatures.tolist(),
        "levels": trace.levels.tolist(),
    }


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    docs = [
        trace_document(case_id, solver, params)
        for case_id, _builder, solver, params in CASES
    ]
    path = OUT / "golden_traces.json"
    path.write_text(json.dumps(docs, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(docs)} cases)")


if __name__ == "__main__":
    main()
