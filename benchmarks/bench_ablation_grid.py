"""Ablation: core-level lumping vs sub-core grid refinement.

The paper simplifies the floorplan to one node per core.  This ablation
quantifies the cost of that choice: peak-temperature error and solver
cost of k x k refined models against the coarse one.
"""

import numpy as np
import pytest

from repro.floorplan.library import floorplan_3x1
from repro.power.model import PowerModel
from repro.schedule.builders import random_stepup_schedule
from repro.thermal.grid_model import build_refined_model, refined_peak_error
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_single_layer_network


@pytest.fixture(scope="module")
def setup():
    coarse = ThermalModel(build_single_layer_network(floorplan_3x1()), PowerModel())
    rng = np.random.default_rng(9)
    schedules = [random_stepup_schedule(3, rng, period=0.03) for _ in range(4)]
    return coarse, schedules


@pytest.mark.parametrize("k", [1, 2, 4], ids=["k1", "k2", "k4"])
def test_refined_peak(benchmark, setup, k):
    """Peak evaluation cost and error at k x k sub-blocks per core."""
    coarse, schedules = setup
    refined = build_refined_model(floorplan_3x1(), k=k)

    def run():
        return [refined_peak_error(coarse, refined, s) for s in schedules]

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    if k == 1:
        worst = max(err for _c, _r, err in results)
        assert worst < 1e-9  # k=1 is the coarse model itself
    else:
        # Core-level lumping tracks the refined field to a few percent:
        # the residual is the genuine within-core gradient.
        worst_rel = max(err / max(c, 1.0) for c, _r, err in results)
        assert worst_rel < 0.05
