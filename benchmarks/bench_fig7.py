"""Benchmark regenerating Fig. 7 (throughput vs temperature threshold)."""

from repro.experiments.fig7 import fig7


def test_fig7_threshold_sweep(benchmark):
    """Fig. 7: every approach's throughput grows with T_max; AO on top."""
    result = benchmark.pedantic(
        lambda: fig7(
            core_counts=(2, 3, 6),
            t_max_values=(50.0, 55.0, 60.0, 65.0),
            approaches=("LNS", "EXS", "AO"),
            m_cap=24,
        ),
        rounds=1,
        iterations=1,
    )
    for n in (2, 3, 6):
        for name in ("EXS", "AO"):
            series = [
                result.grid.find(n, t_max_c=t).throughput(name)
                for t in (50.0, 55.0, 60.0, 65.0)
            ]
            finite = [s for s in series if s == s]
            assert all(b >= a - 1e-9 for a, b in zip(finite, finite[1:]))
    for cell in result.grid.cells:
        ao_thr = cell.throughput("AO")
        exs_thr = cell.throughput("EXS")
        if ao_thr == ao_thr and exs_thr == exs_thr:
            assert ao_thr >= exs_thr - 1e-9
