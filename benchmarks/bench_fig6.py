"""Benchmark regenerating Fig. 6 (throughput vs cores x ladder size).

The benchmark runs a representative sub-grid (full grid = the standalone
``repro fig6`` CLI run recorded in EXPERIMENTS.md); shape assertions check
the paper's two headline observations.
"""

from repro.experiments.fig6 import fig6


def test_fig6_grid(benchmark):
    """Fig. 6: AO/PCO on top; smaller ladders widen the margin over EXS."""
    result = benchmark.pedantic(
        lambda: fig6(
            core_counts=(2, 3, 6),
            level_counts=(2, 4),
            m_cap=24,
            shift_grid=4,
        ),
        rounds=1,
        iterations=1,
    )
    for cell in result.grid.cells:
        assert cell.throughput("AO") >= cell.throughput("EXS") - 1e-9
        assert cell.throughput("PCO") >= cell.throughput("EXS") - 1e-9
        assert cell.throughput("EXS") >= cell.throughput("LNS") - 1e-9
    for n in (2, 3, 6):
        wide = result.grid.find(n, n_levels=2).improvement("AO", "EXS")
        narrow = result.grid.find(n, n_levels=4).improvement("AO", "EXS")
        assert wide >= narrow - 1e-9
