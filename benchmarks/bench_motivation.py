"""Benchmarks regenerating Tables II and III (section III).

Each benchmark regenerates the artifact and asserts its headline shape so
a timing run doubles as a correctness run.
"""

import numpy as np
import pytest

from repro.experiments.motivation import table2, table3


def test_table2(benchmark):
    """Table II: eq.-(11) ratios matching the ideal throughput."""
    result = benchmark(table2)
    assert result.high_ratios == pytest.approx([0.8693, 0.8211, 0.8693], abs=1e-4)
    assert result.ideal_throughput == pytest.approx(1.1972, abs=2e-4)


def test_table3(benchmark):
    """Table III: TPT-throttled ratios for t_p = 20/10/5 ms."""
    result = benchmark.pedantic(
        lambda: table3(periods=(0.020, 0.010, 0.005)), rounds=3, iterations=1
    )
    assert np.all(result.peaks_theta <= 30.0 + 1e-6)
    assert np.all(np.diff(result.throughputs) > 0)  # shorter period -> more THR
