"""Benchmark regenerating Fig. 5 (9-core peak vs m)."""

import numpy as np

from repro.experiments.fig5 import fig5


def test_fig5_m_sweep(benchmark):
    """Fig. 5: the m-oscillating peak decreases monotonically in m."""
    result = benchmark.pedantic(lambda: fig5(m_max=10), rounds=3, iterations=1)
    assert result.monotone
    assert result.peaks_theta[-1] <= result.peaks_theta[0]
    assert len(result.m_values) == 10
