"""Service-core benchmarks: cache hit path, key derivation, coalesced grids.

What the serving layer's throughput claims rest on:

* a warm-cache solve is two dict lookups plus one small sha256 — the
  ``repro serve`` smoke gate (``scripts/bench_serve_smoke.py``) demands
  ≥ 1000 req/s end-to-end, so the in-process hit path must be far below
  one millisecond;
* the content key itself (platform hash memoized, request document
  hashed) prices every request, hit or miss;
* ``evaluate_many`` turns R independent evaluations into one grid-kernel
  call — the coalescer's win over the scalar loop.
"""

import pytest

from repro.api import evaluate as api_evaluate
from repro.engine import ThermalEngine
from repro.platform import paper_platform
from repro.service import ScheduleCache, SchedulerSession, schedule_cache_key


@pytest.fixture(scope="module")
def warm_session():
    """A session with one solved (and therefore cached) AO request."""
    session = SchedulerSession(cache=ScheduleCache(directory=None))
    outcome = session.solve(
        {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}, "AO", {"m_cap": 8}
    )
    assert outcome.status == "ok"
    return session


def test_warm_cache_solve(benchmark, warm_session):
    """The serve hot path: an identical repeat request (memory hit)."""
    spec = {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}

    def hit():
        return warm_session.solve(spec, "AO", {"m_cap": 8})

    outcome = benchmark(hit)
    assert outcome.cached and outcome.result.feasible


def test_schedule_cache_key(benchmark, warm_session):
    """Key derivation alone: platform hash (memoized) + request sha256."""
    spec = {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}

    def derive():
        return schedule_cache_key(
            warm_session.platform_key(spec), "AO", {"m_cap": 8}, 0.05
        )

    key = benchmark(derive)
    assert len(key) == 32


@pytest.fixture(scope="module")
def evaluation_rows():
    """Eight (platform spec, schedule) rows over two platforms."""
    session = SchedulerSession(cache=ScheduleCache(directory=None))
    rows = []
    for n in (2, 3):
        spec = {"n_cores": n, "n_levels": 2, "t_max_c": 65.0}
        schedule = session.solve(spec, "AO", {"m_cap": 8}).result.schedule
        rows.extend((spec, schedule) for _ in range(4))
    return rows


def test_evaluate_many_grid(benchmark, evaluation_rows):
    """Coalesced evaluation: one grid-kernel call for all rows."""
    session = SchedulerSession(cache=ScheduleCache(directory=None))

    def run():
        return session.evaluate_many(evaluation_rows)

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(out) == len(evaluation_rows) and all(e.feasible for e in out)


def test_evaluate_scalar_loop(benchmark, evaluation_rows):
    """Baseline: the same rows priced one `api.evaluate` at a time."""
    engines = {
        n: ThermalEngine(paper_platform(n, n_levels=2, t_max_c=65.0))
        for n in (2, 3)
    }

    def run():
        return [
            api_evaluate(engines[spec["n_cores"]], schedule)
            for spec, schedule in evaluation_rows
        ]

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(out) == len(evaluation_rows)
