"""Ablation: naive (Algorithm 1) vs monotonicity-pruned exhaustive search."""

import pytest

from repro.algorithms.exs import exs, exs_pruned
from repro.platform import paper_platform


@pytest.mark.parametrize("n,levels", [(6, 4), (9, 3)], ids=["6c4l", "9c3l"])
def test_exs_naive(benchmark, n, levels):
    """Vectorized full enumeration (L^N steady states)."""
    p = paper_platform(n, n_levels=levels, t_max_c=55.0)
    result = benchmark.pedantic(lambda: exs(p), rounds=2, iterations=1)
    assert result.feasible


@pytest.mark.parametrize("n,levels", [(6, 4), (9, 3)], ids=["6c4l", "9c3l"])
def test_exs_pruned(benchmark, n, levels):
    """DFS with thermal-monotonicity and bound pruning (same optimum)."""
    p = paper_platform(n, n_levels=levels, t_max_c=55.0)
    result = benchmark.pedantic(lambda: exs_pruned(p), rounds=2, iterations=1)
    naive = exs(p)
    assert result.throughput == pytest.approx(naive.throughput)
