"""Ablation: peak-temperature engines — accuracy vs cost.

Compares the three engines on the same random schedule set:

* the literal Theorem-1 end value (``wrap_refine=False``) — cheapest,
  subject to the wrap-continuation epsilon,
* the wrap-refined step-up fast path (library default),
* the general MatEx-style search with Brent refinement,
* the RK45 settling oracle (reference only; orders slower).
"""

import numpy as np
import pytest

from repro.schedule.builders import random_stepup_schedule
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.reference import reference_peak


def _schedules(platform, count=8):
    rng = np.random.default_rng(42)
    return [
        random_stepup_schedule(
            platform.n_cores, rng, levels=(0.6, 0.8, 1.0, 1.2, 1.3), period=0.05
        )
        for _ in range(count)
    ]


def test_literal_theorem1_engine(benchmark, platform9):
    """O(z) end-value only (the paper's literal Theorem 1)."""
    scheds = _schedules(platform9)
    model = platform9.model

    def run():
        return [
            stepup_peak_temperature(model, s, check=False, wrap_refine=False).value
            for s in scheds
        ]

    peaks = benchmark(run)
    assert all(np.isfinite(peaks))


def test_wrap_refined_engine(benchmark, platform9):
    """End value + vectorized wrap-continuation grid scan (default)."""
    scheds = _schedules(platform9)
    model = platform9.model

    def run():
        return [
            stepup_peak_temperature(model, s, check=False).value for s in scheds
        ]

    refined = benchmark(run)
    literal = [
        stepup_peak_temperature(model, s, check=False, wrap_refine=False).value
        for s in scheds
    ]
    # The refined engine only ever finds more, and at most the epsilon more.
    for lo, hi in zip(literal, refined):
        assert lo - 1e-9 <= hi <= lo + 0.6


def test_general_engine(benchmark, platform9):
    """Full MatEx-style search with Brent refinement."""
    scheds = _schedules(platform9)
    model = platform9.model

    def run():
        return [
            peak_temperature(model, s, stepup_fast_path=False).value for s in scheds
        ]

    general = benchmark(run)
    refined = [stepup_peak_temperature(model, s, check=False, grid=96).value
               for s in scheds]
    for a, b in zip(general, refined):
        assert a == pytest.approx(b, abs=0.05)


def test_rk45_oracle(benchmark, platform3):
    """The independent settling oracle (accuracy reference, slowest)."""
    scheds = _schedules(platform3, count=2)
    model = platform3.model

    def run():
        return [reference_peak(model, s, samples_per_interval=48) for s in scheds]

    oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    fast = [stepup_peak_temperature(model, s, check=False, grid=96).value
            for s in scheds]
    for a, b in zip(oracle, fast):
        assert a == pytest.approx(b, abs=0.05)
