"""Benchmark regenerating Fig. 3 (peak surface over phase placements)."""

from repro.experiments.fig3 import fig3


def test_fig3_surface(benchmark):
    """Fig. 3: the step-up corner bounds the swept peak surface.

    Runs the sweep at 0.5 s granularity (the paper uses 0.1 s; pass
    ``step=0.1`` to :func:`repro.experiments.fig3.fig3` for the full
    surface — same shape, ~25x the cells).
    """
    result = benchmark.pedantic(
        lambda: fig3(step=0.5, grid_per_interval=32), rounds=3, iterations=1
    )
    assert result.bound_holds
    assert result.max_peak_theta > result.min_peak_theta
