"""Benchmark regenerating Fig. 4 (6-core step-up traces)."""

from repro.experiments.fig4 import fig4


def test_fig4_traces(benchmark):
    """Fig. 4: warm-up + stable-status traces of a 6-core step-up schedule."""
    result = benchmark.pedantic(
        lambda: fig4(warmup_periods=12, samples_per_interval=24),
        rounds=3,
        iterations=1,
    )
    assert result.peak_at_end
    assert result.monotone_rise
