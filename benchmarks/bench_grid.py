"""Grid kernels vs the per-platform loops they replace.

The comparison sweep prices candidate schedules for *many* platforms;
before the grid kernels that meant one batched call per platform (and
before those, one scalar call per schedule).  These benchmarks pin the
trajectory on the canonical 4-platform x 64-candidate grid: the grid
kernel must beat the per-platform scalar loop by >= 5x, and every case
asserts 1e-9 parity with the scalar path so the speedup is never bought
with accuracy.
"""

import numpy as np
import pytest

from repro.platform import paper_platform
from repro.schedule.builders import random_schedule, random_stepup_schedule
from repro.thermal.batch import (
    peak_temperature_batch,
    stepup_peak_temperature_batch,
)
from repro.thermal.grid import (
    peak_temperature_grid,
    periodic_steady_state_grid,
    stepup_peak_temperature_grid,
)
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.periodic import periodic_steady_state

#: The canonical grid: 4 heterogeneous platforms x 64 candidates each.
CORE_COUNTS = (2, 3, 6, 9)
K = 64


def _build_rows(stepup_only=False, seed=23):
    rng = np.random.default_rng(seed)
    rows = []
    for i, n in enumerate(CORE_COUNTS):
        model = paper_platform(n, n_levels=2, t_max_c=55.0).model
        model.eigen  # warm the decomposition; we benchmark evaluation
        for j in range(K):
            segments = 1 + (i + j) % 5
            if stepup_only or j % 2 == 0:
                sched = random_stepup_schedule(
                    n, rng, max_segments=segments, period=0.02
                )
            else:
                sched = random_schedule(
                    n, rng, max_segments=segments, period=0.02
                )
            rows.append((model, sched))
    return rows


def _by_platform(rows):
    groups: dict[int, tuple] = {}
    for model, sched in rows:
        groups.setdefault(id(model), (model, []))[1].append(sched)
    return list(groups.values())


@pytest.fixture(scope="module")
def grid_rows():
    return _build_rows()


@pytest.fixture(scope="module")
def stepup_rows():
    return _build_rows(stepup_only=True)


@pytest.mark.benchmark(group="grid-peak")
def test_peak_grid(benchmark, grid_rows):
    """The tensorized kernel: the whole grid in one call."""
    results = benchmark(lambda: peak_temperature_grid(grid_rows))
    for i in (0, len(grid_rows) // 2, len(grid_rows) - 1):
        check = peak_temperature(grid_rows[i][0], grid_rows[i][1])
        assert results[i].value == pytest.approx(check.value, abs=1e-9)


@pytest.mark.benchmark(group="grid-peak")
def test_peak_scalar_loop(benchmark, grid_rows):
    """The per-platform scalar loop (the >= 5x speedup baseline)."""
    results = benchmark(
        lambda: [peak_temperature(m, s) for m, s in grid_rows]
    )
    assert len(results) == len(grid_rows)


@pytest.mark.benchmark(group="grid-peak")
def test_peak_per_platform_batch(benchmark, grid_rows):
    """One batched call per platform (the loop the grid kernel fuses)."""
    groups = _by_platform(grid_rows)
    results = benchmark(
        lambda: [
            r
            for model, scheds in groups
            for r in peak_temperature_batch(model, scheds)
        ]
    )
    assert len(results) == len(grid_rows)


@pytest.mark.benchmark(group="grid-stepup")
def test_stepup_grid(benchmark, stepup_rows):
    """Theorem-1 fast path over the whole grid (the AO m-scan kernel)."""
    results = benchmark(
        lambda: stepup_peak_temperature_grid(stepup_rows, check=False)
    )
    check = stepup_peak_temperature(
        stepup_rows[0][0], stepup_rows[0][1], check=False
    )
    assert results[0].value == pytest.approx(check.value, abs=1e-9)


@pytest.mark.benchmark(group="grid-stepup")
def test_stepup_per_platform_batch(benchmark, stepup_rows):
    """Per-platform batched Theorem-1 loop (baseline)."""
    groups = _by_platform(stepup_rows)
    results = benchmark(
        lambda: [
            r
            for model, scheds in groups
            for r in stepup_peak_temperature_batch(model, scheds, check=False)
        ]
    )
    assert len(results) == len(stepup_rows)


@pytest.mark.benchmark(group="grid-steady-state")
def test_steady_state_grid(benchmark, grid_rows):
    """Batched eq.-(4) fixed points across every platform at once."""
    results = benchmark(lambda: periodic_steady_state_grid(grid_rows))
    check = periodic_steady_state(grid_rows[0][0], grid_rows[0][1])
    np.testing.assert_allclose(
        results[0].boundary_temperatures,
        check.boundary_temperatures,
        atol=1e-9,
    )
