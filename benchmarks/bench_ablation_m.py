"""Ablation: the m-scan tradeoff with and without transition overhead.

Without overhead (tau = 0) Theorem 5 makes the peak monotone decreasing in
m, so larger m is always at least as good.  With tau = 5 us the ratio
inflation turns the scan into a genuine optimum search; this ablation
times both scans and checks their shapes.
"""

import numpy as np

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import choose_m, plan_modes
from repro.platform import paper_platform


def _plan(tau):
    p = paper_platform(3, n_levels=2, t_max_c=65.0, tau=tau)
    cont = continuous_assignment(p)
    return p, plan_modes(p, cont.voltages)


def test_m_scan_without_overhead(benchmark):
    """tau = 0: peak monotone in m (Theorem 5), best m = scan end."""
    p, plan = _plan(0.0)
    m_opt, _, history = benchmark.pedantic(
        lambda: choose_m(p, plan, period=0.02, m_cap=48), rounds=2, iterations=1
    )
    peaks = [pk for _, pk in history]
    assert np.all(np.diff(peaks) <= 1e-9)
    assert m_opt == history[-1][0]


def test_m_scan_with_overhead(benchmark):
    """tau = 5 us: ratio inflation creates an interior or bounded optimum."""
    p, plan = _plan(5e-6)
    m_opt, _, history = benchmark.pedantic(
        lambda: choose_m(p, plan, period=0.02, m_cap=48), rounds=2, iterations=1
    )
    peaks = dict(history)
    assert peaks[m_opt] == min(peaks.values())
    # Overhead-adjusted peaks dominate the overhead-free ones.
    p0, plan0 = _plan(0.0)
    _, _, history0 = choose_m(p0, plan0, period=0.02, m_cap=48)
    free = dict(history0)
    for m, pk in history:
        if m in free:
            assert pk >= free[m] - 1e-9
