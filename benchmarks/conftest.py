"""Shared benchmark fixtures (scale-reduced platform grids)."""

import pytest

from repro.platform import paper_platform


@pytest.fixture(scope="session")
def platform3():
    return paper_platform(3, n_levels=2, t_max_c=65.0)


@pytest.fixture(scope="session")
def platform6():
    return paper_platform(6, n_levels=3, t_max_c=55.0)


@pytest.fixture(scope="session")
def platform9():
    return paper_platform(9, n_levels=2, t_max_c=55.0)
