"""Micro-benchmarks of the thermal kernels underlying everything else.

These quantify why the closed-form engine makes AO cheap: a periodic
steady-state solve costs microseconds after the one-time
eigendecomposition, versus milliseconds for a numerical integrator pass.
"""

import numpy as np

from repro.schedule.builders import random_stepup_schedule, two_mode_schedule
from repro.thermal.periodic import periodic_steady_state
from repro.thermal.reference import reference_simulate
from repro.thermal.transient import simulate_schedule_period


def test_eigendecomposition(benchmark, platform9):
    """One-time O(n^3) setup cost of the cached eigen-expm."""
    from repro.util.linalg import EigenExpm

    model = platform9.model
    ee = benchmark(lambda: EigenExpm(model.a, c_diag=model.c_diag))
    assert np.all(ee.eigenvalues < 0)


def test_periodic_steady_state_9core(benchmark, platform9):
    """Stable-status fixed point of a 10-interval step-up schedule."""
    rng = np.random.default_rng(3)
    s = random_stepup_schedule(9, rng, period=0.02, max_segments=4)
    model = platform9.model
    sol = benchmark(lambda: periodic_steady_state(model, s))
    assert np.allclose(sol.start_temperature, sol.end_temperature, atol=1e-9)


def test_one_period_propagation(benchmark, platform9):
    """Closed-form propagation of one period (the AO inner kernel)."""
    s = two_mode_schedule([0.6] * 9, [1.3] * 9, [0.5] * 9, 0.01)
    model = platform9.model
    theta0 = np.zeros(model.n_nodes)
    out = benchmark(lambda: simulate_schedule_period(model, s, theta0))
    assert np.all(np.isfinite(out))


def test_reference_integrator_period(benchmark, platform9):
    """The RK45 oracle on the same period (the cost we avoid paying)."""
    s = two_mode_schedule([0.6] * 9, [1.3] * 9, [0.5] * 9, 0.01)
    model = platform9.model

    def run():
        return reference_simulate(model, s, periods=1, samples_per_interval=2)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    closed = simulate_schedule_period(model, s, np.zeros(model.n_nodes))
    assert np.allclose(trace.end_temperature, closed, atol=1e-6)


def test_steady_state_batch(benchmark, platform9):
    """Batched Cholesky steady states (the EXS kernel), 4096 assignments."""
    rng = np.random.default_rng(5)
    volts = rng.choice([0.6, 1.3], size=(4096, 9))
    model = platform9.model
    theta = benchmark(lambda: model.steady_state_batch(volts))
    assert theta.shape == (4096, 9)
