"""Batched candidate evaluation vs the scalar loop it replaces.

The AO/PCO/EXS optimizers price K candidate schedules per decision; the
batched engine amortizes the eigenbasis work across the whole candidate
set.  Each case asserts 1e-9 parity with the scalar path so the speedup
is never bought with accuracy.
"""

import numpy as np
import pytest

from repro.schedule.builders import random_schedule, random_stepup_schedule
from repro.thermal.batch import (
    peak_temperature_batch,
    periodic_steady_state_batch,
    stepup_peak_temperature_batch,
)
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.periodic import periodic_steady_state


def _candidates(n_cores, k, stepup_only=False, seed=11):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(k):
        segments = 1 + i % 5
        if stepup_only or i % 2 == 0:
            s = random_stepup_schedule(
                n_cores, rng, max_segments=segments, period=0.02
            )
        else:
            s = random_schedule(n_cores, rng, max_segments=segments, period=0.02)
        out.append(s)
    return out


@pytest.mark.parametrize("k", [16, 64, 256])
def test_peak_batch(benchmark, platform9, k):
    """Batched general peak search over K mixed candidates."""
    model = platform9.model
    scheds = _candidates(9, k)
    results = benchmark(lambda: peak_temperature_batch(model, scheds))
    check = peak_temperature(model, scheds[0])
    assert results[0].value == pytest.approx(check.value, abs=1e-9)


@pytest.mark.parametrize("k", [16, 64, 256])
def test_peak_scalar_loop(benchmark, platform9, k):
    """The scalar loop the batched engine replaces (baseline)."""
    model = platform9.model
    scheds = _candidates(9, k)
    results = benchmark(
        lambda: [peak_temperature(model, s) for s in scheds]
    )
    assert len(results) == k


@pytest.mark.parametrize("k", [64])
def test_stepup_peak_batch(benchmark, platform9, k):
    """Batched Theorem-1 fast path (the AO m-sweep/TPT kernel)."""
    model = platform9.model
    scheds = _candidates(9, k, stepup_only=True)
    results = benchmark(
        lambda: stepup_peak_temperature_batch(model, scheds, check=False)
    )
    check = stepup_peak_temperature(model, scheds[0], check=False)
    assert results[0].value == pytest.approx(check.value, abs=1e-9)


@pytest.mark.parametrize("k", [64])
def test_steady_state_schedule_batch(benchmark, platform9, k):
    """Batched eq.-(4) fixed points for K schedules."""
    model = platform9.model
    scheds = _candidates(9, k)
    results = benchmark(lambda: periodic_steady_state_batch(model, scheds))
    check = periodic_steady_state(model, scheds[0])
    np.testing.assert_allclose(
        results[0].boundary_temperatures,
        check.boundary_temperatures,
        atol=1e-9,
    )
