"""Benchmark regenerating Fig. 2 (single-core vs chip-wide oscillation)."""

from repro.experiments.fig2 import fig2


def test_fig2(benchmark):
    """Fig. 2: oscillating one core does not lower the 2-core peak."""
    result = benchmark(fig2)
    assert not result.single_core_helped
    assert result.chipwide_peak_theta <= result.base_peak_theta + 1e-9
