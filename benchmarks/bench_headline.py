"""Benchmark regenerating the abstract's headline claim (AO vs EXS)."""

from repro.experiments.headline import headline


def test_headline_improvements(benchmark):
    """Aggregate AO-over-EXS improvement across a representative grid."""
    result = benchmark.pedantic(
        lambda: headline(
            core_counts=(2, 3, 6),
            level_counts=(2, 3),
            t_max_values=(55.0, 60.0, 65.0),
            m_cap=24,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.improvements.size > 0
    assert result.max_improvement > 0.10   # double-digit best-case gain
    assert result.mean_improvement > 0.0
