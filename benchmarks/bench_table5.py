"""Benchmarks regenerating Table V (computation-time comparison).

Each approach is benchmarked separately on the growing configurations so
pytest-benchmark's report *is* the Table V reproduction: EXS explodes with
cores x levels while AO grows mildly and PCO costs a factor over AO.
"""

import pytest

from repro.algorithms import ao, exs, pco
from repro.platform import paper_platform

CONFIGS = [(2, 2), (3, 3), (6, 3), (9, 2), (9, 4)]


@pytest.mark.parametrize("n,levels", CONFIGS, ids=[f"{n}c{l}l" for n, l in CONFIGS])
def test_exs_time(benchmark, n, levels):
    """EXS wall-clock across the grid (exponential in cores x levels)."""
    p = paper_platform(n, n_levels=levels, t_max_c=65.0)
    result = benchmark.pedantic(lambda: exs(p), rounds=2, iterations=1)
    assert result.feasible


@pytest.mark.parametrize("n,levels", CONFIGS, ids=[f"{n}c{l}l" for n, l in CONFIGS])
def test_ao_time(benchmark, n, levels):
    """AO wall-clock across the same grid (stays within seconds)."""
    p = paper_platform(n, n_levels=levels, t_max_c=65.0)
    result = benchmark.pedantic(lambda: ao(p, m_cap=64), rounds=2, iterations=1)
    assert result.feasible


@pytest.mark.parametrize("n,levels", [(2, 2), (3, 3), (6, 3)],
                         ids=["2c2l", "3c3l", "6c3l"])
def test_pco_time(benchmark, n, levels):
    """PCO wall-clock (a constant factor over AO: the general peak engine)."""
    p = paper_platform(n, n_levels=levels, t_max_c=65.0)
    result = benchmark.pedantic(
        lambda: pco(p, m_cap=64, shift_grid=4), rounds=1, iterations=1
    )
    assert result.feasible
