"""Benchmarks for the extension features: workload, 3D stacks, heterogeneity, TSP.

These quantify the cost of the library's beyond-the-paper features and
double as shape checks (upper layers hotter, dark silicon rescuing the
stack, AO dominating TSP budgets).
"""

import numpy as np
import pytest

from repro.algorithms import ao
from repro.algorithms.dark import dark_silicon_ao
from repro.algorithms.minpeak import minimize_peak
from repro.analysis.tsp import thermal_safe_power, tsp_throughput
from repro.floorplan import paper_floorplan
from repro.platform import Platform, paper_platform, platform_3d
from repro.power import TransitionOverhead, big_little_power_model, paper_ladder
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_single_layer_network
from repro.workload import TaskSet, schedule_taskset


def test_workload_pipeline(benchmark):
    """Full task-set pipeline: partition -> speeds -> min-peak schedule."""
    platform = paper_platform(9, n_levels=5, t_max_c=60.0)
    rng = np.random.default_rng(2016)
    taskset = TaskSet.random(24, total_utilization=7.2, rng=rng)
    result = benchmark.pedantic(
        lambda: schedule_taskset(platform, taskset, m_cap=48),
        rounds=2,
        iterations=1,
    )
    assert result.thermally_feasible


def test_minpeak_kernel(benchmark):
    """The fixed-workload peak minimizer on the 9-core chip."""
    platform = paper_platform(9, n_levels=2, t_max_c=60.0)
    targets = np.full(9, 0.85)
    result = benchmark.pedantic(
        lambda: minimize_peak(platform, targets, m_cap=48), rounds=2, iterations=1
    )
    assert result.peak.value >= result.constant_bound_theta - 1e-6


def test_dark_silicon_search(benchmark):
    """Greedy gating on the infeasible 3-layer stack."""
    platform = platform_3d(3, 2, 2, n_levels=2, t_max_c=65.0)
    result = benchmark.pedantic(
        lambda: dark_silicon_ao(platform, m_cap=16), rounds=2, iterations=1
    )
    assert result.feasible
    assert len(result.details["dark_cores"]) >= 1


def test_ao_on_heterogeneous_chip(benchmark):
    """AO on a big.LITTLE 6-core chip."""
    fp = paper_floorplan(6)
    pm = big_little_power_model(big_cores=[0, 1, 2], n_cores=6)
    model = ThermalModel(build_single_layer_network(fp), pm)
    platform = Platform(
        model=model, ladder=paper_ladder(3),
        overhead=TransitionOverhead(), t_max_c=55.0,
    )
    result = benchmark.pedantic(
        lambda: ao(platform, m_cap=24), rounds=2, iterations=1
    )
    assert result.feasible


def test_tsp_budget_table(benchmark):
    """All nine TSP budgets of the 3x3 chip (exact subset enumeration)."""
    platform = paper_platform(9, n_levels=2, t_max_c=55.0)

    def run():
        return [thermal_safe_power(platform, k).power_per_core
                for k in range(1, 10)]

    budgets = benchmark(run)
    assert all(a >= b - 1e-12 for a, b in zip(budgets, budgets[1:]))


def test_tsp_vs_ao(benchmark):
    """The TSP-governed operating point vs AO (AO must dominate)."""
    platform = paper_platform(6, n_levels=2, t_max_c=55.0)

    def run():
        return tsp_throughput(platform), ao(platform, m_cap=24).throughput

    tsp_thr, ao_thr = benchmark.pedantic(run, rounds=2, iterations=1)
    assert ao_thr >= tsp_thr - 1e-9
