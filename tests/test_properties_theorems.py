"""Property-based theorem suite: schedules built from hypothesis-drawn data.

Unlike :mod:`tests.test_theorems` (which drives the checks with seeded
numpy generators), every schedule here is constructed *directly from
drawn data* — hypothesis draws the period, the per-core segment weights
and the voltage levels, and :func:`from_core_timelines` assembles them —
so shrinking produces a minimal failing schedule rather than an opaque
seed.

Profiles: the suite loads the ``ci`` profile by default (derandomized,
no deadline, few examples — safe for shared CI runners); set
``HYPOTHESIS_PROFILE=dev`` for a wider randomized search locally.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theorems import check_theorem1, check_theorem2, check_theorem5
from repro.schedule.builders import from_core_timelines
from repro.schedule.properties import is_step_up
from repro.schedule.transforms import m_oscillate
from repro.thermal.peak import stepup_peak_temperature

settings.register_profile(
    "ci", max_examples=15, deadline=None, derandomize=True, print_blob=True
)
settings.register_profile("dev", max_examples=60, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: The paper platform's discrete voltage ladder.
LEVELS = (0.6, 0.8, 1.0, 1.2, 1.3)

N_CORES = 3


@st.composite
def timelines(draw, n_cores=N_CORES, max_segments=3, step_up=False):
    """Per-core ``(length, voltage)`` timelines over a common drawn period.

    Segment lengths come from drawn integer weights (normalized to the
    period), voltages from the paper's ladder; with ``step_up`` each
    core's voltages are sorted non-decreasing, which makes the assembled
    schedule step-up by construction.
    """
    period = draw(st.floats(0.01, 0.5))
    cores = []
    for _ in range(n_cores):
        k = draw(st.integers(1, max_segments))
        weights = draw(st.lists(st.integers(1, 9), min_size=k, max_size=k))
        volts = draw(
            st.lists(st.sampled_from(LEVELS), min_size=k, max_size=k)
        )
        if step_up:
            volts = sorted(volts)
        total = sum(weights)
        cores.append(
            [(period * w / total, v) for w, v in zip(weights, volts)]
        )
    return cores


def build(cores):
    return from_core_timelines(cores)


class TestStrategy:
    """The drawn data really produces the claimed schedule class."""

    @given(cores=timelines(step_up=True))
    def test_stepup_draws_are_stepup(self, cores):
        assert is_step_up(build(cores))

    @given(cores=timelines())
    def test_period_is_preserved(self, cores):
        sched = build(cores)
        expected = sum(length for length, _ in cores[0])
        assert sched.period == pytest.approx(expected, rel=1e-9)


class TestTheorem1:
    """Step-up schedules: the stable peak occurs at the period end."""

    @given(cores=timelines(step_up=True))
    def test_peak_at_period_end(self, model3_session, cores):
        report = check_theorem1(model3_session, build(cores))
        assert report.holds, (
            f"peak anywhere {report.lhs} > period-end {report.rhs} + tol"
        )

    @given(cores=timelines(n_cores=2, step_up=True))
    def test_peak_at_period_end_two_cores(self, model2_session, cores):
        assert check_theorem1(model2_session, build(cores)).holds


class TestTheorem2:
    """step_up(S) upper-bounds the stable peak of any schedule S."""

    @given(cores=timelines())
    def test_stepup_reordering_is_upper_bound(self, model3_session, cores):
        report = check_theorem2(model3_session, build(cores))
        assert report.holds, (
            f"peak(S) {report.lhs} > peak(step_up(S)) {report.rhs} + tol"
        )

    @given(cores=timelines(n_cores=2, max_segments=4))
    def test_bound_on_two_cores(self, model2_session, cores):
        assert check_theorem2(model2_session, build(cores)).holds


class TestTheorem5:
    """Oscillating a step-up schedule m-fold never raises the peak."""

    @given(cores=timelines(step_up=True), m=st.integers(1, 6))
    def test_m_plus_one_no_worse_than_m(self, model3_session, cores, m):
        report = check_theorem5(model3_session, build(cores), m)
        assert report.holds, (
            f"peak(S({m + 1})) {report.lhs} > peak(S({m})) {report.rhs}"
        )

    @given(cores=timelines(step_up=True, max_segments=2))
    def test_adjacent_m_chain_non_increasing(self, model3_session, cores):
        sched = build(cores)
        peaks = [
            stepup_peak_temperature(
                model3_session, m_oscillate(sched, m), check=False
            ).value
            for m in range(1, 7)
        ]
        assert np.all(np.diff(peaks) <= 1e-9), f"chain not monotone: {peaks}"


# Hypothesis forbids reusing function-scoped fixtures across examples, so
# the session models are aliased locally (same pattern as test_theorems).
@pytest.fixture(scope="session")
def model3_session(model3):
    return model3


@pytest.fixture(scope="session")
def model2_session(model2):
    return model2
