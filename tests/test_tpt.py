"""Tests for the TPT ratio-adjustment loops."""

import numpy as np
import pytest

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import (
    adjusted_high_ratios,
    build_oscillating_schedule,
    plan_modes,
)
from repro.algorithms.tpt import enforce_threshold, fill_headroom
from repro.errors import ConvergenceError
from repro.platform import paper_platform
from repro.thermal.peak import peak_temperature, stepup_peak_temperature


@pytest.fixture(scope="module")
def setup():
    p = paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)
    cont = continuous_assignment(p)
    plan = plan_modes(p, cont.voltages)
    return p, plan


class TestEnforceThreshold:
    def test_reaches_feasibility(self, setup):
        p, plan = setup
        ratios, sched, peak, iters = enforce_threshold(
            p, plan, plan.high_ratio, period=0.02, m=1
        )
        assert peak.value <= p.theta_max + 1e-9
        assert iters >= 1
        assert np.all(ratios <= plan.high_ratio + 1e-12)

    def test_already_feasible_no_iterations(self, setup):
        p, plan = setup
        # A tiny high ratio everywhere is trivially feasible.
        cold = np.full(3, 0.01)
        ratios, _, peak, iters = enforce_threshold(
            p, plan, cold, period=0.02, m=1
        )
        assert iters == 0
        assert np.allclose(ratios, cold)
        assert peak.value <= p.theta_max

    def test_adaptive_cheaper_and_comparable(self, setup):
        # The greedy loop has path-dependent fixed points; adaptive batching
        # must stay feasible, cost fewer iterations, and land within a few
        # percent of the literal loop's throughput.
        p, plan = setup
        t_unit = 0.02 / 50
        r_fast, s_fast, pk_fast, it_fast = enforce_threshold(
            p, plan, plan.high_ratio, 0.02, 1, t_unit=t_unit, adaptive=True
        )
        r_slow, s_slow, pk_slow, it_slow = enforce_threshold(
            p, plan, plan.high_ratio, 0.02, 1, t_unit=t_unit, adaptive=False
        )
        assert pk_fast.value <= p.theta_max + 1e-9
        assert pk_slow.value <= p.theta_max + 1e-9
        assert it_fast <= it_slow
        from repro.schedule.properties import throughput

        assert throughput(s_fast) >= throughput(s_slow) - 0.05

    def test_respects_custom_peak_fn(self, setup):
        p, plan = setup
        calls = []

        def spy(sched):
            calls.append(1)
            return stepup_peak_temperature(p.model, sched, check=False)

        enforce_threshold(p, plan, plan.high_ratio, 0.02, 1, peak_fn=spy)
        assert len(calls) > 0

    def test_iteration_budget(self, setup):
        p, plan = setup
        with pytest.raises(ConvergenceError):
            enforce_threshold(
                p, plan, plan.high_ratio, 0.02, 1, max_iter=0
            )

    def test_ratios_never_negative(self, setup):
        p_cold = paper_platform(3, n_levels=2, t_max_c=41.0, tau=0.0)
        cont = continuous_assignment(p_cold)
        plan = plan_modes(p_cold, cont.voltages)
        ratios, _, peak, _ = enforce_threshold(
            p_cold, plan, np.full(3, 0.9), period=0.02, m=1
        )
        assert np.all(ratios >= 0)
        assert peak.value <= p_cold.theta_max + 1e-9


class TestFillHeadroom:
    def test_consumes_headroom(self, setup):
        p, plan = setup
        start = np.full(3, 0.05)
        ratios, sched, peak, iters = fill_headroom(
            p, plan, start, period=0.02, m=4
        )
        assert np.all(ratios >= start - 1e-12)
        assert ratios.sum() > start.sum()
        assert peak.value <= p.theta_max + 1e-9

    def test_stops_at_threshold(self, setup):
        p, plan = setup
        ratios, sched, peak, _ = fill_headroom(
            p, plan, np.full(3, 0.05), period=0.02, m=8
        )
        # After the fill, no core can grow by one more quantum feasibly --
        # equivalently the peak sits close under the threshold or every
        # ratio has saturated.
        saturated = np.all(ratios >= 1 - 1e-9)
        assert saturated or peak.value > p.theta_max - 1.0

    def test_respects_threshold_with_general_engine(self, setup):
        p, plan = setup

        def general(sched):
            return peak_temperature(p.model, sched)

        ratios, sched, peak, _ = fill_headroom(
            p, plan, np.full(3, 0.1), period=0.02, m=4, peak_fn=general
        )
        assert peak.value <= p.theta_max + 1e-9

    def test_fill_after_enforce_never_loses_throughput(self, setup):
        from repro.schedule.properties import throughput

        p, plan = setup
        ratios, s0, peak, _ = enforce_threshold(
            p, plan, plan.high_ratio, period=0.02, m=1
        )
        r2, s2, pk2, iters = fill_headroom(p, plan, ratios, period=0.02, m=1)
        assert pk2.value <= p.theta_max + 1e-9
        assert throughput(s2) >= throughput(s0) - 1e-12
