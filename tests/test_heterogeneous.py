"""Tests for heterogeneous per-core power models."""

import numpy as np
import pytest

from repro.algorithms import ao, continuous_assignment, exs
from repro.errors import PowerModelError
from repro.floorplan import paper_floorplan
from repro.platform import Platform
from repro.power import (
    HeterogeneousPowerModel,
    PowerModel,
    TransitionOverhead,
    big_little_power_model,
    paper_ladder,
)
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_single_layer_network


def het_platform(n_levels=3, t_max_c=55.0):
    fp = paper_floorplan(6)
    pm = big_little_power_model(big_cores=[0, 1, 2], n_cores=6)
    model = ThermalModel(build_single_layer_network(fp), pm)
    return Platform(
        model=model,
        ladder=paper_ladder(n_levels),
        overhead=TransitionOverhead(),
        t_max_c=t_max_c,
    )


class TestModel:
    def test_broadcasting(self):
        pm = HeterogeneousPowerModel(
            alpha_lin=[0.1, 0.2], gamma=[5.0, 3.0], beta=0.1
        )
        assert pm.n_cores == 2
        assert pm.beta.shape == (2,)

    def test_psi_per_core(self):
        pm = HeterogeneousPowerModel(
            alpha_lin=[0.0, 0.0], gamma=[5.0, 2.5], beta=0.1
        )
        psi = pm.psi(np.array([1.0, 1.0]))
        assert psi[0] == pytest.approx(5.0)
        assert psi[1] == pytest.approx(2.5)

    def test_psi_batch(self):
        pm = big_little_power_model([0], n_cores=2)
        volts = np.array([[1.0, 1.0], [0.6, 1.3]])
        out = pm.psi(volts)
        assert out.shape == (2, 2)

    def test_psi_inverse_per_core(self):
        pm = HeterogeneousPowerModel(
            alpha_lin=[0.0, 0.0], gamma=[5.0, 2.5], beta=0.1
        )
        assert pm.psi_inverse(5.0, core=0) == pytest.approx(1.0)
        assert pm.psi_inverse(2.5, core=1) == pytest.approx(1.0)
        assert pm.psi_inverse_for(1, 2.5) == pytest.approx(1.0)

    def test_psi_inverse_array(self):
        pm = HeterogeneousPowerModel(
            alpha_lin=[0.0, 0.0], gamma=[5.0, 2.5], beta=0.1
        )
        v = pm.psi_inverse_array([5.0, 2.5])
        assert np.allclose(v, 1.0)

    def test_core_model_view(self):
        pm = big_little_power_model([0], n_cores=2)
        big = pm.core_model(0)
        little = pm.core_model(1)
        assert isinstance(big, PowerModel)
        assert little.gamma < big.gamma

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha_lin": [-0.1], "gamma": [5.0], "beta": [0.1]},
            {"alpha_lin": [0.1], "gamma": [0.0], "beta": [0.1]},
            {"alpha_lin": [0.1], "gamma": [5.0], "beta": [-0.1]},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PowerModelError):
            HeterogeneousPowerModel(**kwargs)

    def test_voltage_range_enforced(self):
        pm = big_little_power_model([0], n_cores=2)
        with pytest.raises(PowerModelError):
            pm.psi(np.array([1.5, 0.8]))


class TestAlgorithmsOnHeterogeneous:
    def test_continuous_favors_efficient_cores(self):
        p = het_platform(t_max_c=55.0)
        ca = continuous_assignment(p)
        # Little cores (3..5) burn less power per volt -> higher budgets.
        assert ca.voltages[3:].min() >= ca.voltages[:3].max() - 1e-9

    def test_leakage_folding_per_core(self):
        fp = paper_floorplan(3)
        pm = HeterogeneousPowerModel(
            alpha_lin=0.1, gamma=5.0, beta=np.array([0.05, 0.2, 0.05])
        )
        model = ThermalModel(build_single_layer_network(fp), pm)
        g_orig = model.network.conductance
        diff = np.diag(g_orig - model.g_eff)
        assert np.allclose(diff, [0.05, 0.2, 0.05])

    def test_ao_feasible_and_beats_exs(self):
        p = het_platform(t_max_c=55.0)
        r_ao = ao(p, m_cap=24)
        r_exs = exs(p)
        assert r_ao.feasible and r_exs.feasible
        assert r_ao.throughput >= r_exs.throughput - 1e-9

    def test_oracle_verification(self):
        from repro.thermal.reference import reference_peak

        p = het_platform(t_max_c=55.0)
        r = ao(p, m_cap=24)
        oracle = reference_peak(p.model, r.schedule, samples_per_interval=48)
        assert oracle <= p.theta_max + 0.05
