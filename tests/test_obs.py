"""Tests for the observability layer (repro.obs): spans, metrics, sinks."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    METRICS,
    TRACER,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Span,
    aggregate_spans,
    capture_spans,
    current_span,
    format_span_table,
    record_span,
    span,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with a disabled, empty tracer."""
    assert not TRACER.enabled, "tracer leaked from a previous test"
    yield
    TRACER._sinks.clear()
    TRACER._stack.clear()
    TRACER.enabled = False


class TestDisabledPath:
    def test_span_returns_shared_null_context(self):
        a, b = span("x"), span("y", attr=1)
        assert a is b  # one shared object: no allocation while disabled

    def test_null_span_accepts_attrs(self):
        with span("x") as sp:
            assert sp.set_attrs(k=1) is sp

    def test_current_span_is_null(self):
        assert current_span().set_attrs(k=1) is current_span()

    def test_record_span_is_noop(self):
        record_span("x", 0.5)  # must not raise or emit


class TestSpanNesting:
    def test_parent_links_form_a_tree(self):
        with capture_spans() as spans:
            with span("root") as root:
                with span("child") as child:
                    with span("grandchild") as grand:
                        pass
                with span("sibling") as sib:
                    pass
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert sib.parent_id == root.span_id
        assert root.parent_id is None
        # Emission order is completion order: innermost first.
        assert [s.name for s in spans] == [
            "grandchild", "child", "sibling", "root",
        ]

    def test_durations_are_positive_and_nested(self):
        with capture_spans() as spans:
            with span("outer"):
                with span("inner"):
                    pass
        by_name = {s.name: s for s in spans}
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s >= 0

    def test_attrs_at_open_and_via_set_attrs(self):
        with capture_spans() as spans:
            with span("x", batch=16) as sp:
                sp.set_attrs(hits=3)
        assert spans[0].attrs == {"batch": 16, "hits": 3}

    def test_current_span_tracks_innermost(self):
        with capture_spans():
            with span("outer"):
                with span("inner") as sp:
                    assert current_span() is sp

    def test_exception_still_closes_and_emits(self):
        with capture_spans() as spans:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert [s.name for s in spans] == ["doomed"]
        assert not TRACER._stack

    def test_span_dict_round_trip(self):
        with capture_spans() as spans:
            with span("x", k=1):
                pass
        doc = spans[0].as_dict()
        clone = Span.from_dict(json.loads(json.dumps(doc)))
        assert clone.as_dict() == doc


class TestCaptureIsolation:
    def test_isolate_hides_spans_from_outer_sink(self):
        outer = MemorySink()
        TRACER.add_sink(outer)
        with span("outer_live"):
            with capture_spans(isolate=True) as inner:
                with span("unit_root"):
                    with span("unit_child"):
                        pass
        TRACER.remove_sink(outer)
        assert [s.name for s in inner] == ["unit_child", "unit_root"]
        # The isolated spans never reached the live sink, and the live
        # span never leaked into the isolated capture.
        assert [s.name for s in outer.spans] == ["outer_live"]

    def test_isolate_resets_parent_to_none(self):
        with capture_spans():
            with span("ambient"):
                with capture_spans(isolate=True) as inner:
                    with span("root"):
                        pass
        assert inner[0].parent_id is None

    def test_isolate_enables_tracing_even_when_disabled(self):
        assert not TRACER.enabled
        with capture_spans(isolate=True) as spans:
            assert TRACER.enabled
            with span("x"):
                pass
        assert not TRACER.enabled
        assert len(spans) == 1


class TestHistogram:
    def test_bucket_counts_with_overflow(self):
        h = Histogram("h", bounds=(1, 10, 100))
        for v in (0.5, 1, 5, 50, 500, 5000):
            h.observe(v)
        # len(bounds)+1 buckets; the last is the overflow bucket.
        assert len(h.counts) == 4
        assert sum(h.counts) == 6
        assert h.counts == [2, 1, 1, 2]  # <=1, <=10, <=100, >100

    def test_mean(self):
        h = Histogram("h", bounds=(10,))
        h.observe(2)
        h.observe(4)
        assert h.mean == pytest.approx(3.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 1))

    def test_as_dict_shape(self):
        h = Histogram("h", bounds=(1, 2))
        h.observe(1.5)
        doc = h.as_dict()
        assert doc["count"] == 1
        assert len(doc["counts"]) == len(doc["bounds"]) + 1

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7.5

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_collects_engine_batches(self):
        from repro import load_platform, solve

        METRICS.reset()
        platform = load_platform(n_cores=2, n_levels=2)
        solve("AO", platform, m_cap=8)
        snap = METRICS.snapshot()
        assert snap["histograms"]["engine.batch_size"]["count"] > 0


class TestJsonlSink:
    def test_span_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            TRACER.add_sink(sink)
            with span("a", k=1):
                pass
            TRACER.remove_sink(sink)
            sink.write_doc({"metrics": {"counters": {}}})
        rows = JsonlSink.load(path)
        assert len(rows) == 2
        assert rows[0]["name"] == "a" and rows[0]["attrs"] == {"k": 1}
        assert "metrics" in rows[1]

    def test_load_skips_bad_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n\n{"name": "ok2"}\n')
        assert [r["name"] for r in JsonlSink.load(path)] == ["ok", "ok2"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert JsonlSink.load(tmp_path / "nope.jsonl") == []


class TestAggregation:
    def test_aggregate_and_format(self):
        docs = [
            {"name": "a", "duration_s": 0.1},
            {"name": "a", "duration_s": 0.3},
            {"name": "b", "duration_s": 0.5},
            {"duration_s": 1.0},  # nameless rows are skipped
        ]
        agg = aggregate_spans(docs)
        assert agg["a"].count == 2
        assert agg["a"].mean_s == pytest.approx(0.2)
        assert agg["b"].total_s == pytest.approx(0.5)
        table = format_span_table(agg)
        assert "a" in table and "b" in table

    def test_empty_aggregate_formats(self):
        assert "none recorded" in format_span_table({})


class TestEngineIntegration:
    def test_solver_phases_appear_as_spans_and_engine_stats(self):
        """engine.phase() must feed both the span stream and EngineStats."""
        from repro import load_platform, solve

        platform = load_platform(n_cores=2, n_levels=2)
        with capture_spans() as spans:
            result = solve("AO", platform, m_cap=8)
        names = [s.name for s in spans]
        assert "solve/AO" in names
        assert "ao/choose_m" in names
        root = next(s for s in spans if s.name == "solve/AO")
        # The solve-root attrs mirror the EngineStats counters.
        assert root.attrs["ss_solves"] == result.stats.steady_state_solves
        assert root.attrs["expm_applications"] == result.stats.expm_applications
        # phase() still accumulates the legacy phase_seconds breakdown.
        assert "ao/choose_m" in result.stats.phase_seconds

    def test_no_solve_span_while_disabled(self):
        from repro import load_platform, solve

        platform = load_platform(n_cores=2, n_levels=2)
        result = solve("LNS", platform)
        assert result.feasible is not None  # ran fine without a tracer
