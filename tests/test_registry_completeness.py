"""Registry completeness: every solver is tested, certified, cacheable.

Parametrized directly over :data:`repro.algorithms.registry.SOLVERS`, so
registering a new solver *automatically* fails this suite until the
solver is (a) added to the cross-solver feasible-parity sweep in
``tests/test_registry.py``, (b) shown to attach an accepted-or-fallback
certificate through :func:`guarded_solve`, and (c) shown to round-trip
through the :class:`~repro.service.cache.ScheduleCache` key and wire
format the serving layer memoizes outcomes with.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import SOLVERS, guarded_solve
from repro.schedule.serialization import result_from_dict, result_to_dict
from repro.service.cache import ScheduleCache, platform_hash, schedule_cache_key

from tests.test_registry import ALL_NAMES, QUICK_PARAMS

ALL_SOLVERS = sorted(SOLVERS)


def cheap_params(name: str) -> dict:
    """The same fast per-solver parameters the parity sweep uses."""
    return dict(QUICK_PARAMS.get(name, {}))


@pytest.fixture(scope="module")
def guarded_results(platform3):
    """One guarded solve per registered solver, shared by the module."""
    return {
        name: guarded_solve(name, platform3, **cheap_params(name))
        for name in ALL_SOLVERS
    }


@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_solver_appears_in_parity_sweep(name):
    """(a) The feasible-parity sweep covers every registered solver."""
    assert name in ALL_NAMES, (
        f"solver {name!r} is registered but missing from the parity sweep "
        "in tests/test_registry.py (add it to ALL_NAMES, with QUICK_PARAMS "
        "if it needs them)"
    )


def test_parity_sweep_names_all_registered():
    """The sweep list cannot drift ahead of the registry either."""
    assert set(ALL_NAMES) == set(SOLVERS)


@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_guarded_solve_certifies_or_falls_back(name, guarded_results):
    """(b) Every solver leaves guarded_solve with an accepted certificate,
    either its own or one earned by a recorded fallback hop."""
    result = guarded_results[name]
    assert result.certificate is not None
    assert result.certificate.accepted
    fallback = result.details.get("fallback")
    if fallback is not None:
        assert fallback.get("hop")
        assert fallback.get("failure")


@pytest.mark.parametrize("name", ALL_SOLVERS)
def test_outcome_round_trips_through_schedule_cache(
    name, guarded_results, platform3, tmp_path
):
    """(c) The solve outcome survives the cache's key + wire format:
    store the serialized result under its content key, reload through a
    *fresh* cache instance (disk layer only), and compare."""
    result = guarded_results[name]
    key = schedule_cache_key(
        platform_hash(platform3), name, cheap_params(name), 1e-3
    )

    writer = ScheduleCache(directory=tmp_path)
    writer.put(key, {"result": result_to_dict(result)})

    reader = ScheduleCache(directory=tmp_path)
    doc = reader.get(key)
    assert doc is not None and reader.disk_hits == 1

    restored = result_from_dict(doc["result"])
    assert restored.name == result.name
    assert restored.throughput == result.throughput
    assert restored.peak_theta == result.peak_theta
    assert restored.feasible == result.feasible


def test_cache_keys_are_distinct_per_solver(platform3):
    """Same platform, same tolerance: solver name alone must split keys."""
    phash = platform_hash(platform3)
    keys = {
        schedule_cache_key(phash, name, cheap_params(name), 1e-3)
        for name in ALL_SOLVERS
    }
    assert len(keys) == len(ALL_SOLVERS)


def test_cache_key_canonicalizes_param_spelling():
    """Tuples vs lists (and numpy scalars) must not split the cache."""
    import numpy as np

    a = schedule_cache_key("p", "integral", {"ki": (1.0, 2.0)}, 1e-3)
    b = schedule_cache_key("p", "integral", {"ki": [1.0, np.float64(2.0)]}, 1e-3)
    assert a == b
