"""Shared fixtures: platforms, models, and schedule generators."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.floorplan.library import floorplan_2x1, floorplan_3x1, floorplan_3x2
from repro.platform import paper_platform
from repro.power.model import PowerModel
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_rc_network, build_single_layer_network


@pytest.fixture(scope="session")
def power_model() -> PowerModel:
    """The calibrated 65 nm power model."""
    return PowerModel()


@pytest.fixture(scope="session")
def model3(power_model) -> ThermalModel:
    """Calibrated single-layer model of the paper's 1x3 chip."""
    return ThermalModel(build_single_layer_network(floorplan_3x1()), power_model)


@pytest.fixture(scope="session")
def model2(power_model) -> ThermalModel:
    """Calibrated single-layer model of the paper's 1x2 chip."""
    return ThermalModel(build_single_layer_network(floorplan_2x1()), power_model)


@pytest.fixture(scope="session")
def model6_stacked(power_model) -> ThermalModel:
    """Three-layer (stacked) model of the 6-core chip."""
    return ThermalModel(build_rc_network(floorplan_3x2()), power_model)


@pytest.fixture(scope="session")
def platform3():
    """3-core, 2-level platform at the motivation example's threshold."""
    return paper_platform(3, n_levels=2, t_max_c=65.0)


@pytest.fixture(scope="session")
def platform3_no_overhead():
    """Same platform with tau = 0 (the section III setting)."""
    return paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for workload generation."""
    return np.random.default_rng(20160816)


@pytest.fixture(autouse=True)
def strict_numerics():
    """Escalate silent floating-point events when CI asks for it.

    The ``strict-numerics`` CI job exports ``REPRO_STRICT_NUMERICS=1``
    (alongside ``-W error::RuntimeWarning``), turning overflow, invalid
    operations, and division-by-zero anywhere in the suite into hard
    errors instead of silently propagating NaN/inf.  Underflow stays at
    its default — gradual underflow of ``exp(lam * t)`` for large ``t``
    is expected, correct behaviour in the thermal propagators.
    """
    if os.environ.get("REPRO_STRICT_NUMERICS") != "1":
        yield
        return
    with np.errstate(over="raise", invalid="raise", divide="raise"):
        yield
